//! No-op `Serialize` / `Deserialize` derives for the offline `serde` stand-in.
//!
//! The workspace only uses serde derives as forward-looking annotations — nothing
//! serializes through serde at runtime (reports are plain text) — so the derives expand to
//! nothing. If real serialization is ever needed, replace `vendor/serde*` with the real
//! crates in the workspace manifest.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
