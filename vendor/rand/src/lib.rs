//! Offline, deterministic stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so the workspace
//! vendors the *exact API subset* it consumes: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`seq::SliceRandom`]'s `choose`/`shuffle`.
//! The generator behind [`rngs::SmallRng`] and [`rngs::StdRng`] is SplitMix64 — not the
//! algorithms real `rand` uses — which is fine here because every consumer in this
//! workspace only relies on *determinism* (same seed ⇒ same stream), never on a specific
//! stream or on cryptographic quality.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: tiny, fast, full-period, and deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Integer / float types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_in(range: Range<Self>, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(range: Range<Self>, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = rng() as u128 % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in(range: Range<Self>, rng: &mut dyn FnMut() -> u64) -> Self {
        assert!(range.start < range.end, "gen_range called with empty range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample_in(range, &mut draw)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    macro_rules! wrapper_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone, PartialEq, Eq)]
            pub struct $name(SplitMix64);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    $name(SplitMix64::new(seed))
                }
            }
        };
    }

    wrapper_rng!(
        /// Small fast RNG (SplitMix64 under the hood).
        SmallRng
    );
    wrapper_rng!(
        /// "Standard" RNG (also SplitMix64; see crate docs for why this is acceptable).
        StdRng
    );
}

pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` / `shuffle` on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
