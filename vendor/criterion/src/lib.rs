//! Offline stand-in for `criterion`: the API subset this workspace's benches use, backed
//! by a simple wall-clock timing loop.
//!
//! Reported numbers are mean wall time per iteration (plus throughput when configured via
//! [`BenchmarkGroup::throughput`]). There is no statistical analysis, HTML report, or
//! baseline comparison — the point is that `cargo bench` compiles, runs, and prints
//! honest ballpark numbers in an environment without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation used to derive elements/bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: anything stringly. Mirrors criterion's `BenchmarkId` loosely.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(group: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", group.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-invocation measurement state handed to the closure of `bench_function`.
pub struct Bencher {
    samples: u64,
    /// Mean duration of one call of the benchmarked closure.
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `f`, calling it once to warm up and then `samples` times under the clock.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn render_result(name: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    match mean {
        Some(mean) => {
            let rate = throughput
                .map(|t| {
                    let per_sec = match t {
                        Throughput::Elements(n) => (n as f64 / mean.as_secs_f64(), "elem/s"),
                        Throughput::Bytes(n) => (n as f64 / mean.as_secs_f64(), "B/s"),
                    };
                    format!("  ({:.3e} {})", per_sec.0, per_sec.1)
                })
                .unwrap_or_default();
            println!("bench {name:<50} {mean:>12.3?}/iter{rate}");
        }
        None => println!("bench {name:<50} (no measurement: closure never called b.iter)"),
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stand-in's warm-up is a single untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times exactly `sample_size` calls.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            mean: None,
        };
        f(&mut b);
        render_result(&format!("{}/{}", self.name, id.0), b.mean, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_samples,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.default_samples,
            mean: None,
        };
        f(&mut b);
        render_result(&id.0, b.mean, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
