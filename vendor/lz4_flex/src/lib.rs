//! Offline stand-in for `lz4_flex`: an [LZ4 block format] codec with no dependencies.
//!
//! Implements the subset the workspace consumes — [`compress`] and [`decompress`] over
//! standalone blocks — producing and accepting **spec-conformant LZ4 block data**:
//!
//! * sequences of `token | literal-length ext | literals | offset u16 LE | match-length
//!   ext`, token nibbles saturating at 15 with 255-valued extension bytes,
//! * minimum match length 4 (token stores `length - 4`), offsets in `1..=65535`,
//! * end-of-block rules: the final sequence is literals-only, matches never start within
//!   the last 12 bytes nor extend into the last 5.
//!
//! Because the *format* (not this encoder's particular choices) is what `.atrc` v3 pins,
//! swapping this stand-in for the real `lz4_flex` keeps every existing compressed trace
//! readable: any conformant decoder accepts any conformant encoder's output. The greedy
//! hash-chain encoder here favours simplicity and determinism over ratio; only
//! self-inverse round-trips and deterministic output are promised.
//!
//! The decoder is hardened for untrusted input: every read and copy is bounds-checked,
//! the output never grows beyond the caller-declared size, and malformed blocks
//! (truncated sequences, zero or out-of-window offsets, size mismatches) are rejected
//! with a typed [`DecompressError`] rather than panicking.
//!
//! [LZ4 block format]: https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md

use std::fmt;

/// Log2 of the match-finder hash table size (positions of previously seen 4-byte
/// prefixes). 2^13 entries keeps the table cache-resident while finding the repeats
/// that matter in delta-encoded trace payloads.
const HASH_BITS: u32 = 13;
/// A match may not start within the last `MIN_TAIL_LITERALS + 7` bytes and the final
/// sequence must be literals-only (LZ4 end-of-block restrictions).
const LAST_MATCH_DISTANCE: usize = 12;
/// Matches must not extend into the final 5 bytes of the block.
const MIN_TAIL_LITERALS: usize = 5;
/// Maximum backwards offset the 2-byte field can express.
const MAX_OFFSET: usize = u16::MAX as usize;

/// Why a block failed to decompress. All variants mean the input is not a valid LZ4
/// block for the declared uncompressed size — nothing here is recoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input ended in the middle of a sequence (token, extension byte, literal run,
    /// or offset field).
    Truncated,
    /// A match referenced data before the start of the output (offset 0 is also
    /// invalid: the format has no way to express it).
    BadOffset {
        /// The offending offset value.
        offset: usize,
        /// Bytes of output available to copy from when it was used.
        output_len: usize,
    },
    /// Literals or a match would grow the output beyond the declared uncompressed size.
    OutputOverrun,
    /// The input decoded cleanly but produced fewer bytes than declared.
    SizeMismatch {
        /// Bytes actually produced.
        actual: usize,
        /// Bytes the caller declared.
        expected: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "LZ4 block truncated mid-sequence"),
            DecompressError::BadOffset { offset, output_len } => write!(
                f,
                "LZ4 match offset {offset} invalid with {output_len} output bytes"
            ),
            DecompressError::OutputOverrun => {
                write!(f, "LZ4 block decodes past the declared uncompressed size")
            }
            DecompressError::SizeMismatch { actual, expected } => write!(
                f,
                "LZ4 block decoded to {actual} bytes but {expected} were declared"
            ),
        }
    }
}

impl std::error::Error for DecompressError {}

#[inline]
fn read_u32_prefix(input: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([input[pos], input[pos + 1], input[pos + 2], input[pos + 3]])
}

#[inline]
fn hash(v: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Append `len` as a token nibble's 255-valued extension bytes (`len` is the amount
/// *beyond* the nibble's saturated 15).
fn push_length_extension(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

fn push_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = match m {
        Some((_, mlen)) => {
            debug_assert!(mlen >= 4);
            (mlen - 4).min(15) as u8
        }
        None => 0,
    };
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        push_length_extension(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, mlen)) = m {
        debug_assert!((1..=MAX_OFFSET).contains(&offset));
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if mlen - 4 >= 15 {
            push_length_extension(out, mlen - 4 - 15);
        }
    }
}

/// Compress `input` as one LZ4 block.
///
/// Deterministic: the same input always yields the same bytes. The output of an empty
/// input is the single token `0x00` (zero literals, no match), which decompresses to an
/// empty block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + input.len() + input.len() / 255);
    if input.len() < LAST_MATCH_DISTANCE + 4 {
        push_sequence(&mut out, input, None);
        return out;
    }
    let mut table = [usize::MAX; 1 << HASH_BITS];
    // Matches may start only while at least LAST_MATCH_DISTANCE bytes remain, and may
    // extend at most to the last MIN_TAIL_LITERALS bytes.
    let match_start_limit = input.len() - LAST_MATCH_DISTANCE;
    let match_end_limit = input.len() - MIN_TAIL_LITERALS;
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    while pos <= match_start_limit {
        let here = read_u32_prefix(input, pos);
        let slot = hash(here);
        let candidate = table[slot];
        table[slot] = pos;
        if candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && read_u32_prefix(input, candidate) == here
        {
            let mut mlen = 4;
            while pos + mlen < match_end_limit && input[candidate + mlen] == input[pos + mlen] {
                mlen += 1;
            }
            push_sequence(
                &mut out,
                &input[literal_start..pos],
                Some((pos - candidate, mlen)),
            );
            pos += mlen;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    push_sequence(&mut out, &input[literal_start..], None);
    out
}

/// Decompress one LZ4 block into a caller-provided buffer, returning the number of
/// bytes written (matching the real crate's `decompress_into`).
///
/// `output.len()` bounds every copy, so a hostile block cannot write more than the
/// caller sized the buffer for — sizing it to the declared uncompressed size gives the
/// same guarantee as [`decompress`]. Unlike [`decompress`], producing *fewer* bytes than
/// the buffer holds is not an error here; callers reusing a scratch buffer check the
/// returned count against the size they expected.
pub fn decompress_into(input: &[u8], output: &mut [u8]) -> Result<usize, DecompressError> {
    let mut written = 0usize;
    let mut pos = 0usize;
    loop {
        let token = *input.get(pos).ok_or(DecompressError::Truncated)?;
        pos += 1;
        let mut literal_len = (token >> 4) as usize;
        if literal_len == 15 {
            loop {
                let b = *input.get(pos).ok_or(DecompressError::Truncated)?;
                pos += 1;
                literal_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        let literals = input
            .get(pos..pos + literal_len)
            .ok_or(DecompressError::Truncated)?;
        let dest = output
            .get_mut(written..written + literal_len)
            .ok_or(DecompressError::OutputOverrun)?;
        dest.copy_from_slice(literals);
        written += literal_len;
        pos += literal_len;
        if pos == input.len() {
            break; // The final sequence is literals-only.
        }
        let offset_bytes = input.get(pos..pos + 2).ok_or(DecompressError::Truncated)?;
        let offset = u16::from_le_bytes([offset_bytes[0], offset_bytes[1]]) as usize;
        pos += 2;
        if offset == 0 || offset > written {
            return Err(DecompressError::BadOffset {
                offset,
                output_len: written,
            });
        }
        let mut match_len = (token & 0x0f) as usize + 4;
        if token & 0x0f == 15 {
            loop {
                let b = *input.get(pos).ok_or(DecompressError::Truncated)?;
                pos += 1;
                match_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if written + match_len > output.len() {
            return Err(DecompressError::OutputOverrun);
        }
        // Matches may overlap their own output (offset < match_len is the RLE case), so
        // copy byte-at-a-time from the already-produced output.
        let start = written - offset;
        for i in 0..match_len {
            output[written + i] = output[start + i];
        }
        written += match_len;
    }
    Ok(written)
}

/// Decompress one LZ4 block that is declared to expand to exactly `uncompressed_size`
/// bytes. The declared size bounds every allocation and copy, so a hostile block cannot
/// make the decoder produce more than the caller expects.
pub fn decompress(input: &[u8], uncompressed_size: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = vec![0u8; uncompressed_size];
    let written = decompress_into(input, &mut out)?;
    if written != uncompressed_size {
        return Err(DecompressError::SizeMismatch {
            actual: written,
            expected: uncompressed_size,
        });
    }
    Ok(out)
}

/// `block` module alias matching the real crate's layout (`lz4_flex::block::compress`).
pub mod block {
    pub use super::{compress, decompress, decompress_into, DecompressError};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let compressed = compress(data);
        decompress(&compressed, data.len()).expect("round-trip must decode")
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        for data in [&b""[..], b"a", b"abc", b"0123456789abcde"] {
            assert_eq!(roundtrip(data), data);
        }
    }

    #[test]
    fn repetitive_data_roundtrips_and_shrinks() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| [(i % 7) as u8, 42]).collect();
        let compressed = compress(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "periodic data must compress well, got {} of {}",
            compressed.len(),
            data.len()
        );
        assert_eq!(decompress(&compressed, data.len()).unwrap(), data);
    }

    #[test]
    fn rle_overlapping_matches_roundtrip() {
        // offset 1 with long matches: the overlap-copy path.
        let data = vec![0xabu8; 4096];
        let compressed = compress(&data);
        assert!(compressed.len() < 64);
        assert_eq!(decompress(&compressed, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // SplitMix64 stream: effectively random, nothing to match.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let data: Vec<u8> = (0..4096).map(|_| (next() & 0xff) as u8).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn compression_is_deterministic() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn long_literal_and_match_extensions_roundtrip() {
        // >15 literals up front, then a match longer than 19 (nibble 15 + extension).
        let mut data: Vec<u8> = (0..600u32).map(|i| (i % 256) as u8).collect();
        data.extend(std::iter::repeat_n(7u8, 1000));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_blocks_are_rejected() {
        let data: Vec<u8> = (0..3000u32).flat_map(|i| [(i % 5) as u8, 9]).collect();
        let compressed = compress(&data);
        for cut in [0, 1, compressed.len() / 2, compressed.len() - 1] {
            assert!(
                decompress(&compressed[..cut], data.len()).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_offsets_and_size_mismatches_are_rejected() {
        // Hand-built block: 4 literals then a match with offset 9 (> output so far).
        let mut bad = vec![0x40u8];
        bad.extend_from_slice(b"abcd");
        bad.extend_from_slice(&9u16.to_le_bytes());
        bad.push(0); // terminate the match-length cleanly
        assert!(matches!(
            decompress(&bad, 100),
            Err(DecompressError::BadOffset { .. })
        ));
        // Offset 0 is unrepresentable and must be rejected.
        let mut zero = vec![0x40u8];
        zero.extend_from_slice(b"abcd");
        zero.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            decompress(&zero, 100),
            Err(DecompressError::BadOffset { offset: 0, .. })
        ));
        // Valid block, wrong declared size: both directions must fail.
        let data = b"the same bytes the same bytes the same bytes";
        let compressed = compress(data);
        assert!(decompress(&compressed, data.len() - 1).is_err());
        assert!(matches!(
            decompress(&compressed, data.len() + 1),
            Err(DecompressError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn declared_size_caps_output_even_for_hostile_blocks() {
        // An RLE bomb claiming a huge match must stop at the declared size, not OOM.
        let mut bomb = vec![0x1fu8]; // 1 literal, match nibble 15
        bomb.push(b'x');
        bomb.extend_from_slice(&1u16.to_le_bytes());
        bomb.extend(std::iter::repeat_n(255u8, 1000)); // ~255k of match length extensions
        bomb.push(0);
        assert!(matches!(
            decompress(&bomb, 64),
            Err(DecompressError::OutputOverrun)
        ));
    }

    #[test]
    fn decompress_into_reuses_a_scratch_buffer() {
        let a: Vec<u8> = (0..5000u32).flat_map(|i| [(i % 11) as u8, 3]).collect();
        let b: Vec<u8> = (0..1200u32).map(|i| (i % 254) as u8).collect();
        let mut scratch = vec![0u8; a.len().max(b.len())];
        for data in [&a, &b, &a] {
            let compressed = compress(data);
            let written = decompress_into(&compressed, &mut scratch[..data.len()]).unwrap();
            assert_eq!(written, data.len());
            assert_eq!(&scratch[..written], &data[..]);
        }
    }

    #[test]
    fn decompress_into_rejects_undersized_buffers_and_reports_short_output() {
        let data = vec![0x5au8; 2048];
        let compressed = compress(&data);
        let mut small = vec![0u8; data.len() - 1];
        assert!(matches!(
            decompress_into(&compressed, &mut small),
            Err(DecompressError::OutputOverrun)
        ));
        // An oversized buffer is fine: the true length comes back as the written count.
        let mut big = vec![0u8; data.len() + 100];
        let written = decompress_into(&compressed, &mut big).unwrap();
        assert_eq!(written, data.len());
        assert_eq!(&big[..written], &data[..]);
    }

    #[test]
    fn matches_respect_end_of_block_rules() {
        // A block whose only repeats are near the tail: the encoder must still end with
        // a literals-only sequence and never match into the final 5 bytes.
        let mut data = vec![0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 3) as u8;
        }
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed, data.len()).unwrap(), data);
        // The final byte of a block is always part of a literal run (spec rule); a
        // conformant encoder therefore never emits a trailing offset field.
        assert_eq!(*compressed.last().unwrap(), *data.last().unwrap());
    }
}
