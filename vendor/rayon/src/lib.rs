//! Offline stand-in for `rayon`, covering the slice-parallelism subset this workspace
//! uses: `par_iter()` followed by `map(..).collect()` or `for_each(..)`.
//!
//! Scheduling is work-stealing-equivalent: instead of pre-splitting the input into one
//! fixed chunk per worker (which bounds a sweep's speedup by its slowest chunk — the
//! straggler problem the corpus sweep grid hit), every worker claims the next unclaimed
//! item from a shared atomic cursor until the input is exhausted. A worker that lands on
//! an expensive item simply stops claiming; the remaining items are drained by the other
//! workers, so total wall-clock approaches `max(item)` rather than the sum of the
//! slowest pre-assigned chunk. Each worker records `(index, result)` pairs, and the
//! pairs are merged and re-ordered by index before returning, so `collect` preserves
//! input order and results are identical to the sequential evaluation — matching rayon's
//! deterministic-collect semantics the experiment runner relies on.
//!
//! When `sim-obs` recording is enabled the scheduler emits a per-worker task timeline
//! (one span per claimed item) plus end-of-pool `rayon.tasks` / `rayon.steals` /
//! `rayon.idle_ns` counters, so a profiled sweep shows exactly how the grid was
//! load-balanced. All of it is gated on `sim_obs::enabled()` — a relaxed atomic load —
//! and the scheduling itself is never affected.
//!
//! The worker count honours, in order: a [`with_worker_limit`] override (used by tests
//! to force a serial run), the `RAYON_NUM_THREADS` environment variable (matching real
//! rayon), and `available_parallelism`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    static WORKER_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with parallel calls *started from this thread* capped at `limit` workers.
/// `with_worker_limit(1, ..)` forces sequential execution — profiled serial-vs-parallel
/// comparisons rely on it.
pub fn with_worker_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let prev = WORKER_LIMIT.with(|cell| cell.replace(Some(limit.max(1))));
    let out = f();
    WORKER_LIMIT.with(|cell| cell.set(prev));
    out
}

fn env_worker_limit() -> Option<usize> {
    static LIMIT: OnceLock<Option<usize>> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

fn worker_count(items: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let cap = WORKER_LIMIT
        .with(Cell::get)
        .or_else(env_worker_limit)
        .unwrap_or(hardware);
    cap.min(items).max(1)
}

/// The shared queue behind [`spawn`]: jobs plus the condvar workers sleep on.
struct SpawnPool {
    queue: Mutex<VecDeque<Box<dyn FnOnce() + Send>>>,
    work_ready: Condvar,
}

fn spawn_pool() -> &'static SpawnPool {
    static POOL: OnceLock<&'static SpawnPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static SpawnPool = Box::leak(Box::new(SpawnPool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        }));
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(2, 8);
        for worker in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-bg-{worker}"))
                .spawn(move || loop {
                    let job = {
                        let mut queue = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if let Some(job) = queue.pop_front() {
                                break job;
                            }
                            queue = pool
                                .work_ready
                                .wait(queue)
                                .unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    // A panicking job must not take the worker down with it: senders
                    // waiting on a channel the job owned see a disconnect instead of a
                    // silently shrinking pool. Real rayon aborts here; tolerating the
                    // unwind is the stand-in's conservative choice.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                })
                .expect("spawn rayon stand-in background worker");
        }
        pool
    })
}

/// Fire-and-forget a job on the shared background pool (subset of `rayon::spawn`).
///
/// Jobs run in FIFO order on a small detached worker pool that is started lazily and
/// lives for the rest of the process. There is no join handle — jobs communicate
/// results through channels or shared state, exactly like the real API. Unlike
/// [`with_worker_limit`], the background pool is not throttled: it exists for latency
/// hiding (e.g. prefetching the next decode batch), not for throughput scaling, so a
/// serial `with_worker_limit(1)` sweep may still overlap decode with simulation.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    let pool = spawn_pool();
    {
        let mut queue = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Box::new(f));
    }
    pool.work_ready.notify_one();
}

/// One worker's output: its `(index, result)` pairs plus the claimed indices.
type WorkerOutput<R> = (Vec<(usize, R)>, Vec<usize>);

/// Work-stealing-equivalent parallel map over `items` on `workers` threads.
///
/// Returns the results in input order plus, for scheduler tests, the list of item
/// indices each worker claimed. Items are claimed one at a time from a shared atomic
/// cursor; no worker ever holds queued work another idle worker could have taken.
fn claiming_map<'a, T, R, F>(items: &'a [T], f: &F, workers: usize) -> (Vec<R>, Vec<Vec<usize>>)
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    if items.is_empty() {
        return (Vec::new(), vec![Vec::new(); workers]);
    }
    if workers <= 1 {
        let out: Vec<R> = items
            .iter()
            .map(|item| {
                let _task = sim_obs::span("rayon", "task");
                f(item)
            })
            .collect();
        return (out, vec![(0..items.len()).collect()]);
    }
    let next = AtomicUsize::new(0);
    let mut claimed: Vec<WorkerOutput<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                scope.spawn(move || {
                    let observing = sim_obs::enabled();
                    let pool_start = if observing {
                        sim_obs::set_thread_name(&format!("rayon-worker-{worker}"));
                        sim_obs::now_ns()
                    } else {
                        0
                    };
                    let mut busy_ns = 0u64;
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    let mut indices: Vec<usize> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        indices.push(i);
                        if observing {
                            let task_start = sim_obs::now_ns();
                            {
                                let _task = sim_obs::span("rayon", "task");
                                mine.push((i, f(&items[i])));
                            }
                            busy_ns += sim_obs::now_ns().saturating_sub(task_start);
                        } else {
                            mine.push((i, f(&items[i])));
                        }
                    }
                    if observing {
                        // A claim beyond the even static split is work this worker
                        // "stole" from a straggler relative to chunked scheduling.
                        let fair_share = items.len().div_ceil(workers);
                        let steals = indices.len().saturating_sub(fair_share);
                        let total_ns = sim_obs::now_ns().saturating_sub(pool_start);
                        sim_obs::counter("rayon", "tasks", indices.len() as f64);
                        sim_obs::counter("rayon", "steals", steals as f64);
                        sim_obs::counter(
                            "rayon",
                            "idle_ns",
                            total_ns.saturating_sub(busy_ns) as f64,
                        );
                    }
                    (mine, indices)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    });
    let assignments: Vec<Vec<usize>> = claimed.iter().map(|(_, idx)| idx.clone()).collect();
    let mut pairs: Vec<(usize, R)> = claimed.drain(..).flat_map(|(pairs, _)| pairs).collect();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    let out = pairs.into_iter().map(|(_, r)| r).collect();
    (out, assignments)
}

/// Run `f` over every item with work-stealing scheduling, returning results in input
/// order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    claiming_map(items, f, worker_count(items.len())).0
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }
}

/// Result of `par_iter().map(f)`; terminal operation is `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter()` on `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::AtomicU64;
        let v: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = vec![];
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn claiming_map_orders_results_and_partitions_indices() {
        let v: Vec<u64> = (0..257).collect();
        let (out, assignments) = claiming_map(&v, &|x| x * 3, 4);
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<u64>>());
        assert_eq!(assignments.len(), 4);
        let mut all: Vec<usize> = assignments.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..257).collect::<Vec<usize>>());
    }

    /// The scheduler regression the corpus sweep grid cares about: with an adversarially
    /// skewed workload — one expensive item placed *first* — the whole input must still
    /// complete in roughly `max(item)` shape rather than `chunk-sum` shape. Asserted
    /// structurally via per-worker task assignments, not wall-clock: the worker that
    /// claims the slow item must end up with exactly that one task, every other item
    /// must be drained by the remaining workers *while the slow item is still running*
    /// (the slow item spins until it observes all other items complete, so mere test
    /// completion proves it), and no worker may sit on queued work. The old fixed-chunk
    /// scheduler deadlocks here: the slow item's chunk-mates wait behind it forever.
    #[test]
    fn skewed_workload_completes_at_max_item_not_chunk_sum() {
        const ITEMS: usize = 32;
        const WORKERS: usize = 4;
        let v: Vec<usize> = (0..ITEMS).collect();
        let fast_done = AtomicUsize::new(0);
        let (out, assignments) = claiming_map(
            &v,
            &|&i| {
                if i == 0 {
                    // The slow item: runs until every other item has completed. Under
                    // chunked scheduling items 1..ITEMS/WORKERS sit behind this one in
                    // the same chunk and the wait can never be satisfied.
                    let start = std::time::Instant::now();
                    while fast_done.load(Ordering::SeqCst) < ITEMS - 1 {
                        assert!(
                            start.elapsed() < std::time::Duration::from_secs(30),
                            "scheduler left items queued behind the slow item"
                        );
                        std::thread::yield_now();
                    }
                } else {
                    fast_done.fetch_add(1, Ordering::SeqCst);
                }
                i * 10
            },
            WORKERS,
        );
        assert_eq!(out, (0..ITEMS).map(|i| i * 10).collect::<Vec<usize>>());
        let slow_worker = assignments
            .iter()
            .position(|idx| idx.contains(&0))
            .expect("someone ran item 0");
        assert_eq!(
            assignments[slow_worker],
            vec![0],
            "the slow item's worker must not have been assigned further queued work"
        );
        let drained: usize = assignments
            .iter()
            .enumerate()
            .filter(|(w, _)| *w != slow_worker)
            .map(|(_, idx)| idx.len())
            .sum();
        assert_eq!(drained, ITEMS - 1, "other workers drain everything else");
    }

    #[test]
    fn worker_limit_overrides_parallelism() {
        with_worker_limit(1, || assert_eq!(worker_count(100), 1));
        with_worker_limit(3, || assert_eq!(worker_count(100), 3));
        with_worker_limit(3, || {
            assert_eq!(worker_count(2), 2, "still capped by item count")
        });
        with_worker_limit(7, || {
            let v: Vec<u64> = (0..50).collect();
            let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
            assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<u64>>());
        });
    }

    /// With recording enabled the pool must emit one `task` span per item and
    /// per-worker `tasks` counters summing to the item count. Other tests in this
    /// binary may run pools concurrently while recording is on, so the assertions
    /// are lower bounds.
    #[test]
    fn observed_pool_emits_worker_timeline() {
        sim_obs::reset();
        sim_obs::enable();
        let v: Vec<u64> = (0..64).collect();
        let (out, _) = claiming_map(&v, &|x| x + 1, 3);
        sim_obs::disable();
        let drained = sim_obs::drain();
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
        let events: Vec<&sim_obs::Event> = drained.threads.iter().flat_map(|t| &t.events).collect();
        let task_spans = events
            .iter()
            .filter(|e| e.kind == sim_obs::EventKind::Span && e.name == "task")
            .count();
        assert!(
            task_spans >= 64,
            "expected >=64 task spans, saw {task_spans}"
        );
        let claimed: f64 = events
            .iter()
            .filter(|e| e.kind == sim_obs::EventKind::Counter && e.name == "tasks")
            .map(|e| e.value)
            .sum();
        assert!(claimed >= 64.0, "workers reported {claimed} claims");
        assert!(
            events
                .iter()
                .any(|e| e.kind == sim_obs::EventKind::Counter && e.name == "idle_ns"),
            "workers report idle time"
        );
    }

    #[test]
    fn spawn_runs_detached_jobs_and_delivers_results_via_channels() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            spawn(move || {
                let _ = tx.send(i * i);
            });
        }
        drop(tx);
        let mut results: Vec<u64> = rx.iter().collect();
        results.sort_unstable();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<u64>>());
    }

    #[test]
    fn spawn_survives_a_panicking_job() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<u32>();
        spawn(move || {
            let _tx = tx; // dropped on unwind: receiver sees a disconnect, not a hang
            panic!("job panic must not kill the pool");
        });
        assert!(
            rx.recv().is_err(),
            "panicking job's channel must disconnect"
        );
        // The pool must still process jobs afterwards.
        let (tx2, rx2) = mpsc::channel();
        spawn(move || {
            let _ = tx2.send(7u32);
        });
        assert_eq!(rx2.recv(), Ok(7));
    }

    #[test]
    fn single_worker_falls_back_to_sequential() {
        let v: Vec<u32> = (0..10).collect();
        let (out, assignments) = claiming_map(&v, &|x| x + 1, 1);
        assert_eq!(out, (1..=10).collect::<Vec<u32>>());
        assert_eq!(assignments, vec![(0..10).collect::<Vec<usize>>()]);
    }
}
