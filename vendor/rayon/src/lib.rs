//! Offline stand-in for `rayon`, covering the slice-parallelism subset this workspace
//! uses: `par_iter()` followed by `map(..).collect()` or `for_each(..)`.
//!
//! Work is executed on `std::thread::scope` threads, one chunk per available core, and
//! `collect` preserves input order (chunks are joined in order), so results are identical
//! to the sequential evaluation — matching rayon's deterministic-collect semantics the
//! experiment runner relies on.

use std::num::NonZeroUsize;

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Run `f` over every item, in parallel chunks, returning results in input order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = worker_count(items.len());
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("rayon stand-in worker panicked"));
        }
        out
    })
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }
}

/// Result of `par_iter().map(f)`; terminal operation is `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter()` on `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = vec![];
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
