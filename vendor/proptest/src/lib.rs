//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range/tuple/`collection::vec`/`any::<bool>()`
//! strategies, and `prop_assert!`/`prop_assert_eq!`. Unlike real proptest there is no
//! shrinking and no failure persistence: cases are drawn from a deterministic RNG seeded by
//! the test name, so a failing case reproduces on every run. That trade-off keeps the crate
//! dependency-free for an environment without crates.io access.

use std::ops::Range;

/// Deterministic case generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment variable (matching
    /// real proptest) so CI can run a larger count than local edit-compile loops.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Drives one property: holds the RNG and the configured case count.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // Seed from the test name so each property gets its own deterministic stream.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: TestRng::new(seed),
            cases: config.cases,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of values for one macro binding.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors whose length is drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (@body($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for _case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    pub use super::collection;
    pub use super::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use super::{Arbitrary, ProptestConfig, Strategy, TestRng, TestRunner};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!(x < 100);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in collection::vec((0usize..4, any::<bool>()), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _b) in v {
                prop_assert!(n < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..8) {
            prop_assert!(x < 8);
        }
    }
}
