//! Offline stand-in for the `memmap2` crate (read-only subset).
//!
//! Mirrors the real crate's API shape — [`Mmap`], [`MmapOptions`], `unsafe fn map(&File)`,
//! `Deref<Target = [u8]>` — so swapping to the registry crate needs no source changes.
//! Only read-only, whole-file, shared-to-private mappings are supported, which is all the
//! `.atrc` zero-copy reader needs.
//!
//! Two backings exist behind the same type:
//!
//! * **Mapped** (64-bit unix): a real `mmap(2)` of the whole file, `PROT_READ` /
//!   `MAP_PRIVATE`, unmapped on drop.
//! * **Owned** (everything else, zero-length files, or any `mmap` failure): the file is
//!   read into an anonymous buffer. Callers observe identical bytes either way — the
//!   fallback trades the page cache sharing for portability, never correctness.
//!
//! Stand-in-only test knob: setting the environment variable `MEMMAP2_FORCE_FALLBACK`
//! (to any value) forces the plain-read backing, so equivalence tests can exercise the
//! fallback deterministically. The real crate ignores the variable, and nothing in the
//! workspace depends on it outside of tests.

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Backing storage for an [`Mmap`]. Private so the fallback is invisible to callers.
enum Backing {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// Plain-read fallback (also used for empty files, where `mmap` would reject len 0).
    Owned(Box<[u8]>),
}

// SAFETY: the mapped region is read-only (`PROT_READ`, `MAP_PRIVATE`) and the owned
// variant is a plain buffer; neither has interior mutability, so sharing references
// across threads is safe, as is moving the handle.
unsafe impl Send for Backing {}
// SAFETY: see `Send` above — all access is through `&[u8]`.
unsafe impl Sync for Backing {}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: `ptr`/`len` came from a successful `mmap` call of exactly `len`
            // bytes and are unmapped exactly once, here.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

/// An immutable memory-mapped view of a file (stand-in subset of `memmap2::Mmap`).
pub struct Mmap {
    backing: Backing,
}

/// Builder matching `memmap2::MmapOptions` (only the read-only whole-file subset).
#[derive(Debug, Default, Clone)]
pub struct MmapOptions {
    _private: (),
}

impl MmapOptions {
    /// A builder with default options (map the whole file, read-only).
    pub fn new() -> Self {
        MmapOptions::default()
    }

    /// Map `file` read-only.
    ///
    /// # Safety
    ///
    /// As in the real crate: the caller must ensure the underlying file is not truncated
    /// or mutated while the mapping is alive, otherwise reads through the returned slice
    /// are undefined (the plain-read fallback is immune, but callers must not rely on
    /// landing on it).
    pub unsafe fn map(&self, file: &File) -> io::Result<Mmap> {
        Mmap::map(file)
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// See [`MmapOptions::map`]: the file must not be mutated or truncated while the
    /// mapping is alive.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 || std::env::var_os("MEMMAP2_FORCE_FALLBACK").is_some() {
            return Ok(Mmap {
                backing: Backing::Owned(read_fallback(file, len)?),
            });
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: mapping `len` bytes of an open fd at offset 0; failure is checked
            // against MAP_FAILED below and falls back to a plain read.
            let ptr = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr != usize::MAX as *mut std::ffi::c_void && !ptr.is_null() {
                return Ok(Mmap {
                    backing: Backing::Mapped {
                        ptr: ptr as *const u8,
                        len,
                    },
                });
            }
        }
        Ok(Mmap {
            backing: Backing::Owned(read_fallback(file, len)?),
        })
    }

    /// Length of the mapped view in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: the region [ptr, ptr+len) is a live PROT_READ mapping owned by
                // `self`; it stays valid for the lifetime of the returned borrow.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned(bytes) => bytes,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => "mapped",
            Backing::Owned(_) => "owned",
        };
        f.debug_struct("Mmap")
            .field("backing", &kind)
            .field("len", &self.len())
            .finish()
    }
}

/// Read the whole file without disturbing its seek cursor.
fn read_fallback(file: &File, len: usize) -> io::Result<Box<[u8]>> {
    let mut buf = vec![0u8; len];
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(&mut buf, 0)?;
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut handle = file;
        let saved = handle.seek(SeekFrom::Current(0))?;
        handle.seek(SeekFrom::Start(0))?;
        handle.read_exact(&mut buf)?;
        handle.seek(SeekFrom::Start(saved))?;
    }
    Ok(buf.into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!("memmap2-standin-{name}-{}", contents.len()));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(contents).expect("write temp file");
        f.sync_all().ok();
        drop(f);
        let f = File::open(&path).expect("reopen temp file");
        (path, f)
    }

    #[test]
    fn maps_file_contents_bit_identically() {
        let contents: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let (path, file) = temp_file("roundtrip", &contents);
        // SAFETY: the temp file is private to this test and not mutated while mapped.
        let map = unsafe { Mmap::map(&file) }.expect("map");
        assert_eq!(&map[..], &contents[..]);
        assert_eq!(map.len(), contents.len());
        assert!(!map.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let (path, file) = temp_file("empty", b"");
        // SAFETY: private temp file, not mutated while mapped.
        let map = unsafe { Mmap::map(&file) }.expect("map");
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fallback_read_does_not_disturb_the_cursor() {
        use std::io::{Read, Seek, SeekFrom};
        let contents = b"cursor-stability".to_vec();
        let (path, mut file) = temp_file("cursor", &contents);
        file.seek(SeekFrom::Start(7)).unwrap();
        let owned = read_fallback(&file, contents.len()).expect("fallback read");
        assert_eq!(&owned[..], &contents[..]);
        let mut rest = Vec::new();
        file.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, &contents[7..], "cursor moved by fallback read");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn options_builder_maps_like_the_direct_call() {
        let contents = vec![0xabu8; 4096];
        let (path, file) = temp_file("options", &contents);
        // SAFETY: private temp file, not mutated while mapped.
        let map = unsafe { MmapOptions::new().map(&file) }.expect("map");
        assert_eq!(map.as_ref(), &contents[..]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mmap_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
