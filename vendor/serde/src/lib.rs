//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` *names* (trait + no-op derive macro) so the
//! workspace's data types keep their serde annotations without a crates.io dependency.
//! Nothing in this workspace serializes through serde at runtime; swap this for the real
//! crate in the workspace manifest if that changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the derive emits no impl and nothing in-tree bounds on it.
pub trait Serialize {}

/// Marker trait; the derive emits no impl and nothing in-tree bounds on it.
pub trait Deserialize<'de>: Sized {}
