//! Capture→write→read round-trip guarantees of the `trace-io` subsystem, plus its
//! corruption/truncation error paths.

use std::path::PathBuf;

use proptest::prelude::*;

use adapt_llc::sim::trace::{MemAccess, TraceSource};
use adapt_llc::traces::{
    decode_all, read_header, TraceCaptureOptions, TraceError, TraceReader, TraceWriter,
};
use adapt_llc::workloads::{self, all_benchmarks, generate_mixes, StudyKind};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adapt_roundtrip_{name}.atrc"))
}

/// Every Table 4 synthetic pattern round-trips: capture N accesses, write, read back,
/// compare against a freshly constructed generator.
#[test]
fn every_synthetic_pattern_roundtrips_exactly() {
    const N: u64 = 600;
    let path = tmp("all_patterns");
    for (i, bench) in all_benchmarks().iter().enumerate() {
        let mut writer = TraceWriter::create(&path, 1, bench.name).unwrap();
        bench.capture(&mut writer, 0, 128, 7 + i as u64, N).unwrap();
        writer.finish().unwrap();

        let mut replay = TraceReader::open(&path, 0).unwrap();
        assert_eq!(replay.label(), bench.name);
        let mut fresh = bench.trace(0, 128, 7 + i as u64);
        for k in 0..N {
            assert_eq!(
                replay.next_access(),
                fresh.next_access(),
                "{}: record {k} differs after round-trip",
                bench.name
            );
        }
    }
    std::fs::remove_file(path).ok();
}

/// Whole-mix capture via `workloads::capture_to_file` round-trips stream-for-stream.
#[test]
fn captured_mix_decodes_to_the_live_streams() {
    let path = tmp("mix");
    let mix = generate_mixes(StudyKind::Cores4, 1, 5).remove(0);
    workloads::capture_to_file::<TraceWriter>(&path, &mix, 64, 5, 400).unwrap();

    let header = read_header(&path).unwrap();
    assert_eq!(header.cores.len(), 4);
    assert!(header.checksums);
    let labels: Vec<String> = header.cores.iter().map(|c| c.label.clone()).collect();
    assert_eq!(labels, mix.benchmarks);

    let streams = decode_all(&path).unwrap();
    let mut live = mix.trace_sources(64, 5);
    for (core, src) in live.iter_mut().enumerate() {
        let expect: Vec<MemAccess> = (0..400).map(|_| src.next_access()).collect();
        assert_eq!(streams[core], expect, "core {core} stream differs");
        assert_eq!(header.cores[core].records, 400);
        assert_eq!(
            header.cores[core].instructions,
            expect.iter().map(|a| a.instructions()).sum::<u64>()
        );
    }
    std::fs::remove_file(path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary access sequences (including addresses above 2^40 and non-monotone
    /// deltas) survive the delta+varint encoding bit-for-bit, at any block size, with or
    /// without checksums.
    #[test]
    fn arbitrary_records_roundtrip(
        raw in proptest::collection::vec(
            (0u64..(1u64 << 45), 0u64..(1u64 << 32), any::<bool>(), 0u32..10_000),
            1..300,
        ),
        block_records in 1usize..64,
        checksums in any::<bool>(),
    ) {
        let records: Vec<MemAccess> = raw
            .iter()
            .map(|&(addr, pc, is_write, non_mem_instrs)| MemAccess {
                addr,
                pc,
                is_write,
                non_mem_instrs,
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "adapt_roundtrip_prop_{block_records}_{checksums}_{}.atrc",
            records.len()
        ));
        let opts = TraceCaptureOptions {
            records_per_block: block_records,
            checksums,
            ..Default::default()
        };
        let mut writer = TraceWriter::with_options(&path, 1, "prop", opts).unwrap();
        for r in &records {
            writer.push(0, *r).unwrap();
        }
        let summary = writer.finish().unwrap();
        prop_assert_eq!(summary.total_records, records.len() as u64);

        let decoded = decode_all(&path).unwrap().remove(0);
        prop_assert_eq!(decoded, records);
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn header_error_paths_are_reported() {
    let path = tmp("errors");
    let mix = generate_mixes(StudyKind::Cores4, 1, 2).remove(0);
    workloads::capture_to_file::<TraceWriter>(&path, &mix, 64, 2, 100).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'Z';
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(read_header(&path), Err(TraceError::BadMagic(_))));

    // Unsupported (future) version.
    let mut bad = good.clone();
    bad[4] = 0x7f;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        read_header(&path),
        Err(TraceError::UnsupportedVersion(_))
    ));

    // Truncation anywhere in the header is detected.
    for cut in [1usize, 5, 9, 13, 40] {
        std::fs::write(&path, &good[..cut.min(good.len())]).unwrap();
        assert!(
            matches!(read_header(&path), Err(TraceError::Truncated(_))),
            "cut at {cut} must report truncation"
        );
    }

    // A flipped stream byte is caught by the per-block checksum during verify. The data
    // region ends at the footer; the bytes just before it are the last chunk's payload.
    std::fs::write(&path, &good).unwrap();
    let data_end = read_header(&path).unwrap().data_end as usize;
    let mut bad = good.clone();
    bad[data_end - 3] ^= 0x55;
    std::fs::write(&path, &bad).unwrap();
    let header = read_header(&path).unwrap();
    let mut failures = 0;
    for core in 0..header.cores.len() {
        let mut reader = TraceReader::open(&path, core).unwrap();
        if reader.verify().is_err() {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 1,
        "exactly the tampered core must fail verification"
    );

    // Clobbering the trailing footer pointer (the last 8 bytes of a v2 file) is caught
    // at header-parse time.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x55;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        read_header(&path),
        Err(TraceError::Corrupt(_)) | Err(TraceError::Truncated(_))
    ));

    std::fs::remove_file(path).ok();
}

#[test]
fn replay_survives_many_wraps_without_drift() {
    let path = tmp("wraps");
    let bench = adapt_llc::workloads::benchmark_by_name("gcc").unwrap();
    let mut writer = TraceWriter::create(&path, 1, "gcc").unwrap();
    bench.capture(&mut writer, 0, 64, 3, 257).unwrap();
    writer.finish().unwrap();

    let mut replay = TraceReader::open(&path, 0).unwrap();
    let first: Vec<MemAccess> = (0..257).map(|_| replay.next_access()).collect();
    for wrap in 1..=4u64 {
        let again: Vec<MemAccess> = (0..257).map(|_| replay.next_access()).collect();
        assert_eq!(again, first, "wrap {wrap} drifted");
        assert_eq!(replay.wraps(), wrap);
    }
    std::fs::remove_file(path).ok();
}
