//! End-to-end tests of the many-core scaling study and the cycle-accounted bank
//! contention model: a 64-core run completes through the corpus sweep engine with
//! per-bank occupancy/stall metrics, serial and parallel engines stay bit-identical
//! under contention, per-core stall attribution sums exactly to the global
//! accounting (serial and parallel, at 4 and 128 cores), and zero-contention
//! configurations reproduce the seed's flat-latency banking exactly.

use cache_sim::addr::BlockAddr;
use cache_sim::config::SystemConfig;
use cache_sim::llc::SharedLlc;
use cache_sim::system::DefaultSrripPolicy;
use experiments::runner::{evaluate_policies_on_mixes, evaluate_policies_serial};
use experiments::{scaling, ExperimentScale, PolicyKind};
use workloads::{generate_mixes, StudyKind};

const INSTRUCTIONS: u64 = 20_000;

#[test]
fn sixty_four_core_run_completes_with_bank_metrics_and_engine_bit_identity() {
    // The acceptance bar: a 64-core run under the contention model completes via the
    // scaling study's path, reports per-bank occupancy/stall metrics, and the parallel
    // grid reproduces the serial reference bit-for-bit.
    let scale = ExperimentScale::Smoke;
    let study = StudyKind::Cores64;
    let cfg = scale.system_config(study);
    assert_eq!(cfg.num_cores, 64);
    assert!(
        !cfg.llc.contention.is_flat(),
        "scaling configs are contended"
    );

    let mixes = generate_mixes(study, 1, scale.seed());
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());
    let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());

    assert_eq!(serial.len(), grid.len());
    for (s, g) in serial.iter().zip(&grid) {
        assert_eq!(s.mix_id, g.mix_id);
        assert_eq!(s.policy, g.policy);
        assert_eq!(s.weighted_speedup(), g.weighted_speedup());
        assert_eq!(s.llc_global, g.llc_global, "global LLC stats must match");
        assert_eq!(s.llc_banks, g.llc_banks, "per-bank stats must match");
        assert_eq!(
            s.core_stalls, g.core_stalls,
            "per-core stall attribution must match"
        );
        assert_eq!(s.final_cycle, g.final_cycle);
        for (a, b) in s.per_app.iter().zip(&g.per_app) {
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.llc_mpki, b.llc_mpki);
        }
    }
    // Per-bank occupancy/stall metrics are present and the banks saw traffic.
    for eval in &grid {
        assert_eq!(eval.per_app.len(), 64);
        assert_eq!(eval.llc_banks.len(), cfg.llc.banks);
        assert!(eval.llc_banks.iter().any(|b| b.requests > 0));
        assert!((0.0..=1.0).contains(&eval.bank_stall_share()));
        assert!((0.0..=1.0).contains(&eval.fairness()));
    }
}

#[test]
fn scaling_study_renders_throughput_fairness_and_bank_stalls_at_64_cores() {
    let result = scaling::run(ExperimentScale::Smoke, &[64], true, Some(1)).unwrap();
    assert_eq!(result.points.len(), 1);
    let point = &result.points[0];
    assert_eq!(point.cores, 64);
    assert_eq!(point.per_bank.len(), point.banks);
    assert!(point.rows.len() >= 2);
    assert!(point.rows.iter().all(|r| r.mean_weighted_speedup > 0.0));
    let text = scaling::render(&result);
    assert!(text.contains("64 cores"));
    assert!(text.contains("bank-stall share"));
    assert!(text.contains("Per-bank occupancy/stalls"));
}

#[test]
fn scaling_study_is_deterministic_across_repeated_runs() {
    let run = || {
        let point = scaling::run_point(ExperimentScale::Smoke, StudyKind::Cores32, true, Some(1));
        point
            .rows
            .iter()
            .map(|r| {
                (
                    r.policy.clone(),
                    r.mean_weighted_speedup,
                    r.mean_fairness,
                    r.mean_bank_stall_share,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Per-core stall attribution must sum exactly to the global accounting: LLC bank
/// queue/admission and MSHR stalls against `LlcGlobalStats`, DRAM queue+admission
/// against `DramStats.queue_cycles` (whose delay is the sum of both phases).
fn assert_stall_conservation(evals: &[experiments::runner::MixEvaluation], num_cores: usize) {
    for e in evals {
        assert_eq!(e.core_stalls.len(), num_cores);
        let llc_queue: u64 = e.core_stalls.iter().map(|c| c.llc_queue_cycles).sum();
        let llc_admission: u64 = e.core_stalls.iter().map(|c| c.llc_admission_cycles).sum();
        let mshr: u64 = e.core_stalls.iter().map(|c| c.mshr_stall_cycles).sum();
        assert_eq!(
            llc_queue, e.llc_global.bank_queue_cycles,
            "policy {:?}: LLC bank queue cycles must be conserved",
            e.policy
        );
        assert_eq!(
            llc_admission, e.llc_global.bank_admission_stall_cycles,
            "policy {:?}: LLC admission stalls must be conserved",
            e.policy
        );
        assert_eq!(
            mshr, e.llc_global.mshr_stall_cycles,
            "policy {:?}: MSHR stalls must be conserved",
            e.policy
        );
        // Per-bank and per-core views aggregate the same underlying cycles.
        let bank_stalls: u64 = e.llc_banks.iter().map(|b| b.stall_cycles()).sum();
        assert_eq!(
            bank_stalls,
            llc_queue + llc_admission,
            "per-bank and per-core LLC stall views must agree"
        );
    }
}

#[test]
fn per_core_stall_attribution_is_conserved_at_4_cores_serial_and_parallel() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.scaling_config(4, true);
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());
    let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());
    assert_stall_conservation(&serial, 4);
    assert_stall_conservation(&grid, 4);
    for (s, g) in serial.iter().zip(&grid) {
        assert_eq!(s.core_stalls, g.core_stalls);
    }
    // A contended 4-core run actually attributes something.
    assert!(
        serial
            .iter()
            .any(|e| e.core_stalls.iter().any(|c| c.total() > 0)),
        "contended runs must attribute stall cycles to cores"
    );
}

#[test]
fn per_core_stall_attribution_is_conserved_at_128_cores_serial_and_parallel() {
    // The 128-core wall: the widest point the memsys study reports, under the
    // realistic FR-FCFS + NUCA memory system so every attribution path is exercised
    // (row classes, NUCA wire delay, MSHR pressure, DRAM queues).
    let scale = ExperimentScale::Smoke;
    let cfg = scale.scaling_config_memsys(128, experiments::scale::MemSystem::FrFcfsNuca);
    assert_eq!(cfg.num_cores, 128);
    assert!(cfg.dram.row_model.enabled);
    let mixes = generate_mixes(StudyKind::Cores128, 1, scale.seed());
    let policies = [PolicyKind::TaDrrip];
    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());
    let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, scale.seed());
    assert_stall_conservation(&serial, 128);
    assert_stall_conservation(&grid, 128);
    for (s, g) in serial.iter().zip(&grid) {
        assert_eq!(
            s.core_stalls, g.core_stalls,
            "128-core grid must stay bit-identical"
        );
        assert_eq!(s.llc_global, g.llc_global);
        assert_eq!(s.final_cycle, g.final_cycle);
    }
    // The realistic memory system classified rows and accumulated NUCA cycles.
    for e in &serial {
        assert!(
            e.llc_global.nuca_cycles > 0,
            "mesh NUCA must add wire latency"
        );
    }
}

#[test]
fn zero_contention_config_reproduces_the_flat_model_latencies_exactly() {
    // End-to-end regression: drive the shared LLC with a deterministic access burst
    // under the default (flat) contention configuration and hold every latency against
    // an independent reimplementation of the seed's `busy_until` bank arithmetic.
    let cfg = SystemConfig::tiny(4);
    assert!(cfg.llc.contention.is_flat());
    let sets = cfg.llc.geometry.num_sets();
    let ways = cfg.llc.geometry.ways;
    let banks = cfg.llc.banks;
    let hit_latency = cfg.llc.latency;
    let busy = cfg.llc.bank_busy_cycles;
    let mut llc = SharedLlc::new(
        cfg.llc,
        4,
        1_000_000,
        Box::new(DefaultSrripPolicy::new(sets, ways)),
    );

    let mut busy_until = vec![0u64; banks];
    let mut x = 0x2545f4914f6cdd1du64;
    let mut now = 0u64;
    for i in 0..5_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        now += x % 7;
        let block = BlockAddr(x % 4096);
        let lookup = llc.access((i % 4) as usize, 0, block, true, false, now);
        // Reference: flat single-port bank with an unbounded queue.
        let bank = block.set_index(sets) & (banks - 1);
        let delay = busy_until[bank].saturating_sub(now);
        busy_until[bank] = now + delay + busy;
        assert_eq!(
            lookup.latency,
            hit_latency + delay,
            "access {i}: zero-contention latency diverged from the flat model"
        );
        if !lookup.hit {
            llc.fill((i % 4) as usize, 0, block, false, now);
        }
    }
    // Flat banking never refuses admission.
    assert_eq!(llc.global_stats().bank_admission_stall_cycles, 0);
    assert!(llc
        .bank_stats()
        .iter()
        .all(|b| b.admission_stall_cycles == 0));
}
