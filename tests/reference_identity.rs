//! End-to-end bit-identity of the data-oriented hot path against the frozen
//! pre-refactor reference engine (`cache_sim::reference`).
//!
//! The fast path differs from the seed in line layout (structure-of-arrays tags +
//! packed valid/dirty bitmasks), policy dispatch (monomorphized enum instead of
//! `Box<dyn ...>`), way prediction, core scheduling (linear scan instead of a binary
//! heap) and core-timing arithmetic (integer halving instead of f64 rounding) — every
//! one of which must be invisible in results. These tests run whole systems under every
//! `PolicyKind`, in flat and contended bank configurations, and require per-core
//! IPC/MPKI, LLC global statistics (including interval counts), per-bank statistics and
//! final cycles to agree exactly.

use adapt_llc::experiments::runner::{evaluate_mix, evaluate_mix_reference, MixEvaluation};
use adapt_llc::experiments::{ExperimentScale, PolicyKind};
use adapt_llc::sim::config::BankContentionConfig;
use adapt_llc::workloads::{generate_mixes, StudyKind};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 1;

fn all_policy_kinds() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::TaDrrip,
        PolicyKind::TaDrripSd(64),
        PolicyKind::TaDrripForced,
        PolicyKind::Ship,
        PolicyKind::Eaf,
        PolicyKind::AdaptIns,
        PolicyKind::AdaptBp32,
        PolicyKind::TaDrripBypass,
        PolicyKind::ShipBypass,
        PolicyKind::EafBypass,
    ]
}

fn assert_identical(a: &MixEvaluation, b: &MixEvaluation, what: &str) {
    assert_eq!(a.policy_label, b.policy_label, "{what}: label");
    for (x, y) in a.per_app.iter().zip(&b.per_app) {
        assert_eq!(x.name, y.name, "{what}");
        assert_eq!(x.ipc, y.ipc, "{what}: {} IPC", x.name);
        assert_eq!(x.ipc_alone, y.ipc_alone, "{what}: {} alone IPC", x.name);
        assert_eq!(x.l2_mpki, y.l2_mpki, "{what}: {} L2 MPKI", x.name);
        assert_eq!(x.llc_mpki, y.llc_mpki, "{what}: {} LLC MPKI", x.name);
    }
    assert_eq!(
        a.weighted_speedup(),
        b.weighted_speedup(),
        "{what}: weighted speedup"
    );
    assert_eq!(a.metrics.fairness, b.metrics.fairness, "{what}: fairness");
    assert_eq!(a.llc_global, b.llc_global, "{what}: LLC global stats");
    assert_eq!(a.llc_banks, b.llc_banks, "{what}: per-bank stats");
    assert_eq!(a.final_cycle, b.final_cycle, "{what}: final cycle");
}

#[test]
fn every_policy_kind_is_bit_identical_to_the_reference_engine() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mix = &generate_mixes(StudyKind::Cores4, 1, scale.seed())[0];
    for kind in all_policy_kinds() {
        let fast = evaluate_mix(&cfg, mix, kind, INSTRUCTIONS, SEED);
        let reference = evaluate_mix_reference(&cfg, mix, kind, INSTRUCTIONS, SEED);
        assert_identical(&fast, &reference, &format!("{kind:?}"));
        assert!(
            fast.llc_global.intervals_completed > 0,
            "{kind:?}: the run must exercise interval rollover"
        );
    }
}

#[test]
fn contended_banks_stay_bit_identical_to_the_reference_engine() {
    let scale = ExperimentScale::Smoke;
    let mut cfg = scale.system_config(StudyKind::Cores4);
    cfg.llc.contention = BankContentionConfig::contended(2, 4);
    cfg.dram.contention = BankContentionConfig::contended(2, 4);
    let mix = &generate_mixes(StudyKind::Cores4, 1, scale.seed())[0];
    for kind in [
        PolicyKind::TaDrrip,
        PolicyKind::AdaptBp32,
        PolicyKind::Eaf,
        PolicyKind::Ship,
    ] {
        let fast = evaluate_mix(&cfg, mix, kind, INSTRUCTIONS, SEED);
        let reference = evaluate_mix_reference(&cfg, mix, kind, INSTRUCTIONS, SEED);
        assert_identical(&fast, &reference, &format!("contended {kind:?}"));
        assert!(
            fast.llc_banks.iter().any(|b| b.requests > 0),
            "contended run must exercise the banks"
        );
    }
}

#[test]
fn eight_core_mix_is_bit_identical_to_the_reference_engine() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores8);
    let mix = &generate_mixes(StudyKind::Cores8, 1, scale.seed())[0];
    let fast = evaluate_mix(&cfg, mix, PolicyKind::AdaptBp32, INSTRUCTIONS, SEED);
    let reference = evaluate_mix_reference(&cfg, mix, PolicyKind::AdaptBp32, INSTRUCTIONS, SEED);
    assert_identical(&fast, &reference, "8-core AdaptBp32");
    assert_eq!(fast.per_app.len(), 8);
}
