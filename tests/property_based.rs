//! Property-based tests (proptest) over the core data structures and invariants.

use proptest::prelude::*;

use adapt_llc::adapt::{AdaptConfig, FootprintMonitor, InsertionPriorityPredictor, PriorityLevel};
use adapt_llc::metrics as mc;
use adapt_llc::policies::{
    build_baseline, build_baseline_any, AnyPolicy, BaselineKind, LruPolicy, SrripPolicy,
};
use adapt_llc::sim::addr::BlockAddr;
use adapt_llc::sim::config::{
    BankContentionConfig, CacheGeometry, LlcConfig, PrivateCacheConfig, PrivatePolicyKind,
};
use adapt_llc::sim::llc::{LlcModel, SharedLlc};
use adapt_llc::sim::private_cache::{Lookup, PrivateCache, PrivateCacheModel};
use adapt_llc::sim::reference::{ReferenceLlc, ReferencePrivateCache};
use adapt_llc::sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray,
};
use adapt_llc::workloads::{classify, generate_mixes, MemIntensity, StudyKind};

fn ctx(core: usize, set: usize, block: u64) -> AccessContext {
    AccessContext {
        core_id: core,
        pc: 0,
        block_addr: block,
        set_index: set,
        is_demand: true,
        is_write: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A private cache never reports more hits+misses than accesses, never exceeds its
    /// capacity, and hits exactly the blocks that are present.
    #[test]
    fn private_cache_bookkeeping_is_consistent(
        addrs in proptest::collection::vec(0u64..4096, 1..400),
        write_mask in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let cfg = PrivateCacheConfig {
            geometry: CacheGeometry::new(4 * 1024, 4),
            latency: 1,
            policy: PrivatePolicyKind::Lru,
        };
        let mut cache = PrivateCache::new(cfg);
        for (i, addr) in addrs.iter().enumerate() {
            let block = BlockAddr(*addr);
            let is_write = *write_mask.get(i % write_mask.len()).unwrap_or(&false);
            if cache.access(block, is_write) == Lookup::Miss {
                cache.fill(block, is_write, false);
            }
            prop_assert!(cache.probe(block), "a just-filled block must be present");
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(cache.occupancy() <= cache.capacity_lines());
        prop_assert!(s.writebacks <= s.evictions);
    }

    /// RRPV arrays stay within 2-bit bounds and victim search always returns a valid way.
    #[test]
    fn rrpv_array_invariants(ops in proptest::collection::vec((0usize..8, 0usize..8, 0u8..8), 1..200)) {
        let mut arr = RrpvArray::new(8, 8);
        for (set, way, value) in ops {
            arr.set(set, way, value);
            prop_assert!(arr.get(set, way) <= 3);
            let victim = arr.find_victim(set);
            prop_assert!(victim < 8);
            prop_assert_eq!(arr.get(set, victim), 3);
        }
    }

    /// The Footprint-number of any access stream never exceeds the number of distinct
    /// blocks per set in that stream (no over-counting for streams that fit the sampler),
    /// and never exceeds the saturation bound.
    #[test]
    fn footprint_bounded_by_distinct_blocks(
        blocks in proptest::collection::vec(0u64..12, 1..500),
    ) {
        use std::collections::HashSet;
        let sets = 4usize;
        let mut monitor = FootprintMonitor::new(AdaptConfig::all_sets_profiler(), sets, 1);
        let mut per_set: Vec<HashSet<u64>> = vec![HashSet::new(); sets];
        for b in &blocks {
            let set = (*b as usize) % sets;
            monitor.observe(0, set, *b);
            per_set[set].insert(*b);
        }
        let fpn = monitor.end_interval()[0];
        let max_distinct = per_set.iter().map(|s| s.len()).max().unwrap_or(0) as f64;
        prop_assert!(fpn <= max_distinct + 1e-9, "fpn {} > max distinct {}", fpn, max_distinct);
        prop_assert!(fpn <= 32.0 + 1e-9);
    }

    /// Priority classification is monotonic in the Footprint-number and total.
    #[test]
    fn priority_classification_is_monotonic(a in 0.0f64..40.0, b in 0.0f64..40.0) {
        let cfg = AdaptConfig::paper();
        let mut pa = InsertionPriorityPredictor::new(cfg);
        let mut pb = InsertionPriorityPredictor::new(cfg);
        pa.update(a.min(b));
        pb.update(a.max(b));
        let rank = |p: PriorityLevel| match p {
            PriorityLevel::High => 0,
            PriorityLevel::Medium => 1,
            PriorityLevel::Low => 2,
            PriorityLevel::Least => 3,
        };
        prop_assert!(rank(pa.priority()) <= rank(pb.priority()));
    }

    /// Insertion decisions always carry a legal RRPV and only Least priority may bypass.
    #[test]
    fn insertion_decisions_are_legal(fpn in 0.0f64..40.0, n in 1usize..200) {
        let mut p = InsertionPriorityPredictor::new(AdaptConfig::paper());
        p.update(fpn);
        for _ in 0..n {
            match p.decide() {
                InsertionDecision::Insert { rrpv } => prop_assert!(rrpv <= 3),
                InsertionDecision::Bypass => {
                    prop_assert_eq!(p.priority(), PriorityLevel::Least);
                }
            }
        }
    }

    /// LRU and SRRIP victim selection always returns an in-range way.
    #[test]
    fn llc_policies_return_valid_victims(
        hits in proptest::collection::vec((0usize..16, 0usize..16), 1..200),
    ) {
        let mut lru = LruPolicy::new(16, 16);
        let mut srrip = SrripPolicy::new(16, 16);
        let lines = vec![LineView { valid: true, owner: 0, block_addr: 0, dirty: false }; 16];
        for (set, way) in hits {
            lru.on_hit(&ctx(0, set, way as u64), way);
            srrip.on_hit(&ctx(0, set, way as u64), way);
            prop_assert!(lru.choose_victim(&ctx(0, set, 0), &lines) < 16);
            prop_assert!(srrip.choose_victim(&ctx(0, set, 0), &lines) < 16);
        }
    }

    /// Weighted speedup is bounded by the core count when no application runs faster shared
    /// than alone, and the mean-of-IPCs ordering HM <= GM <= AM always holds.
    #[test]
    fn metric_bounds_hold(
        alone in proptest::collection::vec(0.05f64..4.0, 1..24),
        degradation in proptest::collection::vec(0.05f64..1.0, 1..24),
    ) {
        let n = alone.len().min(degradation.len());
        let alone = &alone[..n];
        let shared: Vec<f64> = alone.iter().zip(&degradation[..n]).map(|(a, d)| a * d).collect();
        let ws = mc::weighted_speedup(&shared, alone);
        prop_assert!(ws <= n as f64 + 1e-9);
        prop_assert!(ws >= 0.0);
        let hm = mc::harmonic_mean_ipc(&shared);
        let gm = mc::geometric_mean_ipc(&shared);
        let am = mc::arithmetic_mean_ipc(&shared);
        prop_assert!(hm <= gm + 1e-9 && gm <= am + 1e-9);
        let hmn = mc::harmonic_mean_normalized(&shared, alone);
        prop_assert!(hmn <= 1.0 + 1e-9);
    }

    /// Table 5 classification is total and consistent with its thresholds.
    #[test]
    fn classification_is_total_and_threshold_consistent(fpn in 0.0f64..64.0, mpki in 0.0f64..100.0) {
        let class = classify(fpn, mpki);
        if fpn < 16.0 && mpki < 1.0 {
            prop_assert_eq!(class, MemIntensity::VeryLow);
        }
        if fpn >= 16.0 && mpki > 25.0 {
            prop_assert_eq!(class, MemIntensity::VeryHigh);
        }
    }

    /// Workload-mix generation always satisfies Table 6's composition rules, for any seed.
    #[test]
    fn mix_generation_respects_composition_rules(seed in 0u64..10_000) {
        let mixes = generate_mixes(StudyKind::Cores16, 2, seed);
        for m in &mixes {
            prop_assert_eq!(m.benchmarks.len(), 16);
            for class in MemIntensity::all() {
                let n = m.specs().iter().filter(|s| s.paper_class == class).count();
                prop_assert!(n >= 2, "class {:?} has {} members", class, n);
            }
        }
        let four = generate_mixes(StudyKind::Cores4, 2, seed);
        for m in &four {
            prop_assert!(!m.thrashing_slots().is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The structure-of-arrays fast-path LLC is bit-identical to the retained
    /// pre-refactor reference across random geometries (including non-power-of-two bank
    /// counts), policies (enum-dispatched and the boxed `Custom` path), and access
    /// streams mixing demand/prefetch reads, writes (dirty lines), L2 write-backs and
    /// interval rollovers: every lookup outcome, fill outcome, per-core/global/bank
    /// statistic and the occupancy map must agree.
    #[test]
    fn soa_llc_is_bit_identical_to_reference(
        set_exp in 3u32..7,
        ways in 1usize..17,
        banks in 1usize..6,
        policy_idx in 0usize..8,
        cores_minus_one in 0usize..4,
        contended in any::<bool>(),
        ops in proptest::collection::vec(
            (0u64..2048, 0usize..16, any::<bool>(), 0usize..8),
            1..400,
        ),
    ) {
        let num_cores = cores_minus_one + 1;
        let sets = 1usize << set_exp;
        let cfg = LlcConfig {
            geometry: CacheGeometry::with_sets(sets, ways),
            latency: 10,
            banks,
            bank_busy_cycles: 4,
            mshr_entries: 4,
            wb_entries: 4,
            wb_retire_at: 3,
            contention: if contended {
                BankContentionConfig::contended(2, 4)
            } else {
                BankContentionConfig::flat()
            },
            nuca: cache_sim::config::NucaConfig::disabled(),
        };
        let kinds = [
            BaselineKind::Lru,
            BaselineKind::Srrip,
            BaselineKind::Brrip,
            BaselineKind::Drrip,
            BaselineKind::TaDrrip,
            BaselineKind::Ship,
            BaselineKind::Eaf,
        ];
        // Small interval so the interval hook rolls over many times inside one case.
        let interval_misses = 8;
        let (fast_policy, ref_policy) = if policy_idx < kinds.len() {
            (
                build_baseline_any(kinds[policy_idx], &cfg, num_cores),
                build_baseline(kinds[policy_idx], &cfg, num_cores),
            )
        } else {
            // The retained dynamic path inside the enum must also track the oracle.
            (
                AnyPolicy::custom(build_baseline(BaselineKind::TaDrrip, &cfg, num_cores)),
                build_baseline(BaselineKind::TaDrrip, &cfg, num_cores),
            )
        };
        let mut fast = SharedLlc::new(cfg, num_cores, interval_misses, fast_policy);
        let mut reference = ReferenceLlc::new(cfg, num_cores, interval_misses, ref_policy);

        for (i, &(addr, pc_sel, is_write, op_sel)) in ops.iter().enumerate() {
            let block = BlockAddr(addr);
            let core = i % num_cores;
            let pc = 0x400 + pc_sel as u64 * 8;
            let now = (i as u64) * 3;
            match op_sel {
                // L2 write-back arriving at the LLC.
                0 => {
                    prop_assert_eq!(
                        fast.writeback(core, block, now),
                        LlcModel::writeback(&mut reference, core, block, now)
                    );
                }
                // Prefetch lookup (never fills).
                1 => {
                    let a = fast.access(core, pc, block, false, false, now);
                    let b = LlcModel::access(&mut reference, core, pc, block, false, false, now);
                    prop_assert_eq!(a, b);
                }
                // Demand access; fill on miss like the system driver does.
                _ => {
                    let a = fast.access(core, pc, block, true, is_write, now);
                    let b = LlcModel::access(&mut reference, core, pc, block, true, is_write, now);
                    prop_assert_eq!(a, b, "lookup diverged at op {}", i);
                    if !a.hit {
                        let fa = fast.fill(core, pc, block, is_write, now);
                        let fb = LlcModel::fill(&mut reference, core, pc, block, is_write, now);
                        prop_assert_eq!(fa, fb, "fill diverged at op {}", i);
                    }
                }
            }
        }

        prop_assert_eq!(fast.global_stats(), reference.global_stats());
        for core in 0..num_cores {
            prop_assert_eq!(fast.core_stats(core), LlcModel::core_stats(&reference, core));
        }
        prop_assert_eq!(fast.bank_stats(), LlcModel::bank_stats(&reference));
        prop_assert_eq!(fast.occupancy(), reference.occupancy());
        prop_assert_eq!(fast.occupancy_by_core(), reference.occupancy_by_core());
    }

    /// The structure-of-arrays private cache is bit-identical to the retained reference
    /// across geometries, replacement policies and access/fill/write-back streams.
    #[test]
    fn soa_private_cache_is_bit_identical_to_reference(
        set_exp in 2u32..6,
        ways in 1usize..9,
        policy_idx in 0usize..3,
        ops in proptest::collection::vec((0u64..1024, any::<bool>(), 0usize..8), 1..400),
    ) {
        let policy = [
            PrivatePolicyKind::Lru,
            PrivatePolicyKind::Srrip,
            PrivatePolicyKind::Drrip,
        ][policy_idx];
        let cfg = PrivateCacheConfig {
            geometry: CacheGeometry::with_sets(1 << set_exp, ways),
            latency: 2,
            policy,
        };
        let mut fast = PrivateCache::new(cfg);
        let mut reference = ReferencePrivateCache::new(cfg);

        for &(addr, is_write, op_sel) in &ops {
            let block = BlockAddr(addr);
            match op_sel {
                0 => {
                    prop_assert_eq!(
                        fast.writeback(block),
                        PrivateCacheModel::writeback(&mut reference, block)
                    );
                }
                1 => {
                    prop_assert_eq!(fast.probe(block), PrivateCacheModel::probe(&reference, block));
                }
                _ => {
                    let a = fast.access(block, is_write);
                    let b = PrivateCacheModel::access(&mut reference, block, is_write);
                    prop_assert_eq!(a, b);
                    if a == Lookup::Miss {
                        // Alternate demand and prefetch fills (prefetch inserts distant).
                        let prefetch = op_sel == 2;
                        prop_assert_eq!(
                            fast.fill(block, is_write, prefetch),
                            PrivateCacheModel::fill(&mut reference, block, is_write, prefetch)
                        );
                    }
                }
            }
        }

        prop_assert_eq!(fast.stats(), PrivateCacheModel::stats(&reference));
    }
}
