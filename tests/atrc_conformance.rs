//! `.atrc` format-conformance suite: golden fixtures locked against the byte-level spec.
//!
//! `tests/data/` holds one tiny canonical trace file per format version. Every test
//! here asserts *byte offsets* against `docs/atrc-format.md` — a format regression
//! fails with a spec citation ("§Version 2 preamble: version field at offset 4") rather
//! than a downstream decode error — and then decodes the fixture against the expected
//! records, so the compatibility promise ("v1/v2 fixtures decode identically forever")
//! is enforced against checked-in bytes, not against bytes the current writer happens
//! to produce.
//!
//! The v2/v3 fixtures are additionally compared against a fresh re-encode: the writer
//! must stay byte-stable for a fixed input, because corpora are content-addressed by
//! their bytes in CI artifacts and benchmarks. To regenerate after an *intentional*
//! format change, run:
//!
//! ```text
//! ATRC_REGEN_FIXTURES=1 cargo test --test atrc_conformance
//! ```
//!
//! and update `docs/atrc-format.md` in the same commit.

use std::path::PathBuf;

use adapt_llc::sim::trace::{MemAccess, TraceSink, TraceSource};
use adapt_llc::traces::format::{
    encode_block_payload, fnv1a32, put_u16, put_u32, put_u64, BLOCK_COMPRESSED_BIT, FLAG_CHECKSUMS,
    FLAG_CHUNKED, FLAG_COMPRESSED,
};
use adapt_llc::traces::{
    compression_stats, decode_all, read_header, TraceCaptureOptions, TraceReader, TraceWriter,
};

const SPEC: &str = "docs/atrc-format.md";

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn fixture_path(name: &str) -> PathBuf {
    data_dir().join(name)
}

/// Assert `bytes[offset..]` starts with `expected`, citing the spec section on failure.
#[track_caller]
fn expect_bytes(bytes: &[u8], offset: usize, expected: &[u8], field: &str, section: &str) {
    let got = bytes
        .get(offset..offset + expected.len())
        .unwrap_or_else(|| panic!("{SPEC} {section}: file too short for {field} at {offset}"));
    assert_eq!(
        got, expected,
        "{SPEC} {section}: {field} at offset {offset} must be {expected:02x?}, got {got:02x?}"
    );
}

fn le16(v: u16) -> [u8; 2] {
    v.to_le_bytes()
}

fn le32(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}

// ---- fixture content (deterministic, no RNG) -------------------------------------

/// Strided, highly compressible stream (the common trace shape).
fn strided_records(n: u64) -> Vec<MemAccess> {
    (0..n)
        .map(|i| MemAccess {
            addr: 0x4000_0000 + i * 64,
            pc: 0x40_0000 + (i % 4) * 4,
            is_write: i % 4 == 0,
            non_mem_instrs: (i % 3) as u32,
        })
        .collect()
}

/// SplitMix64-derived stream: effectively random addresses, incompressible, so v3
/// stores its blocks raw (covers the per-block fallback path in the fixture).
fn noise_records(n: u64) -> Vec<MemAccess> {
    let mut state = 0x5eed_0f7e_bee5_ca11u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let a = next();
            let b = next();
            MemAccess {
                addr: a & 0x0000_ffff_ffff_ffc0,
                pc: 0x40_0000 + (b & 0xfffc),
                is_write: b & 0x10000 != 0,
                non_mem_instrs: ((b >> 17) & 0xff) as u32,
            }
        })
        .collect()
}

// ---- fixture construction ---------------------------------------------------------

/// Hand-assemble the v1 fixture from the spec (the current writer cannot emit v1, so
/// the legacy layout is built from its normative description).
fn build_v1_fixture() -> Vec<u8> {
    let records = strided_records(24);
    let label = "v1-fixture";
    let core_label = "legacy";
    let mut streams = Vec::new();
    let mut stream_bytes = 0u64;
    for block in records.chunks(16) {
        let mut payload = Vec::new();
        encode_block_payload(block, &mut payload);
        put_u32(&mut streams, payload.len() as u32);
        put_u32(&mut streams, block.len() as u32);
        put_u32(&mut streams, fnv1a32(&payload));
        streams.extend_from_slice(&payload);
        stream_bytes += 12 + payload.len() as u64;
    }
    let header_len = (4 + 2 + 2 + 4 + 4) + (2 + label.len()) + (2 + core_label.len()) + 32;
    let mut out = Vec::new();
    out.extend_from_slice(b"ATRC");
    put_u16(&mut out, 1);
    put_u16(&mut out, FLAG_CHECKSUMS);
    put_u32(&mut out, 1);
    put_u32(&mut out, 64);
    put_u16(&mut out, label.len() as u16);
    out.extend_from_slice(label.as_bytes());
    put_u16(&mut out, core_label.len() as u16);
    out.extend_from_slice(core_label.as_bytes());
    put_u64(&mut out, header_len as u64);
    put_u64(&mut out, stream_bytes);
    put_u64(&mut out, records.len() as u64);
    put_u64(
        &mut out,
        records.iter().map(|r| r.instructions()).sum::<u64>(),
    );
    assert_eq!(out.len(), header_len);
    out.extend_from_slice(&streams);
    out
}

/// Write a two-core capture through the current writer and return the file's bytes.
fn build_chunked_fixture(label: &str, compress: bool) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("atrc_conformance_build_{label}.atrc"));
    let opts = TraceCaptureOptions {
        records_per_block: 16,
        checksums: true,
        llc_sets: 64,
        compress,
    };
    let mut w = TraceWriter::with_options(&path, 2, label, opts).unwrap();
    w.begin_core(0, "gcc").unwrap();
    w.begin_core(1, "lbm").unwrap();
    for r in strided_records(40) {
        w.push(0, r).unwrap();
    }
    for r in noise_records(40) {
        w.push(1, r).unwrap();
    }
    w.finish().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(path).ok();
    bytes
}

fn fixture_specs() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("v1-legacy.atrc", build_v1_fixture()),
        (
            "v2-chunked.atrc",
            build_chunked_fixture("v2-fixture", false),
        ),
        (
            "v3-compressed.atrc",
            build_chunked_fixture("v3-fixture", true),
        ),
    ]
}

/// With `ATRC_REGEN_FIXTURES=1`, (re)write the golden files; otherwise assert they
/// exist and match what the current code produces for the same fixed input — the
/// writer byte-stability lock.
#[test]
fn fixtures_match_current_writer_byte_for_byte() {
    let regen = std::env::var("ATRC_REGEN_FIXTURES").is_ok();
    for (name, bytes) in fixture_specs() {
        let path = fixture_path(name);
        if regen {
            std::fs::create_dir_all(data_dir()).unwrap();
            std::fs::write(&path, &bytes).unwrap();
            continue;
        }
        let on_disk = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{name} missing ({e}); run with ATRC_REGEN_FIXTURES=1"));
        assert_eq!(
            on_disk, bytes,
            "{name}: the checked-in fixture no longer matches what the code produces \
             for the same records — either the writer drifted (a format regression; fix \
             the code) or the format intentionally changed (regenerate the fixture AND \
             update {SPEC} in the same commit)"
        );
    }
}

#[test]
fn v1_fixture_layout_matches_the_spec() {
    let bytes = std::fs::read(fixture_path("v1-legacy.atrc")).unwrap();
    let s = "§Version 1 (legacy, read-only)";
    expect_bytes(&bytes, 0, b"ATRC", "magic", s);
    expect_bytes(&bytes, 4, &le16(1), "version", s);
    expect_bytes(
        &bytes,
        6,
        &le16(FLAG_CHECKSUMS),
        "flags (checksums only; chunked/compressed bits MUST be clear in v1)",
        s,
    );
    expect_bytes(&bytes, 8, &le32(1), "core_count", s);
    expect_bytes(&bytes, 12, &le32(64), "llc_sets", s);
    expect_bytes(&bytes, 16, &le16(10), "file label length", s);
    expect_bytes(&bytes, 18, b"v1-fixture", "file label bytes", s);
    expect_bytes(&bytes, 28, &le16(6), "core label length", s);
    expect_bytes(&bytes, 30, b"legacy", "core label bytes", s);
    // Directory: stream_offset must equal the header length (36 + 32 = 68).
    let header_len = 68u64;
    expect_bytes(&bytes, 36, &header_len.to_le_bytes(), "stream_offset", s);
    expect_bytes(&bytes, 52, &24u64.to_le_bytes(), "record_count", s);
    // v1 block frame: payload_len, record_count, checksum — no core_id field.
    let payload_len = u32::from_le_bytes(bytes[68..72].try_into().unwrap()) as usize;
    expect_bytes(&bytes, 72, &le32(16), "first block record_count", s);
    let payload = &bytes[80..80 + payload_len];
    expect_bytes(
        &bytes,
        76,
        &le32(fnv1a32(payload)),
        "first block FNV-1a checksum",
        s,
    );

    let header = read_header(fixture_path("v1-legacy.atrc")).unwrap();
    assert_eq!(header.version, 1);
    assert!(!header.chunked && !header.compressed);
    assert_eq!(
        decode_all(fixture_path("v1-legacy.atrc")).unwrap(),
        vec![strided_records(24)],
        "{SPEC} §Versioning and compatibility policy: v1 fixtures must decode \
         identically forever"
    );
}

#[test]
fn v2_fixture_layout_matches_the_spec() {
    let bytes = std::fs::read(fixture_path("v2-chunked.atrc")).unwrap();
    let s = "§Version 2 (default): chunked layout";
    expect_bytes(&bytes, 0, b"ATRC", "magic", s);
    expect_bytes(&bytes, 4, &le16(2), "version", s);
    expect_bytes(
        &bytes,
        6,
        &le16(FLAG_CHECKSUMS | FLAG_CHUNKED),
        "flags (chunked MUST be set in v2; compressed MUST NOT)",
        s,
    );
    expect_bytes(&bytes, 8, &le32(2), "core_count", s);
    expect_bytes(&bytes, 12, &le32(64), "llc_sets", s);
    expect_bytes(&bytes, 16, &le16(10), "file label length", s);
    expect_bytes(&bytes, 18, b"v2-fixture", "file label bytes", s);
    // First chunk frame right after the 28-byte preamble: core_id 0, then lengths.
    let preamble = 28usize;
    expect_bytes(&bytes, preamble, &le32(0), "first chunk core_id", s);
    let payload_len =
        u32::from_le_bytes(bytes[preamble + 4..preamble + 8].try_into().unwrap()) as usize;
    expect_bytes(
        &bytes,
        preamble + 8,
        &le32(16),
        "first chunk record_count",
        s,
    );
    let payload = &bytes[preamble + 16..preamble + 16 + payload_len];
    expect_bytes(
        &bytes,
        preamble + 12,
        &le32(fnv1a32(payload)),
        "first chunk FNV-1a checksum",
        s,
    );
    // The last 8 bytes point at the footer magic.
    let footer_offset = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()) as usize;
    expect_bytes(
        &bytes,
        footer_offset,
        b"ATRF",
        "footer magic at footer_offset (trailing 8 bytes)",
        s,
    );
    expect_bytes(
        &bytes,
        footer_offset + 4,
        &le16(3),
        "first core label length in footer",
        s,
    );
    expect_bytes(&bytes, footer_offset + 6, b"gcc", "first core label", s);

    let header = read_header(fixture_path("v2-chunked.atrc")).unwrap();
    assert_eq!(header.version, 2);
    assert!(header.chunked && !header.compressed);
    assert_eq!(header.data_end as usize, footer_offset);
    let expected = vec![strided_records(40), noise_records(40)];
    assert_eq!(
        decode_all(fixture_path("v2-chunked.atrc")).unwrap(),
        expected,
        "{SPEC} §Versioning and compatibility policy: v2 fixtures must decode \
         identically forever"
    );
}

#[test]
fn v3_fixture_layout_matches_the_spec() {
    let bytes = std::fs::read(fixture_path("v3-compressed.atrc")).unwrap();
    let s = "§Version 3 (current, opt-in): compressed blocks";
    expect_bytes(&bytes, 0, b"ATRC", "magic", s);
    expect_bytes(&bytes, 4, &le16(3), "version", s);
    expect_bytes(
        &bytes,
        6,
        &le16(FLAG_CHECKSUMS | FLAG_CHUNKED | FLAG_COMPRESSED),
        "flags (chunked AND compressed MUST be set in v3)",
        s,
    );
    expect_bytes(&bytes, 8, &le32(2), "core_count", s);
    expect_bytes(&bytes, 16, &le16(10), "file label length", s);
    expect_bytes(&bytes, 18, b"v3-fixture", "file label bytes", s);

    // First chunk: core 0's strided records compress, so the record-count field must
    // carry BLOCK_COMPRESSED_BIT and the payload must start with the raw length.
    let preamble = 28usize;
    expect_bytes(&bytes, preamble, &le32(0), "first chunk core_id", s);
    let payload_len =
        u32::from_le_bytes(bytes[preamble + 4..preamble + 8].try_into().unwrap()) as usize;
    expect_bytes(
        &bytes,
        preamble + 8,
        &le32(16 | BLOCK_COMPRESSED_BIT),
        "first chunk record_count with bit 31 (payload compressed)",
        s,
    );
    let payload = &bytes[preamble + 16..preamble + 16 + payload_len];
    expect_bytes(
        &bytes,
        preamble + 12,
        &le32(fnv1a32(payload)),
        "chunk checksum covers the STORED (compressed) payload bytes",
        s,
    );
    // raw_len prefix: 16 strided records delta-encode to some raw size; re-derive it.
    let mut raw = Vec::new();
    encode_block_payload(&strided_records(40)[..16], &mut raw);
    expect_bytes(
        &bytes,
        preamble + 16,
        &le32(raw.len() as u32),
        "compressed payload raw_len prefix",
        s,
    );
    assert!(
        payload_len < 4 + raw.len(),
        "{SPEC} {s}: a block is stored compressed only when strictly smaller \
         ({payload_len} vs {} raw)",
        4 + raw.len()
    );

    // Core 1's noise blocks must be stored raw: same framing as v2, bit 31 clear.
    let info = compression_stats(fixture_path("v3-compressed.atrc")).unwrap();
    assert!(
        info.compressed_blocks > 0 && info.compressed_blocks < info.blocks,
        "{SPEC} {s}: fixture must exercise both block forms, got {}/{} compressed",
        info.compressed_blocks,
        info.blocks
    );
    assert!(info.ratio() > 1.0, "compressed fixture must be smaller");

    let header = read_header(fixture_path("v3-compressed.atrc")).unwrap();
    assert_eq!(header.version, 3);
    assert!(header.chunked && header.compressed);
    let expected = vec![strided_records(40), noise_records(40)];
    assert_eq!(
        decode_all(fixture_path("v3-compressed.atrc")).unwrap(),
        expected,
        "{SPEC} {s}: v3 fixture must decode to the same records as its v2 twin"
    );
}

#[test]
fn v2_and_v3_fixtures_hold_identical_records() {
    // The compression bump changes bytes, never meaning: both chunked fixtures carry
    // the same streams, and replay through TraceReader agrees record-for-record.
    let v2 = decode_all(fixture_path("v2-chunked.atrc")).unwrap();
    let v3 = decode_all(fixture_path("v3-compressed.atrc")).unwrap();
    assert_eq!(v2, v3);
    for core in 0..2 {
        let mut a = TraceReader::open(fixture_path("v2-chunked.atrc"), core).unwrap();
        let mut b = TraceReader::open(fixture_path("v3-compressed.atrc"), core).unwrap();
        for _ in 0..100 {
            // across wraps
            assert_eq!(a.next_access(), b.next_access());
        }
    }
    let v2_len = std::fs::metadata(fixture_path("v2-chunked.atrc"))
        .unwrap()
        .len();
    let v3_len = std::fs::metadata(fixture_path("v3-compressed.atrc"))
        .unwrap()
        .len();
    assert!(
        v3_len < v2_len,
        "v3 fixture must be measurably smaller ({v3_len} vs {v2_len} bytes)"
    );
}

#[test]
fn shipped_import_sample_transcodes_into_a_sweepable_corpus() {
    // The checked-in CSV sample is what CI imports into its artifact corpus; lock its
    // parseability and corpus-joinability here so a format or roster change cannot
    // break the CI step silently.
    use adapt_llc::traces::import::{import_into_corpus, ImportFormat, ImportOptions};
    let dir = std::env::temp_dir().join("atrc_conformance_sample_import");
    std::fs::remove_dir_all(&dir).ok();
    let opts = ImportOptions {
        capture: Some(TraceCaptureOptions {
            llc_sets: 64,
            compress: true,
            ..Default::default()
        }),
        core_labels: ["gcc", "lbm", "mcf", "calc"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ..Default::default()
    };
    let outcome = import_into_corpus(
        &dir,
        0,
        &[fixture_path("import-sample.csv")],
        ImportFormat::Csv,
        &opts,
        1,
    )
    .unwrap();
    assert_eq!(outcome.stats.records(), 32);
    assert_eq!(outcome.stats.per_core.len(), 4);
    let corpus = adapt_llc::traces::Corpus::load(&dir).unwrap();
    assert_eq!(
        corpus.entries()[0].benchmarks,
        ["gcc", "lbm", "mcf", "calc"]
    );
    assert!(corpus.validate_geometry(64).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixtures_verify_clean() {
    for name in ["v1-legacy.atrc", "v2-chunked.atrc", "v3-compressed.atrc"] {
        let header = read_header(fixture_path(name)).unwrap();
        for core in 0..header.cores.len() {
            let mut r = TraceReader::open(fixture_path(name), core).unwrap();
            assert_eq!(
                r.verify().unwrap(),
                header.cores[core].records,
                "{name} core {core}"
            );
        }
    }
}
