//! Replay-equivalence tests for external trace import, plus the compressed-corpus
//! acceptance sweep.
//!
//! The import pipeline is only trustworthy if a stream that takes the long way around —
//! generated in-process → exported to a foreign layout → transcoded back through
//! `trace_io::import` into `.atrc` v3 → swept — produces *bit-identical* per-core
//! IPC/MPKI to evaluating the generators directly. Same bar as the capture↔replay
//! equivalence the native path is held to.

use std::path::PathBuf;

use adapt_llc::sim::trace::MemAccess;
use experiments::runner::{
    evaluate_mix, evaluate_mix_source, evaluate_policies_serial, sweep_policies_on_corpus,
    MixSource,
};
use experiments::{ExperimentScale, PolicyKind};
use trace_io::import::{export_champsim, import_to_file, ImportFormat, ImportOptions};
use trace_io::{Corpus, TraceCaptureOptions};
use workloads::{generate_mixes, StudyKind, WorkloadMix};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 1;

fn policies() -> [PolicyKind; 2] {
    [PolicyKind::TaDrrip, PolicyKind::AdaptBp32]
}

/// A [`TraceSource`] wrapper that counts how many records the simulation pulls.
struct CountingSource {
    inner: Box<dyn adapt_llc::sim::trace::TraceSource>,
    pulled: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl adapt_llc::sim::trace::TraceSource for CountingSource {
    fn next_access(&mut self) -> MemAccess {
        self.pulled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.next_access()
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

/// Per-core record counts an `INSTRUCTIONS`-long run of `mix` actually consumes, maxed
/// over `policies`. Re-execution makes this exceed the per-core instruction target —
/// a core that finishes early keeps pulling accesses until the slowest core is done —
/// so the exact count is measured rather than estimated: the captured prefix must cover
/// the whole run or the replay would wrap and diverge from the live generators.
fn consumption(
    cfg: &adapt_llc::sim::config::SystemConfig,
    mix: &WorkloadMix,
    policies: &[PolicyKind],
    llc_sets: usize,
    seed: u64,
) -> Vec<u64> {
    let mut max_pulled = vec![0u64; mix.benchmarks.len()];
    for &policy in policies {
        let counters: Vec<std::sync::Arc<std::sync::atomic::AtomicU64>> = (0..mix.benchmarks.len())
            .map(|_| std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)))
            .collect();
        let sources: Vec<Box<dyn adapt_llc::sim::trace::TraceSource>> = mix
            .trace_sources(llc_sets, seed)
            .into_iter()
            .zip(&counters)
            .map(|(inner, pulled)| {
                Box::new(CountingSource {
                    inner,
                    pulled: pulled.clone(),
                }) as Box<dyn adapt_llc::sim::trace::TraceSource>
            })
            .collect();
        let built = policy.build_dispatch(cfg, &mix.thrashing_slots());
        let mut system = adapt_llc::sim::system::MultiCoreSystem::new(cfg.clone(), sources, built);
        system.run(INSTRUCTIONS);
        for (m, c) in max_pulled.iter_mut().zip(&counters) {
            *m = (*m).max(c.load(std::sync::atomic::Ordering::Relaxed));
        }
    }
    max_pulled
}

/// Capture exactly the prefix of one core's generator stream that the measured run
/// consumes (plus a small safety margin).
fn capture_stream(
    mix: &WorkloadMix,
    core: usize,
    records: u64,
    llc_sets: usize,
    seed: u64,
) -> Vec<MemAccess> {
    let mut sources = mix.trace_sources(llc_sets, seed);
    let source = &mut sources[core];
    source.reset();
    (0..records + 16).map(|_| source.next_access()).collect()
}

fn import_options(mix: &WorkloadMix, llc_sets: usize) -> ImportOptions {
    ImportOptions {
        capture: Some(TraceCaptureOptions {
            llc_sets: llc_sets as u32,
            compress: true,
            ..Default::default()
        }),
        core_labels: mix.benchmarks.clone(),
        ..Default::default()
    }
}

#[track_caller]
fn assert_bit_identical(
    label: &str,
    direct: &experiments::runner::MixEvaluation,
    imported: &experiments::runner::MixEvaluation,
) {
    assert_eq!(direct.policy, imported.policy);
    assert_eq!(
        direct.weighted_speedup(),
        imported.weighted_speedup(),
        "{label}: weighted speedup diverged"
    );
    assert_eq!(direct.final_cycle, imported.final_cycle, "{label}");
    for (a, b) in direct.per_app.iter().zip(&imported.per_app) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.ipc, b.ipc, "{label}: {} IPC diverged", a.name);
        assert_eq!(a.llc_mpki, b.llc_mpki, "{label}: {} MPKI diverged", a.name);
    }
}

#[test]
fn champsim_import_sweeps_bit_identical_to_the_direct_path() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mix = generate_mixes(StudyKind::Cores4, 1, scale.seed()).remove(0);

    let dir = std::env::temp_dir().join("import_equiv_champsim");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Generated stream → ChampSim-style binary files (one per core), sized to the
    // measured per-core consumption so the replay never wraps.
    let needed = consumption(&cfg, &mix, &policies(), llc_sets, SEED);
    let streams: Vec<Vec<MemAccess>> = needed
        .iter()
        .enumerate()
        .map(|(core, &records)| capture_stream(&mix, core, records, llc_sets, SEED))
        .collect();
    let inputs: Vec<PathBuf> = streams
        .iter()
        .enumerate()
        .map(|(core, records)| {
            let p = dir.join(format!("core{core}.champsim"));
            std::fs::write(&p, export_champsim(records).unwrap()).unwrap();
            p
        })
        .collect();

    // ChampSim → .atrc v3. The transcode must be lossless before any sweep claims.
    let out = dir.join("imported.atrc");
    let opts = import_options(&mix, llc_sets);
    let stats = import_to_file(&inputs, ImportFormat::ChampSim, &out, &opts).unwrap();
    assert_eq!(trace_io::read_header(&out).unwrap().version, 3);
    assert_eq!(trace_io::decode_all(&out).unwrap(), streams);
    assert_eq!(
        stats.instructions(),
        streams
            .iter()
            .flatten()
            .map(|r| r.instructions())
            .sum::<u64>()
    );

    // Sweep: per-core IPC/MPKI bit-identical to evaluating the live generators.
    let source = MixSource::replayed_with_id(&out, mix.id).unwrap();
    for policy in policies() {
        let direct = evaluate_mix(&cfg, &mix, policy, INSTRUCTIONS, SEED);
        let imported = evaluate_mix_source(&cfg, &source, policy, INSTRUCTIONS, SEED).unwrap();
        assert_bit_identical("champsim", &direct, &imported);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_import_sweeps_bit_identical_to_the_direct_path() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mix = generate_mixes(StudyKind::Cores4, 2, scale.seed()).remove(1);

    let dir = std::env::temp_dir().join("import_equiv_csv");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Generated stream → the documented CSV text format, cores interleaved.
    let needed = consumption(&cfg, &mix, &policies(), llc_sets, SEED);
    let streams: Vec<Vec<MemAccess>> = needed
        .iter()
        .enumerate()
        .map(|(core, &records)| capture_stream(&mix, core, records, llc_sets, SEED))
        .collect();
    let mut csv = String::from("core,addr,pc,rw,non_mem\n");
    let longest = streams.iter().map(Vec::len).max().unwrap();
    for i in 0..longest {
        for (core, records) in streams.iter().enumerate() {
            if let Some(r) = records.get(i) {
                csv.push_str(&format!(
                    "{core},0x{:x},0x{:x},{},{}\n",
                    r.addr,
                    r.pc,
                    if r.is_write { 'W' } else { 'R' },
                    r.non_mem_instrs
                ));
            }
        }
    }
    let input = dir.join("mix.csv");
    std::fs::write(&input, csv).unwrap();

    let out = dir.join("imported.atrc");
    let opts = import_options(&mix, llc_sets);
    import_to_file(&[input], ImportFormat::Csv, &out, &opts).unwrap();
    assert_eq!(trace_io::decode_all(&out).unwrap(), streams);

    let source = MixSource::replayed_with_id(&out, mix.id).unwrap();
    for policy in policies() {
        let direct = evaluate_mix(&cfg, &mix, policy, INSTRUCTIONS, SEED);
        let imported = evaluate_mix_source(&cfg, &source, policy, INSTRUCTIONS, SEED).unwrap();
        assert_bit_identical("csv", &direct, &imported);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance sweep for the compression bump: a v3 compressed corpus must sweep
/// bit-identically to its uncompressed v2 twin — and both to the serial synthetic
/// reference — while being measurably smaller on disk.
#[test]
fn compressed_corpus_sweeps_bit_identical_to_uncompressed_twin_serial_and_parallel() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
    let policies = policies();
    let budget = experiments::runner::synthetic_capture_budget(INSTRUCTIONS);

    let base = std::env::temp_dir().join("import_equiv_corpus_twin");
    std::fs::remove_dir_all(&base).ok();
    let plain =
        Corpus::materialize(base.join("v2"), "twin", &mixes, llc_sets, SEED, budget).unwrap();
    let packed =
        Corpus::materialize_compressed(base.join("v3"), "twin", &mixes, llc_sets, SEED, budget)
            .unwrap();

    let dir_size = |c: &Corpus| -> u64 {
        c.entries()
            .iter()
            .map(|e| std::fs::metadata(c.path_for(e)).unwrap().len())
            .sum()
    };
    let (plain_bytes, packed_bytes) = (dir_size(&plain), dir_size(&packed));
    assert!(
        packed_bytes < plain_bytes,
        "compressed corpus must be measurably smaller ({packed_bytes} vs {plain_bytes})"
    );

    // Serial reference (regenerates every mix per policy) vs both corpora through the
    // parallel grid engine.
    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let from_plain = sweep_policies_on_corpus(&cfg, &plain, &policies, INSTRUCTIONS).unwrap();
    let from_packed = sweep_policies_on_corpus(&cfg, &packed, &policies, INSTRUCTIONS).unwrap();
    assert_eq!(
        from_plain.total_replay_wraps(),
        0,
        "budget must cover the run"
    );
    assert_eq!(from_packed.total_replay_wraps(), 0);
    assert_eq!(serial.len(), from_plain.evaluations.len());
    assert_eq!(serial.len(), from_packed.evaluations.len());
    for ((s, a), b) in serial
        .iter()
        .zip(&from_plain.evaluations)
        .zip(&from_packed.evaluations)
    {
        assert_eq!(s.mix_id, a.mix_id);
        assert_eq!(s.mix_id, b.mix_id);
        assert_bit_identical("v2 corpus vs serial", s, a);
        assert_bit_identical("v3 corpus vs serial", s, b);
    }
    std::fs::remove_dir_all(&base).ok();
}
