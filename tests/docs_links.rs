//! Markdown link checker for `README.md` and `docs/`: every relative link must point
//! at an existing file, and every `#anchor` must match a heading in its target. Run by
//! the CI docs job so the documentation pass cannot rot silently.

use std::fs;
use std::path::{Path, PathBuf};

/// Files the checker covers: README.md plus every `docs/*.md`.
fn documentation_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let mut docs: Vec<PathBuf> = fs::read_dir(root.join("docs"))
        .expect("docs/ directory exists")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    docs.sort();
    assert!(!docs.is_empty(), "docs/ must contain markdown files");
    files.extend(docs);
    files
}

/// Extract inline markdown link targets (`[text](target)`), skipping fenced code
/// blocks so shell snippets cannot produce false positives.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    targets.push(line[i + 2..i + 2 + end].to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    targets
}

/// GitHub-style heading slug: lowercase, punctuation dropped (underscores kept, as
/// GitHub keeps them), spaces to hyphens.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            let c = c.to_ascii_lowercase();
            match c {
                'a'..='z' | '0'..='9' | '-' | '_' => Some(c),
                ' ' => Some('-'),
                _ => None,
            }
        })
        .collect()
}

/// Slugs of every heading in a markdown file (fenced code blocks excluded).
fn heading_slugs(markdown: &str) -> Vec<String> {
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            slugs.push(slugify(line.trim_start_matches('#')));
        }
    }
    slugs
}

#[test]
fn every_relative_link_in_readme_and_docs_resolves() {
    let mut broken = Vec::new();
    for file in documentation_files() {
        let content = fs::read_to_string(&file).unwrap();
        let base = file.parent().unwrap().to_path_buf();
        for target in link_targets(&content) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue; // external; checked by humans, not by CI
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone() // same-file anchor
            } else {
                base.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!("{}: missing target {target:?}", file.display()));
                continue;
            }
            if let Some(anchor) = anchor {
                let target_md = fs::read_to_string(&resolved).unwrap();
                if !heading_slugs(&target_md).contains(&anchor) {
                    broken.push(format!(
                        "{}: anchor {target:?} matches no heading in {}",
                        file.display(),
                        resolved.display()
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn documentation_set_contains_the_expected_guides() {
    let names: Vec<String> = documentation_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for required in [
        "README.md",
        "architecture.md",
        "atrc-format.md",
        "policies.md",
        "repro-guide.md",
        "robustness.md",
        "serving.md",
    ] {
        assert!(names.contains(&required.to_string()), "missing {required}");
    }
}

/// The memory-system documentation is load-bearing (the architecture anchor is linked
/// from the repro guide and vice versa, and CI's memsys step follows the recipes), so
/// its headings and recipes must not silently disappear in a docs rewrite.
#[test]
fn memory_system_docs_are_registered() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let architecture = fs::read_to_string(root.join("docs/architecture.md")).unwrap();
    assert!(
        heading_slugs(&architecture).contains(&"memory-system".to_string()),
        "architecture.md must document the memory system (FR-FCFS, NUCA, attribution)"
    );
    for term in ["FR-FCFS", "NUCA", "starvation_cap", "stall_imbalance"] {
        assert!(
            architecture.contains(term),
            "architecture.md memory-system section must mention {term}"
        );
    }
    let guide = fs::read_to_string(root.join("docs/repro-guide.md")).unwrap();
    assert!(
        heading_slugs(&guide).contains(&"memory-system-head-to-head".to_string()),
        "repro-guide.md must document the memory-system head-to-head"
    );
    for recipe in [
        "--cores 128,256",
        "--memsys",
        "--smoke --cores 128 --mixes 2",
    ] {
        assert!(
            guide.contains(recipe),
            "repro-guide.md must keep the {recipe} recipe"
        );
    }
}

#[test]
fn link_extraction_and_slugging_behave() {
    let md =
        "see [a](x.md) and [b](y.md#some-anchor)\n```sh\nnot [a](link.md)\n```\n## Some Anchor!\n";
    assert_eq!(link_targets(md), vec!["x.md", "y.md#some-anchor"]);
    assert_eq!(heading_slugs(md), vec!["some-anchor"]);
    assert_eq!(slugify("Bank contention"), "bank-contention");
    // GitHub keeps underscores in slugs (Rust identifiers in headings are common here).
    assert_eq!(slugify("The mix_wraps field"), "the-mix_wraps-field");
}
