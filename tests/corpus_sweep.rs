//! End-to-end tests of the corpus-backed sweep engine: materialize a corpus on disk,
//! sweep it, and hold the results against the serial synthetic reference path.

use experiments::runner::{
    evaluate_policies_on_corpus, evaluate_policies_on_mixes, evaluate_policies_serial,
    synthetic_capture_budget,
};
use experiments::{ExperimentScale, PolicyKind};
use trace_io::{Corpus, TraceError};
use workloads::{generate_mixes, StudyKind};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 1;

fn policies() -> [PolicyKind; 3] {
    [PolicyKind::TaDrrip, PolicyKind::AdaptBp32, PolicyKind::Eaf]
}

#[test]
fn corpus_sweep_reproduces_the_serial_synthetic_path_bit_for_bit() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 3, scale.seed());
    let policies = policies();

    let dir = std::env::temp_dir().join("e2e_corpus_sweep");
    std::fs::remove_dir_all(&dir).ok();
    let corpus = Corpus::materialize(
        &dir,
        "e2e",
        &mixes,
        cfg.llc.geometry.num_sets(),
        SEED,
        synthetic_capture_budget(INSTRUCTIONS),
    )
    .unwrap();

    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let from_disk = evaluate_policies_on_corpus(&cfg, &corpus, &policies, INSTRUCTIONS).unwrap();

    assert_eq!(serial.len(), mixes.len() * policies.len());
    assert_eq!(grid.len(), serial.len());
    assert_eq!(from_disk.len(), serial.len());
    for ((s, g), d) in serial.iter().zip(&grid).zip(&from_disk) {
        // Deterministic (mix, policy) ordering across all three engines.
        assert_eq!(s.mix_id, g.mix_id);
        assert_eq!(s.policy, g.policy);
        assert_eq!(s.mix_id, d.mix_id);
        assert_eq!(s.policy, d.policy);
        // Bit-identical metrics.
        assert_eq!(s.weighted_speedup(), g.weighted_speedup());
        assert_eq!(s.weighted_speedup(), d.weighted_speedup());
        for ((a, b), c) in s.per_app.iter().zip(&g.per_app).zip(&d.per_app) {
            assert_eq!(a.ipc, b.ipc, "{}: grid IPC differs", a.name);
            assert_eq!(a.ipc, c.ipc, "{}: corpus IPC differs", a.name);
            assert_eq!(a.llc_mpki, b.llc_mpki);
            assert_eq!(a.llc_mpki, c.llc_mpki);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_sweep_is_deterministic_across_runs() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
    let policies = policies();
    let a = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let b = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mix_id, y.mix_id);
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.weighted_speedup(), y.weighted_speedup());
    }
}

#[test]
fn corpus_sweep_rejects_wrong_geometry_and_tampered_manifests() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());

    let dir = std::env::temp_dir().join("e2e_corpus_geometry");
    std::fs::remove_dir_all(&dir).ok();
    let corpus = Corpus::materialize(&dir, "e2e", &mixes, llc_sets * 2, SEED, 500).unwrap();
    let err = evaluate_policies_on_corpus(&cfg, &corpus, &policies(), INSTRUCTIONS).unwrap_err();
    assert!(
        matches!(err, TraceError::Manifest(_)),
        "geometry mismatch must surface as a manifest error, got {err}"
    );

    // A manifest whose benchmarks disagree with the trace files is rejected at load.
    let manifest = dir.join(trace_io::corpus::MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("mix 0", "mix 7")).ok();
    // mix id change alone is fine (ids are free-form) — but swapping the benchmark list
    // must fail.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let tampered: String = text
        .lines()
        .map(|l| {
            if l.starts_with("mix ") {
                let mut parts: Vec<&str> = l.split_whitespace().collect();
                parts[3] = "gcc,gcc,gcc,gcc";
                parts.join(" ") + "\n"
            } else {
                l.to_string() + "\n"
            }
        })
        .collect();
    std::fs::write(&manifest, tampered).unwrap();
    assert!(matches!(Corpus::load(&dir), Err(TraceError::Manifest(_))));
    std::fs::remove_dir_all(&dir).ok();
}
