//! End-to-end tests of the corpus-backed sweep engine: materialize a corpus on disk,
//! sweep it, and hold the results against the serial synthetic reference path —
//! including the zero-copy streamed replay path (constant-memory arenas, double
//! buffering), which must be invisible in results and in the profiled logical story.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use cache_sim::trace::{arena_peak_bytes, reset_arena_peak};
use experiments::runner::{
    evaluate_policies_on_corpus, evaluate_policies_on_mixes, evaluate_policies_serial,
    sweep_policies_on_corpus_with, synthetic_capture_budget, MixEvaluation, ReplayConfig,
};
use experiments::{ExperimentScale, PolicyKind};
use sim_obs::{Drained, EventKind};
use trace_io::{Corpus, TraceError};
use workloads::{generate_mixes, StudyKind};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 1;

fn policies() -> [PolicyKind; 3] {
    [PolicyKind::TaDrrip, PolicyKind::AdaptBp32, PolicyKind::Eaf]
}

/// Arena accounting and the sim-obs recorder are process-global; the tests that touch
/// either serialize on this lock so concurrent test threads cannot pollute peaks or
/// profiles.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn assert_evaluations_identical(a: &[MixEvaluation], b: &[MixEvaluation]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.mix_id, y.mix_id);
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.weighted_speedup(), y.weighted_speedup());
        assert_eq!(x.final_cycle, y.final_cycle);
        for (p, q) in x.per_app.iter().zip(&y.per_app) {
            assert_eq!(p.ipc, q.ipc, "{}: IPC differs", p.name);
            assert_eq!(p.llc_mpki, q.llc_mpki, "{}: LLC MPKI differs", p.name);
            assert_eq!(p.l2_mpki, q.l2_mpki, "{}: L2 MPKI differs", p.name);
        }
    }
}

#[test]
fn corpus_sweep_reproduces_the_serial_synthetic_path_bit_for_bit() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 3, scale.seed());
    let policies = policies();

    let dir = std::env::temp_dir().join("e2e_corpus_sweep");
    std::fs::remove_dir_all(&dir).ok();
    let corpus = Corpus::materialize(
        &dir,
        "e2e",
        &mixes,
        cfg.llc.geometry.num_sets(),
        SEED,
        synthetic_capture_budget(INSTRUCTIONS),
    )
    .unwrap();

    let serial = evaluate_policies_serial(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let from_disk = evaluate_policies_on_corpus(&cfg, &corpus, &policies, INSTRUCTIONS).unwrap();

    assert_eq!(serial.len(), mixes.len() * policies.len());
    assert_eq!(grid.len(), serial.len());
    assert_eq!(from_disk.len(), serial.len());
    for ((s, g), d) in serial.iter().zip(&grid).zip(&from_disk) {
        // Deterministic (mix, policy) ordering across all three engines.
        assert_eq!(s.mix_id, g.mix_id);
        assert_eq!(s.policy, g.policy);
        assert_eq!(s.mix_id, d.mix_id);
        assert_eq!(s.policy, d.policy);
        // Bit-identical metrics.
        assert_eq!(s.weighted_speedup(), g.weighted_speedup());
        assert_eq!(s.weighted_speedup(), d.weighted_speedup());
        for ((a, b), c) in s.per_app.iter().zip(&g.per_app).zip(&d.per_app) {
            assert_eq!(a.ipc, b.ipc, "{}: grid IPC differs", a.name);
            assert_eq!(a.ipc, c.ipc, "{}: corpus IPC differs", a.name);
            assert_eq!(a.llc_mpki, b.llc_mpki);
            assert_eq!(a.llc_mpki, c.llc_mpki);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn constant_memory_sweep_stays_under_the_arena_cap_and_matches_the_buffered_path() {
    // The zero-copy acceptance bar: a corpus 10x larger than the arena budget must
    // sweep with peak replay-arena bytes under the cap, while producing results
    // bit-identical to the fully-buffered (decode-everything-up-front) path.
    let _guard = global_state_lock();
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
    let budget: u64 = 2 << 20;
    // 4 cores x 16-byte records: ~20 MiB decoded, 10x the 2 MiB budget.
    let accesses_per_core = 10 * budget / (4 * 16);

    let dir = std::env::temp_dir().join("e2e_constant_memory_sweep");
    std::fs::remove_dir_all(&dir).ok();
    let corpus =
        Corpus::materialize(&dir, "cm", &mixes, llc_sets, SEED, accesses_per_core).unwrap();
    let entry_path = corpus.path_for(&corpus.entries()[0]);
    let decoded_bytes = trace_io::read_header(&entry_path).unwrap().total_records()
        * std::mem::size_of::<cache_sim::trace::MemAccess>() as u64;
    assert!(
        decoded_bytes >= 10 * budget,
        "corpus must be at least 10x the arena budget (got {decoded_bytes} vs {budget})"
    );

    let policies = [PolicyKind::TaDrrip];
    let buffered = ReplayConfig::default();
    assert!(
        buffered.arena_budget_bytes >= decoded_bytes,
        "baseline decodes up front"
    );
    let baseline =
        sweep_policies_on_corpus_with(&cfg, &corpus, &policies, INSTRUCTIONS, &buffered).unwrap();

    let constant_memory = ReplayConfig {
        arena_budget_bytes: budget,
        ..ReplayConfig::default()
    };
    reset_arena_peak();
    let streamed =
        sweep_policies_on_corpus_with(&cfg, &corpus, &policies, INSTRUCTIONS, &constant_memory)
            .unwrap();
    let peak = arena_peak_bytes();
    assert!(
        peak > 0,
        "the streamed sweep must actually have used replay arenas"
    );
    assert!(
        peak <= budget,
        "peak arena bytes {peak} exceeded the {budget}-byte budget"
    );
    assert_evaluations_identical(&baseline.evaluations, &streamed.evaluations);
    assert_eq!(baseline.mix_wraps, streamed.mix_wraps);
    std::fs::remove_dir_all(&dir).ok();
}

/// The logical event multiset of a profiled sweep: sweep spans, zero-copy batch spans
/// and simulator samples, keyed with context. Worker ids, timestamps and scheduling are
/// excluded — they legitimately differ across worker counts and prefetch modes.
fn logical_events(
    drained: &Drained,
) -> BTreeMap<(String, &'static str, &'static str, String), usize> {
    let mut set = BTreeMap::new();
    for thread in &drained.threads {
        for event in &thread.events {
            let keep = match event.kind {
                EventKind::Span => event.cat == "sweep" || event.name == "zero_copy_batch",
                EventKind::Sample => event.cat == "sim",
                _ => false,
            };
            if !keep {
                continue;
            }
            let kind = format!("{:?}", event.kind);
            let ctx = drained.context(event.ctx).to_string();
            *set.entry((kind, event.cat, event.name, ctx)).or_insert(0) += 1;
        }
    }
    set
}

#[test]
fn double_buffered_replay_is_deterministic_across_prefetch_and_worker_count() {
    // Prefetch on/off and serial/parallel workers are pure scheduling choices: every
    // combination must produce identical per-core IPC/MPKI and the identical logical
    // span multiset — the consumption-side `zero_copy_batch` spans included, which
    // pins down that batches are consumed in the same order and number everywhere.
    let _guard = global_state_lock();
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());

    let dir = std::env::temp_dir().join("e2e_double_buffer_determinism");
    std::fs::remove_dir_all(&dir).ok();
    let corpus = Corpus::materialize(
        &dir,
        "db",
        &mixes,
        llc_sets,
        SEED,
        synthetic_capture_budget(INSTRUCTIONS),
    )
    .unwrap();
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];

    let mut results = Vec::new();
    for prefetch in [true, false] {
        for workers in [1usize, 4] {
            let replay = ReplayConfig {
                arena_budget_bytes: 64 << 10, // force the streamed path
                prefetch,
                ..ReplayConfig::default()
            };
            sim_obs::reset();
            sim_obs::enable();
            let outcome = rayon::with_worker_limit(workers, || {
                sweep_policies_on_corpus_with(&cfg, &corpus, &policies, INSTRUCTIONS, &replay)
            })
            .unwrap();
            sim_obs::disable();
            let events = logical_events(&sim_obs::drain());
            results.push((prefetch, workers, outcome, events));
        }
    }

    let (_, _, reference, reference_events) = &results[0];
    assert!(
        reference_events
            .keys()
            .any(|(_, _, name, _)| *name == "zero_copy_batch"),
        "streamed replay must emit consumption-side batch spans"
    );
    for (prefetch, workers, outcome, events) in &results[1..] {
        assert_evaluations_identical(&reference.evaluations, &outcome.evaluations);
        assert_eq!(
            reference.mix_wraps, outcome.mix_wraps,
            "wrap accounting diverged (prefetch={prefetch}, workers={workers})"
        );
        assert_eq!(
            reference_events, events,
            "logical span multiset diverged (prefetch={prefetch}, workers={workers})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_sweep_is_deterministic_across_runs() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
    let policies = policies();
    let a = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    let b = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mix_id, y.mix_id);
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.weighted_speedup(), y.weighted_speedup());
    }
}

#[test]
fn corpus_sweep_rejects_wrong_geometry_and_tampered_manifests() {
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let llc_sets = cfg.llc.geometry.num_sets();
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());

    let dir = std::env::temp_dir().join("e2e_corpus_geometry");
    std::fs::remove_dir_all(&dir).ok();
    let corpus = Corpus::materialize(&dir, "e2e", &mixes, llc_sets * 2, SEED, 500).unwrap();
    let err = evaluate_policies_on_corpus(&cfg, &corpus, &policies(), INSTRUCTIONS).unwrap_err();
    assert!(
        matches!(err, TraceError::Manifest(_)),
        "geometry mismatch must surface as a manifest error, got {err}"
    );

    // A manifest whose benchmarks disagree with the trace files is rejected at load.
    let manifest = dir.join(trace_io::corpus::MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("mix 0", "mix 7")).ok();
    // mix id change alone is fine (ids are free-form) — but swapping the benchmark list
    // must fail.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let tampered: String = text
        .lines()
        .map(|l| {
            if l.starts_with("mix ") {
                let mut parts: Vec<&str> = l.split_whitespace().collect();
                parts[3] = "gcc,gcc,gcc,gcc";
                parts.join(" ") + "\n"
            } else {
                l.to_string() + "\n"
            }
        })
        .collect();
    std::fs::write(&manifest, tampered).unwrap();
    assert!(matches!(Corpus::load(&dir), Err(TraceError::Manifest(_))));
    std::fs::remove_dir_all(&dir).ok();
}
