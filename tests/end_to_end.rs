//! Cross-crate integration tests: workloads -> simulator -> policies -> metrics.
//!
//! These tests exercise the whole pipeline the way the experiment harness does, at smoke
//! scale, and check structural properties that must hold regardless of absolute numbers.

use adapt_llc::adapt::{AdaptConfig, AdaptPolicy, PriorityLevel};
use adapt_llc::experiments::{
    evaluate_mix, evaluate_policies_on_mixes, ExperimentScale, PolicyKind,
};
use adapt_llc::policies::{build_baseline, BaselineKind};
use adapt_llc::sim::config::SystemConfig;
use adapt_llc::sim::system::MultiCoreSystem;
use adapt_llc::workloads::{generate_mixes, StudyKind};

fn smoke_mix(study: StudyKind) -> (SystemConfig, adapt_llc::workloads::WorkloadMix) {
    let scale = ExperimentScale::Smoke;
    let config = scale.system_config(study);
    let mix = generate_mixes(study, 1, scale.seed()).remove(0);
    (config, mix)
}

#[test]
fn sixteen_core_mix_runs_under_every_policy() {
    let (config, mix) = smoke_mix(StudyKind::Cores16);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::TaDrrip,
        PolicyKind::Ship,
        PolicyKind::Eaf,
        PolicyKind::AdaptIns,
        PolicyKind::AdaptBp32,
    ];
    for kind in policies {
        let eval = evaluate_mix(&config, &mix, kind, 30_000, 3);
        assert_eq!(eval.per_app.len(), 16, "{:?}", kind);
        assert!(eval.weighted_speedup() > 0.0, "{:?}", kind);
        assert!(
            eval.weighted_speedup() <= 16.5,
            "{:?} exceeded core count",
            kind
        );
        for app in &eval.per_app {
            assert!(app.ipc.is_finite() && app.ipc > 0.0);
            assert!(app.llc_mpki >= 0.0);
        }
    }
}

#[test]
fn adapt_bypasses_thrashing_applications_but_not_friendly_ones() {
    // Single-application check of the end-to-end classification path: a streaming app must
    // end up Least priority with bypasses; a small-working-set app must not be bypassed.
    let config = SystemConfig::tiny(2);
    let llc_sets = config.llc.geometry.num_sets();
    let friendly = adapt_llc::workloads::benchmark_by_name("gcc").unwrap();
    let thrasher = adapt_llc::workloads::benchmark_by_name("lbm").unwrap();
    let traces: Vec<Box<dyn adapt_llc::sim::trace::TraceSource>> = vec![
        Box::new(friendly.trace(0, llc_sets, 1)),
        Box::new(thrasher.trace(1, llc_sets, 1)),
    ];
    let policy = AdaptPolicy::new(AdaptConfig::paper(), &config.llc, 2);
    let mut system = MultiCoreSystem::new(config, traces, Box::new(policy));
    let results = system.run(150_000);
    assert!(
        results.llc_global.intervals_completed > 0,
        "monitoring interval must complete"
    );
    let friendly_bypasses = results.per_core[0].llc.bypassed_fills;
    let thrasher_bypasses = results.per_core[1].llc.bypassed_fills;
    assert!(
        thrasher_bypasses > friendly_bypasses,
        "thrasher bypasses ({thrasher_bypasses}) must exceed friendly bypasses ({friendly_bypasses})"
    );
}

#[test]
fn adapt_policy_classifies_streaming_apps_as_least_priority_in_situ() {
    let mut config = SystemConfig::tiny(4);
    // Give each application enough accesses per monitored set within one interval for the
    // streaming cores to cross the Least-priority (>= associativity) threshold.
    config.interval_misses = 4096;
    let llc_sets = config.llc.geometry.num_sets();
    let names = ["gcc", "mesa", "lbm", "STRM"];
    let traces: Vec<Box<dyn adapt_llc::sim::trace::TraceSource>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Box::new(
                adapt_llc::workloads::benchmark_by_name(n)
                    .unwrap()
                    .trace(i, llc_sets, 2),
            ) as Box<dyn adapt_llc::sim::trace::TraceSource>
        })
        .collect();
    // Keep a probe configured identically to verify the classification logic produces the
    // same classes the policy would act on (the policy itself is consumed by the system).
    let policy = AdaptPolicy::new(AdaptConfig::paper(), &config.llc, 4);
    assert_eq!(
        policy.priority_of(0),
        PriorityLevel::Low,
        "pre-interval default is SRRIP-like"
    );
    let mut system = MultiCoreSystem::new(config, traces, Box::new(policy));
    let results = system.run(150_000);
    // The streaming apps (cores 2 and 3) must have been bypassed at least once.
    assert!(results.per_core[2].llc.bypassed_fills + results.per_core[3].llc.bypassed_fills > 0);
}

#[test]
fn baseline_factory_policies_run_in_the_full_system() {
    let (config, mix) = smoke_mix(StudyKind::Cores4);
    let llc_sets = config.llc.geometry.num_sets();
    for kind in [
        BaselineKind::Lru,
        BaselineKind::TaDrrip,
        BaselineKind::Ship,
        BaselineKind::Eaf,
    ] {
        let traces = mix.trace_sources(llc_sets, 9);
        let policy = build_baseline(kind, &config.llc, config.num_cores);
        let mut system = MultiCoreSystem::new(config.clone(), traces, policy);
        let results = system.run(20_000);
        assert_eq!(results.per_core.len(), 4);
        assert!(results.total_llc_demand_misses() > 0);
    }
}

#[test]
fn two_core_mix_replayed_from_a_trace_file_matches_the_live_run() {
    use adapt_llc::sim::trace::TraceSource;
    use adapt_llc::traces::{open_all, TraceWriter};

    let config = SystemConfig::tiny(2);
    let llc_sets = config.llc.geometry.num_sets();
    let instructions = 30_000u64;

    // Capture a 2-core gcc+lbm mix with ample slack over the instruction budget.
    let path = std::env::temp_dir().join("e2e_two_core_replay.atrc");
    adapt_llc::workloads::capture_benchmarks_to_file::<TraceWriter>(
        &path,
        &["gcc", "lbm"],
        llc_sets,
        4,
        2 * instructions,
    )
    .unwrap();

    let run = |traces: Vec<Box<dyn adapt_llc::sim::trace::TraceSource>>| {
        let policy = AdaptPolicy::new(AdaptConfig::paper(), &config.llc, 2);
        let mut system = MultiCoreSystem::new(config.clone(), traces, Box::new(policy));
        system.run(instructions)
    };

    let live = run(vec![
        Box::new(
            adapt_llc::workloads::benchmark_by_name("gcc")
                .unwrap()
                .trace(0, llc_sets, 4),
        ),
        Box::new(
            adapt_llc::workloads::benchmark_by_name("lbm")
                .unwrap()
                .trace(1, llc_sets, 4),
        ),
    ]);
    let readers = open_all(&path).unwrap();
    assert_eq!(
        readers.iter().map(|r| r.label()).collect::<Vec<_>>(),
        ["gcc", "lbm"]
    );
    let replayed = run(readers
        .into_iter()
        .map(|r| Box::new(r) as Box<dyn adapt_llc::sim::trace::TraceSource>)
        .collect());

    for (a, b) in live.per_core.iter().zip(&replayed.per_core) {
        assert_eq!(
            a.ipc(),
            b.ipc(),
            "core {} IPC differs under replay",
            a.core_id
        );
        assert_eq!(
            a.llc_mpki(),
            b.llc_mpki(),
            "core {} LLC MPKI differs under replay",
            a.core_id
        );
    }
    assert_eq!(
        live.total_llc_demand_misses(),
        replayed.total_llc_demand_misses(),
        "replay must reproduce the exact miss stream"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn parallel_sweep_is_deterministic_across_invocations() {
    let (config, _) = smoke_mix(StudyKind::Cores8);
    let mixes = generate_mixes(StudyKind::Cores8, 2, 5);
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
    let run = || {
        evaluate_policies_on_mixes(&config, &mixes, &policies, 25_000, 5)
            .iter()
            .map(|e| (e.mix_id, e.policy_label.clone(), e.weighted_speedup()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn weighted_speedup_never_exceeds_core_count_by_much() {
    for study in [StudyKind::Cores4, StudyKind::Cores8] {
        let (config, mix) = smoke_mix(study);
        let eval = evaluate_mix(&config, &mix, PolicyKind::TaDrrip, 25_000, 1);
        let n = study.num_cores() as f64;
        assert!(
            eval.weighted_speedup() <= n * 1.05,
            "{study:?}: {}",
            eval.weighted_speedup()
        );
        assert!(eval.metrics.harmonic_mean_normalized <= 1.05);
    }
}
