//! Property/fuzz pass for the `.atrc` codec and reader.
//!
//! Two families:
//!
//! * **Round-trip bit-identity** — random record streams × random block/chunk
//!   boundaries × compressed/uncompressed files must decode back to exactly the pushed
//!   records (and wrapped replay must repeat the identical stream). Runs under the
//!   default proptest case count, which CI bumps via `PROPTEST_CASES`.
//! * **Single-bit-flip corruption** — for small v2 and v3 files, every bit of every
//!   byte (preamble, chunk frames, payloads, footer directory, trailing offset) is
//!   flipped in turn; no flip may be silently absorbed. A flip must either be rejected
//!   (checksum/flag/framing error) or change the decoded interpretation — a flipped
//!   file that reads back bit-identically to the original would mean some byte region
//!   carries no meaning and no protection.
//!
//! Both families also lock the zero-copy mapped pipeline (`MappedTrace`,
//! `MappedStreamDecoder`) to the buffered reader: bit-identical on well-formed files
//! across random batch sizes, never more permissive on corrupt ones, and rejecting
//! corrupted compressed blocks on the stored-byte checksum *before* decompression.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use adapt_llc::sim::trace::{ArenaReplayTrace, MemAccess, TraceSource};
use adapt_llc::traces::{
    decode_all, decode_all_mapped, read_header, MappedStreamDecoder, MappedTrace,
    TraceCaptureOptions, TraceError, TraceHeader, TraceWriter,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adapt_atrc_fuzz_{name}.atrc"))
}

fn write_file(
    path: &PathBuf,
    streams: &[Vec<MemAccess>],
    records_per_block: usize,
    compress: bool,
    checksums: bool,
) {
    let opts = TraceCaptureOptions {
        records_per_block,
        checksums,
        llc_sets: 64,
        compress,
    };
    let mut w = TraceWriter::with_options(path, streams.len(), "fuzz", opts).unwrap();
    // Interleave pushes round-robin so chunk boundaries of different cores mix.
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (core, records) in streams.iter().enumerate() {
            if let Some(r) = records.get(i) {
                w.push(core, *r).unwrap();
            }
        }
    }
    w.finish().unwrap();
}

/// Full interpretation of a trace file: everything a consumer can observe.
fn interpret(path: &PathBuf) -> Result<(TraceHeader, Vec<Vec<MemAccess>>), String> {
    let header = read_header(path).map_err(|e| e.to_string())?;
    let streams = decode_all(path).map_err(|e| e.to_string())?;
    Ok((header, streams))
}

/// [`interpret`] through the zero-copy mapped pipeline. The identity contract: on
/// well-formed files this equals `interpret`; on corrupt files it may only be
/// *stricter* (the eager scan also cross-checks the directory record counts), never
/// accept something the buffered reader rejects, and never absorb a flip silently.
fn interpret_mapped(path: &PathBuf) -> Result<(TraceHeader, Vec<Vec<MemAccess>>), String> {
    let header = read_header(path).map_err(|e| e.to_string())?;
    let streams = decode_all_mapped(path).map_err(|e| e.to_string())?;
    Ok((header, streams))
}

proptest! {
    #[test]
    fn random_streams_roundtrip_bit_identically(
        raw in collection::vec(
            (1u64..1 << 48, 0u64..1 << 32, any::<bool>(), 0u32..2000),
            1..400,
        ),
        records_per_block in 1usize..64,
        split in 0usize..7,
        compress in any::<bool>(),
        checksums in any::<bool>(),
        batch_records in 1usize..96,
    ) {
        let records: Vec<MemAccess> = raw
            .iter()
            .map(|&(addr, pc, is_write, non_mem_instrs)| MemAccess {
                addr,
                pc,
                is_write,
                non_mem_instrs,
            })
            .collect();
        // Split the stream over 1-2 cores at a random point (both halves non-empty).
        let streams: Vec<Vec<MemAccess>> = if split == 0 || records.len() < 2 {
            vec![records.clone()]
        } else {
            let cut = 1 + (split - 1) * (records.len() - 1) / 6;
            vec![records[..cut].to_vec(), records[cut..].to_vec()]
        };
        let path = tmp("roundtrip");
        write_file(&path, &streams, records_per_block, compress, checksums);

        let (header, decoded) = interpret(&path).expect("well-formed file must decode");
        prop_assert_eq!(header.version, if compress { 3 } else { 2 });
        prop_assert_eq!(&decoded, &streams);

        // Wrapped replay repeats the identical stream.
        let mut reader = adapt_llc::traces::TraceReader::open(&path, 0).unwrap();
        let n = streams[0].len();
        let first: Vec<MemAccess> = (0..n).map(|_| reader.next_access()).collect();
        let second: Vec<MemAccess> = (0..n).map(|_| reader.next_access()).collect();
        prop_assert_eq!(&first, &streams[0]);
        prop_assert_eq!(first, second);

        // Zero-copy identity: the mapped full decode and a batch-streamed cursor over
        // the mapping (random batch size) must reproduce the buffered interpretation
        // bit for bit, wraps included.
        let (mapped_header, mapped) = interpret_mapped(&path)
            .expect("the mapped reader must accept what the buffered reader accepts");
        prop_assert_eq!(&mapped_header, &header);
        prop_assert_eq!(&mapped, &streams);
        let trace = Arc::new(MappedTrace::open(&path).unwrap());
        for (core, expected) in streams.iter().enumerate() {
            let decoder = MappedStreamDecoder::new(trace.clone(), core, batch_records).unwrap();
            let mut cursor = ArenaReplayTrace::new(Box::new(decoder));
            for pass in 0..2u64 {
                for (i, want) in expected.iter().enumerate() {
                    let got = cursor.next_access();
                    prop_assert_eq!(
                        got, *want,
                        "mapped cursor diverged: core {} pass {} record {}",
                        core, pass, i
                    );
                }
                prop_assert_eq!(cursor.wraps(), pass + 1);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn random_bit_flips_are_never_silently_absorbed(
        seed_records in collection::vec(
            (1u64..1 << 40, 0u64..1 << 20, any::<bool>(), 0u32..50),
            4..120,
        ),
        records_per_block in 1usize..32,
        compress in any::<bool>(),
        flip_position in 0usize..1 << 16,
        flip_bit in 0usize..8,
    ) {
        let records: Vec<MemAccess> = seed_records
            .iter()
            .map(|&(addr, pc, is_write, non_mem_instrs)| MemAccess {
                addr,
                pc,
                is_write,
                non_mem_instrs,
            })
            .collect();
        let path = tmp("randflip");
        write_file(&path, &[records], records_per_block, compress, true);
        let baseline = interpret(&path).expect("well-formed file must decode");
        let original = std::fs::read(&path).unwrap();
        let mut corrupted = original.clone();
        let target = flip_position % corrupted.len();
        corrupted[target] ^= 1 << flip_bit;
        std::fs::write(&path, &corrupted).unwrap();
        let buffered = interpret(&path);
        if let Ok(interpretation) = &buffered {
            prop_assert_ne!(
                interpretation,
                &baseline,
                "flipping bit {} of byte {} changed the file but not its decoded \
                 interpretation",
                flip_bit,
                target
            );
        }
        // The mapped path must hold the same line: never absorb the flip, and never
        // accept a file the buffered reader rejects.
        match interpret_mapped(&path) {
            Err(_) => {}
            Ok(interpretation) => {
                prop_assert_ne!(
                    &interpretation,
                    &baseline,
                    "mapped: flipping bit {} of byte {} was silently absorbed",
                    flip_bit,
                    target
                );
                prop_assert!(
                    buffered.is_ok(),
                    "mapped reader accepted a flip (byte {} bit {}) the buffered \
                     reader rejects",
                    target,
                    flip_bit
                );
            }
        }
        std::fs::remove_file(path).ok();
    }
}

/// Exhaustive single-bit-flip sweep over EVERY byte of a small v2 and v3 file: the
/// deterministic backbone behind the sampled proptest above. Covers each byte region —
/// preamble, chunk frames, (compressed) payloads, footer labels/directory, trailing
/// footer offset — asserting that corruption is either rejected outright or visibly
/// changes the decoded result. With checksums on, payload flips specifically must be
/// *rejected* (not merely decode differently).
#[test]
fn every_single_bit_flip_is_detected_or_changes_the_interpretation() {
    for compress in [false, true] {
        let records: Vec<MemAccess> = (0..48)
            .map(|i| MemAccess {
                addr: 0x1000 + i * 64,
                pc: 0x400 + (i % 3) * 4,
                is_write: i % 5 == 0,
                non_mem_instrs: (i % 4) as u32,
            })
            .collect();
        let path = tmp(if compress { "flip_v3" } else { "flip_v2" });
        write_file(&path, &[records], 16, compress, true);
        let baseline = interpret(&path).expect("well-formed file must decode");
        let original = std::fs::read(&path).unwrap();
        let header = read_header(&path).unwrap();
        let payload_region = header.preamble_len() as usize..header.data_end as usize;
        let mut checksum_rejections = 0u64;

        for byte in 0..original.len() {
            for bit in 0..8 {
                let mut corrupted = original.clone();
                corrupted[byte] ^= 1 << bit;
                std::fs::write(&path, &corrupted).unwrap();
                let buffered = interpret(&path);
                match &buffered {
                    Err(_) => {}
                    Ok(interpretation) => {
                        assert_ne!(
                            interpretation, &baseline,
                            "v{}: flipping bit {bit} of byte {byte} was silently \
                             absorbed",
                            header.version
                        );
                        // Inside the checksummed data region nothing may even decode
                        // differently: every chunk flip must fail validation. (The
                        // region includes frame fields; those fail structurally.)
                        assert!(
                            !payload_region.contains(&byte),
                            "v{}: flip at data-region byte {byte} bit {bit} decoded \
                             despite per-block checksums",
                            header.version
                        );
                    }
                }
                // The mapped pipeline under the same exhaustive sweep: reject or
                // visibly change, and never be more permissive than the buffered
                // reader.
                match interpret_mapped(&path) {
                    Err(_) => {}
                    Ok(interpretation) => {
                        assert_ne!(
                            interpretation, baseline,
                            "v{}: mapped reader silently absorbed bit {bit} of byte \
                             {byte}",
                            header.version
                        );
                        assert!(
                            buffered.is_ok() && !payload_region.contains(&byte),
                            "v{}: mapped reader accepted a data-region flip (byte \
                             {byte} bit {bit}) it must reject",
                            header.version
                        );
                    }
                }
                // Checksum-before-decompression on the mmap path: a data-region flip
                // either damages a frame (caught structurally, at open or decode) or a
                // payload (caught by the FNV over the *stored* bytes). Either way the
                // decompressor must never run on garbage, so no flip anywhere may
                // surface as a decompression error.
                if payload_region.contains(&byte) {
                    if let Ok(mapped) = MappedTrace::open(&path) {
                        let err = mapped.decode_core(0).expect_err("flip must not decode");
                        assert!(
                            !err.to_string().contains("decompression failed"),
                            "v{}: data-region flip at byte {byte} bit {bit} reached \
                             the decompressor instead of being rejected first: {err}",
                            header.version
                        );
                        if matches!(err, TraceError::ChecksumMismatch { .. }) {
                            checksum_rejections += 1;
                        }
                    }
                }
            }
        }
        // The FNV gate must actually have fired — most payload-byte flips leave the
        // framing intact and are only distinguishable by checksum.
        assert!(
            checksum_rejections > 0,
            "v{}: no flip was ever rejected by the mapped checksum gate",
            header.version
        );
        std::fs::remove_file(path).ok();
    }
}
