//! Property/fuzz pass for the `.atrc` codec and reader.
//!
//! Two families:
//!
//! * **Round-trip bit-identity** — random record streams × random block/chunk
//!   boundaries × compressed/uncompressed files must decode back to exactly the pushed
//!   records (and wrapped replay must repeat the identical stream). Runs under the
//!   default proptest case count, which CI bumps via `PROPTEST_CASES`.
//! * **Single-bit-flip corruption** — for small v2 and v3 files, every bit of every
//!   byte (preamble, chunk frames, payloads, footer directory, trailing offset) is
//!   flipped in turn; no flip may be silently absorbed. A flip must either be rejected
//!   (checksum/flag/framing error) or change the decoded interpretation — a flipped
//!   file that reads back bit-identically to the original would mean some byte region
//!   carries no meaning and no protection.

use std::path::PathBuf;

use proptest::prelude::*;

use adapt_llc::sim::trace::{MemAccess, TraceSource};
use adapt_llc::traces::{decode_all, read_header, TraceCaptureOptions, TraceHeader, TraceWriter};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adapt_atrc_fuzz_{name}.atrc"))
}

fn write_file(
    path: &PathBuf,
    streams: &[Vec<MemAccess>],
    records_per_block: usize,
    compress: bool,
    checksums: bool,
) {
    let opts = TraceCaptureOptions {
        records_per_block,
        checksums,
        llc_sets: 64,
        compress,
    };
    let mut w = TraceWriter::with_options(path, streams.len(), "fuzz", opts).unwrap();
    // Interleave pushes round-robin so chunk boundaries of different cores mix.
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (core, records) in streams.iter().enumerate() {
            if let Some(r) = records.get(i) {
                w.push(core, *r).unwrap();
            }
        }
    }
    w.finish().unwrap();
}

/// Full interpretation of a trace file: everything a consumer can observe.
fn interpret(path: &PathBuf) -> Result<(TraceHeader, Vec<Vec<MemAccess>>), String> {
    let header = read_header(path).map_err(|e| e.to_string())?;
    let streams = decode_all(path).map_err(|e| e.to_string())?;
    Ok((header, streams))
}

proptest! {
    #[test]
    fn random_streams_roundtrip_bit_identically(
        raw in collection::vec(
            (1u64..1 << 48, 0u64..1 << 32, any::<bool>(), 0u32..2000),
            1..400,
        ),
        records_per_block in 1usize..64,
        split in 0usize..7,
        compress in any::<bool>(),
        checksums in any::<bool>(),
    ) {
        let records: Vec<MemAccess> = raw
            .iter()
            .map(|&(addr, pc, is_write, non_mem_instrs)| MemAccess {
                addr,
                pc,
                is_write,
                non_mem_instrs,
            })
            .collect();
        // Split the stream over 1-2 cores at a random point (both halves non-empty).
        let streams: Vec<Vec<MemAccess>> = if split == 0 || records.len() < 2 {
            vec![records.clone()]
        } else {
            let cut = 1 + (split - 1) * (records.len() - 1) / 6;
            vec![records[..cut].to_vec(), records[cut..].to_vec()]
        };
        let path = tmp("roundtrip");
        write_file(&path, &streams, records_per_block, compress, checksums);

        let (header, decoded) = interpret(&path).expect("well-formed file must decode");
        prop_assert_eq!(header.version, if compress { 3 } else { 2 });
        prop_assert_eq!(&decoded, &streams);

        // Wrapped replay repeats the identical stream.
        let mut reader = adapt_llc::traces::TraceReader::open(&path, 0).unwrap();
        let n = streams[0].len();
        let first: Vec<MemAccess> = (0..n).map(|_| reader.next_access()).collect();
        let second: Vec<MemAccess> = (0..n).map(|_| reader.next_access()).collect();
        prop_assert_eq!(&first, &streams[0]);
        prop_assert_eq!(first, second);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn random_bit_flips_are_never_silently_absorbed(
        seed_records in collection::vec(
            (1u64..1 << 40, 0u64..1 << 20, any::<bool>(), 0u32..50),
            4..120,
        ),
        records_per_block in 1usize..32,
        compress in any::<bool>(),
        flip_position in 0usize..1 << 16,
        flip_bit in 0usize..8,
    ) {
        let records: Vec<MemAccess> = seed_records
            .iter()
            .map(|&(addr, pc, is_write, non_mem_instrs)| MemAccess {
                addr,
                pc,
                is_write,
                non_mem_instrs,
            })
            .collect();
        let path = tmp("randflip");
        write_file(&path, &[records], records_per_block, compress, true);
        let baseline = interpret(&path).expect("well-formed file must decode");
        let original = std::fs::read(&path).unwrap();
        let mut corrupted = original.clone();
        let target = flip_position % corrupted.len();
        corrupted[target] ^= 1 << flip_bit;
        std::fs::write(&path, &corrupted).unwrap();
        if let Ok(interpretation) = interpret(&path) {
            prop_assert_ne!(
                interpretation,
                baseline,
                "flipping bit {} of byte {} changed the file but not its decoded \
                 interpretation",
                flip_bit,
                target
            );
        }
        std::fs::remove_file(path).ok();
    }
}

/// Exhaustive single-bit-flip sweep over EVERY byte of a small v2 and v3 file: the
/// deterministic backbone behind the sampled proptest above. Covers each byte region —
/// preamble, chunk frames, (compressed) payloads, footer labels/directory, trailing
/// footer offset — asserting that corruption is either rejected outright or visibly
/// changes the decoded result. With checksums on, payload flips specifically must be
/// *rejected* (not merely decode differently).
#[test]
fn every_single_bit_flip_is_detected_or_changes_the_interpretation() {
    for compress in [false, true] {
        let records: Vec<MemAccess> = (0..48)
            .map(|i| MemAccess {
                addr: 0x1000 + i * 64,
                pc: 0x400 + (i % 3) * 4,
                is_write: i % 5 == 0,
                non_mem_instrs: (i % 4) as u32,
            })
            .collect();
        let path = tmp(if compress { "flip_v3" } else { "flip_v2" });
        write_file(&path, &[records], 16, compress, true);
        let baseline = interpret(&path).expect("well-formed file must decode");
        let original = std::fs::read(&path).unwrap();
        let header = read_header(&path).unwrap();
        let payload_region = header.preamble_len() as usize..header.data_end as usize;

        for byte in 0..original.len() {
            for bit in 0..8 {
                let mut corrupted = original.clone();
                corrupted[byte] ^= 1 << bit;
                std::fs::write(&path, &corrupted).unwrap();
                match interpret(&path) {
                    Err(_) => {}
                    Ok(interpretation) => {
                        assert_ne!(
                            interpretation, baseline,
                            "v{}: flipping bit {bit} of byte {byte} was silently \
                             absorbed",
                            header.version
                        );
                        // Inside the checksummed data region nothing may even decode
                        // differently: every chunk flip must fail validation. (The
                        // region includes frame fields; those fail structurally.)
                        assert!(
                            !payload_region.contains(&byte),
                            "v{}: flip at data-region byte {byte} bit {bit} decoded \
                             despite per-block checksums",
                            header.version
                        );
                    }
                }
            }
        }
        std::fs::remove_file(path).ok();
    }
}
