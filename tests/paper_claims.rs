//! Shape-level checks of the paper's qualitative claims on a reduced configuration.
//!
//! Absolute numbers differ from the paper (synthetic workloads, approximate core model,
//! scaled caches), so these tests assert *directions* the paper's argument depends on:
//! forcing BRRIP onto thrashing applications does not hurt the baseline, Footprint-number
//! separates thrashing from cache-friendly applications, ADAPT's bypassing reduces the
//! misses of non-thrashing applications relative to inserting everything, and the hardware
//! cost ordering of Table 2 holds.

use adapt_llc::adapt::{adapt_cost_bytes, AdaptConfig};
use adapt_llc::experiments::{evaluate_mix, PolicyKind};
use adapt_llc::workloads::{benchmark_by_name, generate_mixes, StudyKind};

/// A small but non-trivial configuration: larger than Smoke so the monitoring interval
/// completes several times, much smaller than the full scaled runs.
fn test_scale_config() -> (
    adapt_llc::sim::config::SystemConfig,
    adapt_llc::workloads::WorkloadMix,
    u64,
) {
    let config = adapt_llc::sim::config::SystemConfig::scaled_with_llc(16, 256 * 1024, 16);
    let mix = generate_mixes(StudyKind::Cores16, 1, 0xC0FFEE).remove(0);
    (config, mix, 600_000)
}

#[test]
fn footprint_number_separates_thrashing_from_friendly_applications() {
    // Table 4 reproduction in miniature: measured footprints must order correctly.
    use adapt_llc::adapt::FootprintMonitor;
    use adapt_llc::sim::addr::block_of;
    use adapt_llc::sim::trace::TraceSource;

    let llc_sets = 512;
    let measure = |name: &str| -> f64 {
        let mut monitor = FootprintMonitor::new(AdaptConfig::all_sets_profiler(), llc_sets, 1);
        let mut trace = benchmark_by_name(name).unwrap().trace(0, llc_sets, 3);
        for _ in 0..400_000u64 {
            let a = trace.next_access();
            let b = block_of(a.addr);
            monitor.observe(0, b.set_index(llc_sets), b.0);
        }
        monitor.end_interval()[0]
    };
    let calc = measure("calc");
    let gcc = measure("gcc");
    let mcf = measure("mcf");
    let lbm = measure("lbm");
    assert!(calc < 4.0, "calc fpn {calc}");
    assert!(gcc < 8.0, "gcc fpn {gcc}");
    assert!(mcf > gcc, "mcf ({mcf}) should exceed gcc ({gcc})");
    assert!(lbm >= 16.0, "lbm fpn {lbm}");
}

#[test]
fn forced_brrip_on_thrashers_does_not_hurt_weighted_speedup() {
    // Figure 1's motivation: pinning thrashing applications to BRRIP should not lose
    // performance relative to letting TA-DRRIP learn SRRIP for them.
    let (config, mix, instrs) = test_scale_config();
    let base = evaluate_mix(&config, &mix, PolicyKind::TaDrrip, instrs, 1);
    let forced = evaluate_mix(&config, &mix, PolicyKind::TaDrripForced, instrs, 1);
    assert!(
        forced.weighted_speedup() >= base.weighted_speedup() * 0.99,
        "forced {:.4} vs baseline {:.4}",
        forced.weighted_speedup(),
        base.weighted_speedup()
    );
}

#[test]
fn adapt_bypass_helps_non_thrashing_applications_relative_to_insertion() {
    // Figure 4/5's core claim: bypassing the Least-priority lines leaves more space for the
    // cache-friendly applications than inserting them at distant priority.
    let (config, mix, instrs) = test_scale_config();
    let ins = evaluate_mix(&config, &mix, PolicyKind::AdaptIns, instrs, 1);
    let byp = evaluate_mix(&config, &mix, PolicyKind::AdaptBp32, instrs, 1);
    let friendly_mpki = |e: &adapt_llc::experiments::MixEvaluation| -> f64 {
        let apps: Vec<f64> = e
            .per_app
            .iter()
            .filter(|a| !a.is_thrashing)
            .map(|a| a.llc_mpki)
            .collect();
        apps.iter().sum::<f64>() / apps.len() as f64
    };
    let mpki_ins = friendly_mpki(&ins);
    let mpki_byp = friendly_mpki(&byp);
    assert!(
        mpki_byp <= mpki_ins * 1.02,
        "bypassing should not increase friendly-app MPKI (ins {mpki_ins:.3}, bypass {mpki_byp:.3})"
    );
    assert!(
        byp.weighted_speedup() >= ins.weighted_speedup() * 0.98,
        "bypass WS {:.4} vs insert WS {:.4}",
        byp.weighted_speedup(),
        ins.weighted_speedup()
    );
}

#[test]
fn adapt_improves_over_tadrrip_on_a_contended_mix() {
    // The headline direction of Figure 3 on one deterministic 16-core mix.
    let (config, mix, instrs) = test_scale_config();
    let base = evaluate_mix(&config, &mix, PolicyKind::TaDrrip, instrs, 1);
    let adapt = evaluate_mix(&config, &mix, PolicyKind::AdaptBp32, instrs, 1);
    assert!(
        adapt.weighted_speedup() >= base.weighted_speedup() * 0.98,
        "ADAPT {:.4} should not lose to TA-DRRIP {:.4} beyond noise",
        adapt.weighted_speedup(),
        base.weighted_speedup()
    );
}

#[test]
fn table2_cost_ordering_holds_for_the_paper_configuration() {
    // ADAPT costs more than TA-DRRIP but far less than EAF and SHiP at 24 cores / 16 MB.
    let adapt = adapt_cost_bytes(&AdaptConfig::paper(), 24);
    let tadrrip = 2 * 24u64;
    let eaf = 256 * 1024u64;
    let ship = (65.875 * 1024.0) as u64;
    assert!(tadrrip < adapt);
    assert!(adapt < ship);
    assert!(ship < eaf);
    assert!(
        (23_000..=26_000).contains(&adapt),
        "ADAPT ~24KB, got {adapt}"
    );
}

#[test]
fn monitoring_cost_is_a_small_fraction_of_the_llc_tag_array() {
    // Paper §3.3: the monitoring system sees ~1/25th of the accesses of the main tag array
    // (40 sets per app, 16 apps, 16K sets). Check the ratio for the paper geometry.
    let monitored_sets_total = 40.0 * 16.0;
    let llc_sets = 16.0 * 1024.0;
    let ratio = monitored_sets_total / llc_sets;
    assert!(ratio <= 1.0 / 25.0 + 1e-9, "ratio {ratio}");
}
