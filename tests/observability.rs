//! Integration tests of the sim-obs instrumentation layer against the sweep engine:
//! profiling must never change results, serial and parallel runs must record the same
//! logical story, and exported profiles must be valid Chrome trace JSON.
//!
//! The flight recorder is process-global, so every test takes [`obs_lock`] and starts
//! from [`sim_obs::reset`].

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use experiments::runner::{evaluate_policies_on_mixes, warm_alone_cache};
use experiments::{ExperimentScale, PolicyKind};
use sim_obs::{Drained, EventKind};
use workloads::{generate_mixes, StudyKind};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 1;

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn policies() -> [PolicyKind; 3] {
    [PolicyKind::TaDrrip, PolicyKind::AdaptBp32, PolicyKind::Eaf]
}

/// The sweep's logical event multiset: (kind, cat, name, context) with counts, for the
/// sweep spans and simulator samples. Worker ids, timestamps and rayon scheduling events
/// are deliberately excluded — they legitimately differ between serial and parallel runs.
fn logical_events(
    drained: &Drained,
) -> BTreeMap<(String, &'static str, &'static str, String), usize> {
    let mut set = BTreeMap::new();
    for thread in &drained.threads {
        for event in &thread.events {
            let keep = match event.kind {
                EventKind::Span => event.cat == "sweep",
                EventKind::Sample => event.cat == "sim",
                _ => false,
            };
            if !keep {
                continue;
            }
            let kind = format!("{:?}", event.kind);
            let ctx = drained.context(event.ctx).to_string();
            *set.entry((kind, event.cat, event.name, ctx)).or_insert(0) += 1;
        }
    }
    set
}

#[test]
fn profiling_does_not_change_sweep_results() {
    let _guard = obs_lock();
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
    let policies = policies();
    warm_alone_cache(&cfg, &mixes, INSTRUCTIONS, SEED);

    sim_obs::reset();
    let plain = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);

    sim_obs::enable();
    let profiled = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    sim_obs::disable();
    let drained = sim_obs::drain();

    assert!(
        drained.total_events() > 0,
        "profiled run must actually record events"
    );
    assert_eq!(plain.len(), profiled.len());
    for (a, b) in plain.iter().zip(&profiled) {
        assert_eq!(a.mix_id, b.mix_id);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.weighted_speedup(), b.weighted_speedup());
        assert_eq!(
            a.llc_global, b.llc_global,
            "LLC stats must be bit-identical"
        );
        assert_eq!(a.llc_banks, b.llc_banks, "bank stats must be bit-identical");
        assert_eq!(a.final_cycle, b.final_cycle, "timing must be bit-identical");
        for (p, q) in a.per_app.iter().zip(&b.per_app) {
            assert_eq!(p.ipc, q.ipc, "{}: IPC changed under profiling", p.name);
            assert_eq!(
                p.llc_mpki, q.llc_mpki,
                "{}: MPKI changed under profiling",
                p.name
            );
        }
    }
}

#[test]
fn serial_and_parallel_profiled_sweeps_tell_the_same_story() {
    let _guard = obs_lock();
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
    let policies = policies();
    warm_alone_cache(&cfg, &mixes, INSTRUCTIONS, SEED);

    sim_obs::reset();
    sim_obs::enable();
    let serial = rayon::with_worker_limit(1, || {
        evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED)
    });
    sim_obs::disable();
    let serial_events = logical_events(&sim_obs::drain());

    sim_obs::reset();
    sim_obs::enable();
    let parallel = rayon::with_worker_limit(4, || {
        evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED)
    });
    sim_obs::disable();
    let parallel_events = logical_events(&sim_obs::drain());

    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.weighted_speedup(), b.weighted_speedup());
    }
    assert!(
        serial_events
            .keys()
            .any(|(_, cat, name, _)| *cat == "sweep" && *name == "simulate"),
        "sweep spans missing from the serial profile"
    );
    assert!(
        serial_events.keys().any(|(kind, _, _, _)| kind == "Sample"),
        "interval samples missing from the serial profile"
    );
    assert_eq!(
        serial_events, parallel_events,
        "serial and parallel sweeps must record the same logical span/sample multiset \
         (modulo worker ids and timestamps)"
    );
}

#[test]
fn exported_profile_is_perfetto_loadable_and_complete() {
    let _guard = obs_lock();
    let scale = ExperimentScale::Smoke;
    let cfg = scale.system_config(StudyKind::Cores4);
    let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
    let policies = policies();
    warm_alone_cache(&cfg, &mixes, INSTRUCTIONS, SEED);

    let dir = std::env::temp_dir().join("e2e_obs_profile");
    std::fs::remove_dir_all(&dir).ok();

    sim_obs::reset();
    sim_obs::enable();
    let _ = evaluate_policies_on_mixes(&cfg, &mixes, &policies, INSTRUCTIONS, SEED);
    sim_obs::disable();
    let report = sim_obs::export_profile(&dir).expect("profile export");
    assert!(report.events > 0);
    assert!(report.trace_events > 0);
    assert!(report.csv_rows > 0, "interval samples must reach the CSV");

    // The exporter validated the trace before writing; re-validate from disk anyway so
    // the test holds the file, not the exporter's in-memory copy, to the schema.
    let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
    let events = sim_obs::validate_chrome_trace(&trace).expect("schema-valid trace.json");
    assert_eq!(events, report.trace_events);
    let parsed = sim_obs::JsonValue::parse(&trace).expect("trace.json parses");
    assert!(parsed.as_array().is_some_and(|a| !a.is_empty()));

    let csv = std::fs::read_to_string(dir.join("intervals.csv")).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().expect("csv header");
    for col in ["context", "series", "tid", "ts_us", "ipc", "llc_mpki"] {
        assert!(header.split(',').any(|c| c == col), "missing column {col}");
    }
    assert_eq!(lines.count(), report.csv_rows);

    let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
    assert!(
        summary.contains("sweep/simulate"),
        "summary lists sweep spans"
    );
    assert!(
        summary.contains("interval.core"),
        "summary lists sample series"
    );

    std::fs::remove_dir_all(&dir).ok();
}
