//! Dynamic RRIP (DRRIP) and Thread-Aware DRRIP (TA-DRRIP).
//!
//! DRRIP uses set dueling to choose between SRRIP and BRRIP: a small pool of "leader" sets
//! always uses SRRIP, another pool always uses BRRIP, and a saturating policy-selection
//! counter (PSEL, 10 bits, threshold 512 — paper §2) tracks which pool misses less; all
//! other ("follower") sets use the winning policy.
//!
//! TA-DRRIP is the paper's baseline: each hardware thread (core/application) duels
//! independently with its own PSEL counter and its own leader sets, so each application
//! learns its own insertion policy. The paper's Figure 1 additionally evaluates a variant
//! where applications known to thrash are *forced* to use BRRIP
//! ([`TaDrripPolicy::force_brrip_for`]), and sweeps the number of dueling sets
//! (SD = 64/128), both of which are supported here.

use cache_sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray, RRPV_MAX,
};

use crate::rrip::{BRRIP_THROTTLE, SRRIP_INSERT_RRPV};

const PSEL_BITS: u32 = 10;
const PSEL_MAX: u32 = (1 << PSEL_BITS) - 1;
const PSEL_THRESHOLD: u32 = 1 << (PSEL_BITS - 1);

/// Which insertion sub-policy a set/thread pair should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubPolicy {
    Srrip,
    Brrip,
}

/// Leader-set ownership: which core's SDM a set belongs to, and for which sub-policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leader {
    None,
    Srrip(usize),
    Brrip(usize),
}

/// Shared leader-set map used by DRRIP (1 "thread") and TA-DRRIP (N threads).
///
/// Leader sets are spread uniformly over the index space, interleaving cores so no core's
/// monitors cluster in one region. If the requested number of dueling sets does not fit the
/// cache, it is scaled down.
#[derive(Debug, Clone)]
struct LeaderMap {
    leaders: Vec<Leader>,
    sets_per_policy: usize,
}

impl LeaderMap {
    fn new(num_sets: usize, num_threads: usize, requested_per_policy: usize) -> Self {
        let mut per_policy = requested_per_policy.max(1);
        // Keep at least half of the sets as followers.
        while per_policy > 1 && num_threads * 2 * per_policy > num_sets / 2 {
            per_policy /= 2;
        }
        let total = num_threads * 2 * per_policy;
        let mut leaders = vec![Leader::None; num_sets];
        if total == 0 || total > num_sets {
            return LeaderMap {
                leaders,
                sets_per_policy: 0,
            };
        }
        let stride = num_sets / total;
        for i in 0..total {
            let set = i * stride;
            let thread = i % num_threads;
            let which = (i / num_threads) % 2;
            leaders[set] = if which == 0 {
                Leader::Srrip(thread)
            } else {
                Leader::Brrip(thread)
            };
        }
        LeaderMap {
            leaders,
            sets_per_policy: per_policy,
        }
    }

    #[inline]
    fn leader(&self, set: usize) -> Leader {
        self.leaders[set]
    }

    fn sets_per_policy(&self) -> usize {
        self.sets_per_policy
    }
}

/// Per-thread dueling state.
#[derive(Debug, Clone)]
struct ThreadDuel {
    psel: u32,
    brip_throttle: u32,
    forced_brrip: bool,
}

impl ThreadDuel {
    fn new() -> Self {
        // PSEL starts at zero (strong SRRIP), the conventional DIP/DRRIP initialization.
        // A thrashing application misses equally in both kinds of leader sets, so its PSEL
        // performs a symmetric random walk from zero and effectively never commits to
        // BRRIP — which is exactly the TA-DRRIP behaviour the paper's motivation section
        // reports ("TA-DRRIP learns SRRIP policy for all applications").
        ThreadDuel {
            psel: 0,
            brip_throttle: 0,
            forced_brrip: false,
        }
    }

    fn follower_policy(&self) -> SubPolicy {
        if self.forced_brrip {
            SubPolicy::Brrip
        } else if self.psel < PSEL_THRESHOLD {
            SubPolicy::Srrip
        } else {
            SubPolicy::Brrip
        }
    }

    fn brrip_insertion(&mut self) -> u8 {
        self.brip_throttle = self.brip_throttle.wrapping_add(1);
        if self.brip_throttle.is_multiple_of(BRRIP_THROTTLE) {
            SRRIP_INSERT_RRPV
        } else {
            RRPV_MAX
        }
    }
}

/// Common machinery shared by DRRIP and TA-DRRIP.
struct DuelingRrip {
    rrpv: RrpvArray,
    leaders: LeaderMap,
    threads: Vec<ThreadDuel>,
    /// Maps a core id to a dueling thread (identity for TA-DRRIP, all-zero for DRRIP).
    thread_of_core: Box<dyn Fn(usize) -> usize + Send>,
}

impl DuelingRrip {
    fn new(
        num_sets: usize,
        ways: usize,
        num_threads: usize,
        dueling_sets_per_policy: usize,
        thread_of_core: Box<dyn Fn(usize) -> usize + Send>,
    ) -> Self {
        DuelingRrip {
            rrpv: RrpvArray::new(num_sets, ways),
            leaders: LeaderMap::new(num_sets, num_threads, dueling_sets_per_policy),
            threads: (0..num_threads).map(|_| ThreadDuel::new()).collect(),
            thread_of_core,
        }
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
    }

    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        let thread = (self.thread_of_core)(ctx.core_id).min(self.threads.len() - 1);

        // PSEL update: a miss in a leader set owned by this thread votes against that
        // leader's policy (misses in SRRIP leaders increment, misses in BRRIP leaders
        // decrement — paper §2 description of set-dueling).
        match self.leaders.leader(ctx.set_index) {
            Leader::Srrip(owner) if owner == thread => {
                let t = &mut self.threads[thread];
                t.psel = (t.psel + 1).min(PSEL_MAX);
            }
            Leader::Brrip(owner) if owner == thread => {
                let t = &mut self.threads[thread];
                t.psel = t.psel.saturating_sub(1);
            }
            _ => {}
        }

        let t = &mut self.threads[thread];
        let policy = if t.forced_brrip {
            SubPolicy::Brrip
        } else {
            match self.leaders.leader(ctx.set_index) {
                Leader::Srrip(owner) if owner == thread => SubPolicy::Srrip,
                Leader::Brrip(owner) if owner == thread => SubPolicy::Brrip,
                _ => t.follower_policy(),
            }
        };
        let rrpv = match policy {
            SubPolicy::Srrip => SRRIP_INSERT_RRPV,
            SubPolicy::Brrip => t.brrip_insertion(),
        };
        InsertionDecision::insert(rrpv)
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if let InsertionDecision::Insert { rrpv } = decision {
            if way != usize::MAX {
                self.rrpv.set(ctx.set_index, way, *rrpv);
            }
        }
    }
}

/// Single-PSEL DRRIP (thread-oblivious).
pub struct DrripPolicy {
    inner: DuelingRrip,
}

impl DrripPolicy {
    pub fn new(num_sets: usize, ways: usize) -> Self {
        Self::with_dueling_sets(num_sets, ways, 32)
    }

    /// Construct with an explicit number of dueling sets per policy.
    pub fn with_dueling_sets(num_sets: usize, ways: usize, dueling_sets: usize) -> Self {
        DrripPolicy {
            inner: DuelingRrip::new(num_sets, ways, 1, dueling_sets, Box::new(|_| 0)),
        }
    }
}

impl LlcReplacementPolicy for DrripPolicy {
    fn name(&self) -> String {
        "DRRIP".into()
    }
    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.inner.on_hit(ctx, way);
    }
    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        self.inner.insertion_decision(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.inner.choose_victim(ctx)
    }
    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        self.inner.on_fill(ctx, way, decision);
    }
}

/// Thread-aware DRRIP: the paper's baseline policy.
pub struct TaDrripPolicy {
    inner: DuelingRrip,
    dueling_sets: usize,
    forced_label: bool,
}

impl TaDrripPolicy {
    /// Default construction with 32 dueling sets per policy per thread.
    pub fn new(num_sets: usize, ways: usize, num_cores: usize) -> Self {
        Self::with_dueling_sets(num_sets, ways, num_cores, 32)
    }

    /// Construct with an explicit number of dueling sets per policy per thread
    /// (the paper's Figure 1a sweeps SD = 64 and SD = 128).
    pub fn with_dueling_sets(
        num_sets: usize,
        ways: usize,
        num_cores: usize,
        dueling_sets: usize,
    ) -> Self {
        TaDrripPolicy {
            inner: DuelingRrip::new(
                num_sets,
                ways,
                num_cores.max(1),
                dueling_sets,
                Box::new(|core| core),
            ),
            dueling_sets,
            forced_label: false,
        }
    }

    /// Force BRRIP insertions for the given cores (the paper's Figure 1
    /// "TA-DRRIP(forced)" experiment, where known-thrashing applications are pinned to
    /// BRRIP regardless of what set dueling would have learned).
    pub fn force_brrip_for(&mut self, cores: &[usize]) {
        for &c in cores {
            if c < self.inner.threads.len() {
                self.inner.threads[c].forced_brrip = true;
                self.forced_label = true;
            }
        }
    }

    /// Number of dueling sets per policy actually in use (after fitting to the cache).
    pub fn effective_dueling_sets(&self) -> usize {
        self.inner.leaders.sets_per_policy()
    }

    /// Requested number of dueling sets per policy.
    pub fn requested_dueling_sets(&self) -> usize {
        self.dueling_sets
    }

    /// Current PSEL value for a core (inspection helper for tests/experiments).
    pub fn psel_of(&self, core: usize) -> u32 {
        self.inner.threads[core].psel
    }
}

impl LlcReplacementPolicy for TaDrripPolicy {
    fn name(&self) -> String {
        if self.forced_label {
            "TA-DRRIP(forced)".into()
        } else {
            "TA-DRRIP".into()
        }
    }
    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.inner.on_hit(ctx, way);
    }
    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        self.inner.insertion_decision(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.inner.choose_victim(ctx)
    }
    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        self.inner.on_fill(ctx, way, decision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(core: usize, set: usize) -> AccessContext {
        AccessContext {
            core_id: core,
            pc: 0,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn leader_map_assigns_disjoint_leaders() {
        let map = LeaderMap::new(1024, 4, 32);
        let mut srrip = 0;
        let mut brrip = 0;
        for s in 0..1024 {
            match map.leader(s) {
                Leader::Srrip(_) => srrip += 1,
                Leader::Brrip(_) => brrip += 1,
                Leader::None => {}
            }
        }
        assert_eq!(srrip, 4 * map.sets_per_policy());
        assert_eq!(brrip, 4 * map.sets_per_policy());
        assert!(srrip + brrip <= 1024 / 2, "followers must dominate");
    }

    #[test]
    fn leader_map_scales_down_when_cache_is_small() {
        let map = LeaderMap::new(64, 16, 32);
        assert!(map.sets_per_policy() >= 1);
        let leaders = (0..64).filter(|&s| map.leader(s) != Leader::None).count();
        assert!(leaders <= 32);
    }

    #[test]
    fn forced_brrip_inserts_mostly_distant() {
        let mut p = TaDrripPolicy::new(256, 16, 2);
        p.force_brrip_for(&[1]);
        assert_eq!(p.name(), "TA-DRRIP(forced)");
        let mut distant = 0;
        for i in 0..64 {
            if let InsertionDecision::Insert { rrpv: 3 } =
                p.insertion_decision(&ctx(1, (i * 7) % 256))
            {
                distant += 1;
            }
        }
        assert!(
            distant >= 62,
            "forced core should insert distant nearly always ({distant}/64)"
        );
    }

    #[test]
    fn unforced_cores_default_to_srrip_like_insertions() {
        let mut p = TaDrripPolicy::new(256, 16, 2);
        // Use a follower set (find one that is not a leader by probing a few).
        let mut follower = None;
        for s in 0..256 {
            if matches!(p.inner.leaders.leader(s), Leader::None) {
                follower = Some(s);
                break;
            }
        }
        let s = follower.expect("must have follower sets");
        match p.insertion_decision(&ctx(0, s)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, SRRIP_INSERT_RRPV),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn psel_moves_toward_brrip_when_srrip_leaders_miss() {
        let mut p = TaDrripPolicy::new(1024, 16, 2);
        let start = p.psel_of(0);
        // Find core 0's SRRIP leader sets and hammer misses into them.
        let srrip_leaders: Vec<usize> = (0..1024)
            .filter(|&s| matches!(p.inner.leaders.leader(s), Leader::Srrip(0)))
            .collect();
        assert!(!srrip_leaders.is_empty());
        for _ in 0..10 {
            for &s in &srrip_leaders {
                p.insertion_decision(&ctx(0, s));
            }
        }
        assert!(p.psel_of(0) > start, "PSEL should move toward BRRIP");
        // Core 1's PSEL is untouched.
        assert_eq!(p.psel_of(1), start);
    }

    #[test]
    fn drrip_uses_a_single_duel_for_all_cores() {
        let mut p = DrripPolicy::new(256, 16);
        // Any core id maps to thread 0; this must not panic even for large core ids.
        let _ = p.insertion_decision(&ctx(7, 3));
        let _ = p.insertion_decision(&ctx(15, 250));
    }

    #[test]
    fn victim_selection_follows_rrip_aging() {
        let mut p = TaDrripPolicy::new(16, 4, 2);
        let lines = vec![
            LineView {
                valid: true,
                owner: 0,
                block_addr: 0,
                dirty: false
            };
            4
        ];
        for w in 0..4 {
            p.on_fill(&ctx(0, 0), w, &InsertionDecision::insert(2));
        }
        p.on_hit(&ctx(0, 0), 3);
        assert_eq!(p.choose_victim(&ctx(0, 0), &lines), 0);
    }
}
