//! SHiP-PC: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! SHiP associates each cache line with the signature (here: a hash of the program counter
//! and core id) of the instruction that inserted it, plus a 1-bit "was re-referenced"
//! outcome. A Signature History Counter Table (SHCT) of saturating counters learns, per
//! signature, whether lines inserted by that signature tend to be re-referenced:
//!
//! * on a hit, the line's outcome bit is set and the SHCT entry is incremented;
//! * on eviction of a never-re-referenced line, the SHCT entry is decremented;
//! * on insertion, a zero SHCT entry predicts a *distant* re-reference (RRPV 3) and any
//!   non-zero entry predicts an intermediate one (SRRIP's RRPV 2).
//!
//! Victimization is SRRIP. The paper observes that, because SHiP learns from hits and
//! misses observed at the *shared* cache, it behaves like TA-DRRIP in the
//! `#cores >= #ways` regime: only ~3% of insertions are predicted distant, so thrashing
//! applications are not tamed (paper §5.1).

use cache_sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray, RRPV_MAX,
};

use crate::rrip::SRRIP_INSERT_RRPV;

/// Number of SHCT entries (2^14, as in the SHiP paper's PC-based configuration).
pub const SHCT_ENTRIES: usize = 1 << 14;
/// Saturating-counter maximum (3-bit counters).
pub const SHCT_MAX: u8 = 7;
/// Counters start at a weakly-reused value so cold signatures are not immediately distant.
pub const SHCT_INIT: u8 = 1;

#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    signature: u16,
    outcome: bool,
    valid: bool,
}

/// The SHiP-PC policy.
pub struct ShipPolicy {
    rrpv: RrpvArray,
    ways: usize,
    shct: Vec<u8>,
    meta: Vec<LineMeta>,
    /// Statistics: how many insertions were predicted distant (the paper quotes ~3%).
    pub distant_predictions: u64,
    pub total_predictions: u64,
}

impl ShipPolicy {
    /// `_num_cores` is accepted for interface symmetry with the other thread-aware
    /// policies; signatures are already disambiguated per core via `Self::signature`.
    pub fn new(num_sets: usize, ways: usize, _num_cores: usize) -> Self {
        ShipPolicy {
            rrpv: RrpvArray::new(num_sets, ways),
            ways,
            shct: vec![SHCT_INIT; SHCT_ENTRIES],
            meta: vec![LineMeta::default(); num_sets * ways],
            distant_predictions: 0,
            total_predictions: 0,
        }
    }

    /// Signature of an access: PC hashed with the core id so different applications using
    /// the same synthetic PC ranges do not alias.
    fn signature(&self, ctx: &AccessContext) -> u16 {
        let pc = ctx.pc;
        let mixed =
            pc ^ (pc >> 17) ^ ((ctx.core_id as u64) << 9) ^ (ctx.core_id as u64 * 0x9e37_79b9);
        (mixed as usize % SHCT_ENTRIES) as u16
    }

    #[inline]
    fn meta_idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Fraction of insertions predicted distant so far.
    pub fn distant_fraction(&self) -> f64 {
        if self.total_predictions == 0 {
            0.0
        } else {
            self.distant_predictions as f64 / self.total_predictions as f64
        }
    }
}

impl LlcReplacementPolicy for ShipPolicy {
    fn name(&self) -> String {
        "SHiP".into()
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
        let idx = self.meta_idx(ctx.set_index, way);
        if self.meta[idx].valid && !self.meta[idx].outcome {
            self.meta[idx].outcome = true;
            let sig = self.meta[idx].signature as usize;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        let sig = self.signature(ctx) as usize;
        self.total_predictions += 1;
        if self.shct[sig] == 0 {
            self.distant_predictions += 1;
            InsertionDecision::insert(RRPV_MAX)
        } else {
            InsertionDecision::insert(SRRIP_INSERT_RRPV)
        }
    }

    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }

    fn on_evict(&mut self, ctx: &AccessContext, _evicted_block: u64, _owner: usize) {
        // The victim way is the one chosen by choose_victim for this same ctx; the LLC calls
        // on_evict before on_fill, so we can locate the victim through its metadata when
        // on_fill overwrites it. To keep the bookkeeping local we instead decrement lazily in
        // on_fill, where the way index is known. Nothing to do here.
        let _ = ctx;
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if way == usize::MAX || decision.is_bypass() {
            return;
        }
        let idx = self.meta_idx(ctx.set_index, way);
        // Train down the signature of the line we are overwriting if it was never reused.
        if self.meta[idx].valid && !self.meta[idx].outcome {
            let old_sig = self.meta[idx].signature as usize;
            self.shct[old_sig] = self.shct[old_sig].saturating_sub(1);
        }
        if let InsertionDecision::Insert { rrpv } = decision {
            self.rrpv.set(ctx.set_index, way, *rrpv);
        }
        self.meta[idx] = LineMeta {
            signature: self.signature(ctx),
            outcome: false,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(core: usize, pc: u64, set: usize) -> AccessContext {
        AccessContext {
            core_id: core,
            pc,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn cold_signatures_insert_intermediate() {
        let mut p = ShipPolicy::new(16, 4, 2);
        match p.insertion_decision(&ctx(0, 0x400123, 3)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, SRRIP_INSERT_RRPV),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signatures_with_no_reuse_become_distant() {
        let mut p = ShipPolicy::new(16, 4, 2);
        let c = ctx(0, 0xdead, 0);
        // Insert and overwrite (never reused) enough times to drive the SHCT entry to zero.
        for i in 0..(SHCT_INIT as usize + 2) {
            let d = p.insertion_decision(&c);
            p.on_fill(&c, i % 4, &d);
            // Overwrite the same way with the same signature; the old line had no hit.
            let d2 = p.insertion_decision(&c);
            p.on_fill(&c, i % 4, &d2);
        }
        match p.insertion_decision(&c) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, RRPV_MAX),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.distant_fraction() > 0.0);
    }

    #[test]
    fn reused_signatures_recover_intermediate_priority() {
        let mut p = ShipPolicy::new(16, 4, 2);
        let c = ctx(1, 0xbeef, 1);
        // Drive the counter to zero with unreused fills.
        for _ in 0..8 {
            let d = p.insertion_decision(&c);
            p.on_fill(&c, 0, &d);
        }
        // Now show reuse: fill then hit, several times.
        for _ in 0..4 {
            let d = p.insertion_decision(&c);
            p.on_fill(&c, 1, &d);
            p.on_hit(&c, 1);
        }
        match p.insertion_decision(&c) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, SRRIP_INSERT_RRPV),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn different_cores_with_same_pc_use_different_signatures() {
        let p = ShipPolicy::new(16, 4, 4);
        let s0 = p.signature(&ctx(0, 0x1234, 0));
        let s1 = p.signature(&ctx(1, 0x1234, 0));
        assert_ne!(s0, s1);
    }

    #[test]
    fn hit_sets_outcome_only_once() {
        let mut p = ShipPolicy::new(4, 2, 1);
        let c = ctx(0, 0x77, 0);
        let d = p.insertion_decision(&c);
        p.on_fill(&c, 0, &d);
        let sig = p.signature(&c) as usize;
        let before = p.shct[sig];
        p.on_hit(&c, 0);
        p.on_hit(&c, 0);
        p.on_hit(&c, 0);
        assert_eq!(p.shct[sig], (before + 1).min(SHCT_MAX));
    }
}
