//! # llc-policies
//!
//! Baseline shared-LLC replacement policies the ADAPT paper compares against, implemented
//! against the [`cache_sim::replacement::LlcReplacementPolicy`] interface:
//!
//! * [`LruPolicy`] — classic least-recently-used (insert at MRU).
//! * [`SrripPolicy`] / [`BrripPolicy`] — static/bimodal re-reference interval prediction
//!   (Jaleel et al., ISCA 2010).
//! * [`DrripPolicy`] — set-dueling DRRIP (single PSEL counter).
//! * [`TaDrripPolicy`] — thread-aware DRRIP, the paper's baseline; supports the
//!   "forced BRRIP for thrashing applications" mode used by the paper's Figure 1 and a
//!   configurable number of dueling sets (SD=64/128 in Figure 1a).
//! * [`ShipPolicy`] — SHiP-PC, signature-based hit prediction (Wu et al., MICRO 2011).
//! * [`EafPolicy`] — the Evicted-Address Filter (Seshadri et al., PACT 2012).
//! * [`BypassDistant`] — a wrapper that converts distant-priority insertions of any inner
//!   policy into LLC bypasses, reproducing the bypass ablation of the paper's Figure 6.
//! * [`AnyPolicy`] — monomorphized enum dispatch over the set above (with a
//!   `Custom(Box<dyn ...>)` escape hatch), the form the simulator hot path is
//!   instantiated with; see [`dispatch`].
//!
//! All policies are deterministic: "probabilistic" insertions (1/32 bimodal throttles and
//! the like) are realized with small hardware-style counters exactly as the original papers
//! describe, so simulations are exactly reproducible.

pub mod bypass;
pub mod dispatch;
pub mod drrip;
pub mod eaf;
pub mod lru;
pub mod rrip;
pub mod ship;

pub use bypass::BypassDistant;
pub use dispatch::{build_baseline_any, AnyPolicy};
pub use drrip::{DrripPolicy, TaDrripPolicy};
pub use eaf::EafPolicy;
pub use lru::LruPolicy;
pub use rrip::{BrripPolicy, SrripPolicy};
pub use ship::ShipPolicy;

use cache_sim::config::LlcConfig;
use cache_sim::replacement::LlcReplacementPolicy;

/// Identifier for one of the baseline policies; used by experiment drivers and examples to
/// construct policies by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    Lru,
    Srrip,
    Brrip,
    Drrip,
    TaDrrip,
    Ship,
    Eaf,
}

impl BaselineKind {
    /// All baselines evaluated by the paper's main figures.
    pub fn paper_set() -> Vec<BaselineKind> {
        vec![
            BaselineKind::Lru,
            BaselineKind::TaDrrip,
            BaselineKind::Ship,
            BaselineKind::Eaf,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::Lru => "LRU",
            BaselineKind::Srrip => "SRRIP",
            BaselineKind::Brrip => "BRRIP",
            BaselineKind::Drrip => "DRRIP",
            BaselineKind::TaDrrip => "TA-DRRIP",
            BaselineKind::Ship => "SHiP",
            BaselineKind::Eaf => "EAF",
        }
    }
}

/// Construct a baseline policy for an LLC with the given configuration and core count.
pub fn build_baseline(
    kind: BaselineKind,
    llc: &LlcConfig,
    num_cores: usize,
) -> Box<dyn LlcReplacementPolicy> {
    let sets = llc.geometry.num_sets();
    let ways = llc.geometry.ways;
    match kind {
        BaselineKind::Lru => Box::new(LruPolicy::new(sets, ways)),
        BaselineKind::Srrip => Box::new(SrripPolicy::new(sets, ways)),
        BaselineKind::Brrip => Box::new(BrripPolicy::new(sets, ways)),
        BaselineKind::Drrip => Box::new(DrripPolicy::new(sets, ways)),
        BaselineKind::TaDrrip => Box::new(TaDrripPolicy::new(sets, ways, num_cores)),
        BaselineKind::Ship => Box::new(ShipPolicy::new(sets, ways, num_cores)),
        BaselineKind::Eaf => Box::new(EafPolicy::new(sets, ways)),
    }
}

/// Construct a baseline policy wrapped so that distant-priority insertions bypass the LLC
/// (the paper's Figure 6 ablation). LRU has no distant insertions, so wrapping it is a
/// no-op by construction.
pub fn build_baseline_with_bypass(
    kind: BaselineKind,
    llc: &LlcConfig,
    num_cores: usize,
) -> Box<dyn LlcReplacementPolicy> {
    Box::new(BypassDistant::new(build_baseline(kind, llc, num_cores)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::config::SystemConfig;

    #[test]
    fn factory_builds_every_baseline() {
        let cfg = SystemConfig::tiny(4);
        for kind in [
            BaselineKind::Lru,
            BaselineKind::Srrip,
            BaselineKind::Brrip,
            BaselineKind::Drrip,
            BaselineKind::TaDrrip,
            BaselineKind::Ship,
            BaselineKind::Eaf,
        ] {
            let p = build_baseline(kind, &cfg.llc, 4);
            assert!(!p.name().is_empty());
            let wrapped = build_baseline_with_bypass(kind, &cfg.llc, 4);
            assert!(wrapped.name().contains(&p.name()));
        }
    }

    #[test]
    fn paper_set_matches_figure3_lineup() {
        let labels: Vec<&str> = BaselineKind::paper_set()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels, vec!["LRU", "TA-DRRIP", "SHiP", "EAF"]);
    }
}
