//! Bypass wrapper: turn distant-priority insertions into LLC bypasses.
//!
//! The paper's Figure 6 shows that the idea of bypassing distant-reuse cache lines (rather
//! than inserting them at RRPV 3) is not specific to ADAPT: applied to TA-DRRIP and EAF it
//! improves performance, while SHiP (whose few distant predictions are mostly wrong) loses
//! slightly. [`BypassDistant`] wraps any inner policy and converts its
//! `Insert {{ rrpv: 3 }}` decisions into [`InsertionDecision::Bypass`], leaving everything
//! else untouched.

use cache_sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RRPV_MAX,
};

/// Wraps an inner policy and bypasses its distant-priority insertions.
pub struct BypassDistant {
    inner: Box<dyn LlcReplacementPolicy>,
    /// Number of insertions converted into bypasses.
    pub bypassed: u64,
    /// Number of insertions passed through unchanged.
    pub passed_through: u64,
}

impl BypassDistant {
    pub fn new(inner: Box<dyn LlcReplacementPolicy>) -> Self {
        BypassDistant {
            inner,
            bypassed: 0,
            passed_through: 0,
        }
    }

    /// Access the wrapped policy.
    pub fn inner(&self) -> &dyn LlcReplacementPolicy {
        self.inner.as_ref()
    }
}

impl LlcReplacementPolicy for BypassDistant {
    fn name(&self) -> String {
        format!("{}+bypass", self.inner.name())
    }

    fn on_access(&mut self, ctx: &AccessContext) {
        self.inner.on_access(ctx);
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.inner.on_hit(ctx, way);
    }

    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        match self.inner.insertion_decision(ctx) {
            InsertionDecision::Insert { rrpv } if rrpv >= RRPV_MAX => {
                self.bypassed += 1;
                InsertionDecision::Bypass
            }
            other => {
                self.passed_through += 1;
                other
            }
        }
    }

    fn choose_victim(&mut self, ctx: &AccessContext, lines: &[LineView]) -> usize {
        self.inner.choose_victim(ctx, lines)
    }

    fn on_evict(&mut self, ctx: &AccessContext, evicted_block: u64, owner: usize) {
        self.inner.on_evict(ctx, evicted_block, owner);
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        self.inner.on_fill(ctx, way, decision);
    }

    fn on_interval(&mut self) {
        self.inner.on_interval();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrip::{BrripPolicy, SrripPolicy};

    fn ctx(set: usize) -> AccessContext {
        AccessContext {
            core_id: 0,
            pc: 0,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn srrip_insertions_pass_through() {
        let mut p = BypassDistant::new(Box::new(SrripPolicy::new(4, 4)));
        assert_eq!(
            p.insertion_decision(&ctx(0)),
            InsertionDecision::Insert { rrpv: 2 }
        );
        assert_eq!(p.passed_through, 1);
        assert_eq!(p.bypassed, 0);
    }

    #[test]
    fn brrip_distant_insertions_become_bypasses() {
        let mut p = BypassDistant::new(Box::new(BrripPolicy::new(4, 4)));
        let mut bypasses = 0;
        for _ in 0..32 {
            if p.insertion_decision(&ctx(0)).is_bypass() {
                bypasses += 1;
            }
        }
        assert_eq!(bypasses, 31, "BRRIP inserts distant 31 out of 32 times");
        assert_eq!(p.bypassed, 31);
        assert_eq!(p.passed_through, 1);
    }

    #[test]
    fn name_reflects_wrapping() {
        let p = BypassDistant::new(Box::new(SrripPolicy::new(2, 2)));
        assert_eq!(p.name(), "SRRIP+bypass");
    }
}
