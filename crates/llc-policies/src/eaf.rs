//! EAF: the Evicted-Address Filter (Seshadri et al., PACT 2012).
//!
//! EAF keeps a filter of recently evicted block addresses sized to track as many addresses
//! as there are blocks in the cache. On a miss, if the missing block is found in the filter
//! the line was evicted "too early" (it still has reuse), so it is inserted with a
//! near-immediate/intermediate prediction (RRPV 2); otherwise it is inserted with a distant
//! prediction (RRPV 3), bimodally upgraded once every 32 fills as in BRRIP. When the filter
//! fills up it is cleared, which is exactly the behaviour the ADAPT paper leans on when it
//! observes that "the presence of thrashing applications causes the filter to get full
//! frequently", making EAF only partially able to track non-thrashing applications
//! (paper §5.1).
//!
//! The original proposal uses a Bloom filter for storage efficiency; we use an exact set
//! with the same capacity and the same clear-when-full behaviour, which preserves the
//! policy's decisions while being simpler to audit (a Bloom filter only adds false
//! positives). The hardware-cost comparison in Table 2 uses the paper's published EAF cost,
//! not this implementation's.

use std::collections::HashSet;

use cache_sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray, RRPV_MAX,
};

use crate::rrip::{BRRIP_THROTTLE, SRRIP_INSERT_RRPV};

/// The EAF-RRIP policy.
pub struct EafPolicy {
    rrpv: RrpvArray,
    filter: HashSet<u64>,
    capacity: usize,
    throttle: u32,
    /// Number of times the filter filled up and was cleared.
    pub filter_resets: u64,
    /// Insertion outcome counters (for experiment reporting).
    pub near_insertions: u64,
    pub distant_insertions: u64,
}

impl EafPolicy {
    /// `num_sets * ways` gives the cache block count the filter is sized to.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        let capacity = num_sets * ways;
        EafPolicy {
            rrpv: RrpvArray::new(num_sets, ways),
            filter: HashSet::with_capacity(capacity + 1),
            capacity,
            throttle: 0,
            filter_resets: 0,
            near_insertions: 0,
            distant_insertions: 0,
        }
    }

    /// Construct with an explicit filter capacity (used by ablation benches).
    pub fn with_capacity(num_sets: usize, ways: usize, capacity: usize) -> Self {
        let mut p = Self::new(num_sets, ways);
        p.capacity = capacity.max(1);
        p
    }

    /// Current number of addresses tracked by the filter.
    pub fn filter_len(&self) -> usize {
        self.filter.len()
    }
}

impl LlcReplacementPolicy for EafPolicy {
    fn name(&self) -> String {
        "EAF".into()
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
    }

    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        if self.filter.remove(&ctx.block_addr) {
            // Recently evicted and already missed on again: it has reuse.
            self.near_insertions += 1;
            InsertionDecision::insert(SRRIP_INSERT_RRPV)
        } else {
            self.distant_insertions += 1;
            self.throttle = self.throttle.wrapping_add(1);
            if self.throttle.is_multiple_of(BRRIP_THROTTLE) {
                InsertionDecision::insert(SRRIP_INSERT_RRPV)
            } else {
                InsertionDecision::insert(RRPV_MAX)
            }
        }
    }

    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }

    fn on_evict(&mut self, _ctx: &AccessContext, evicted_block: u64, _owner: usize) {
        self.filter.insert(evicted_block);
        if self.filter.len() >= self.capacity {
            self.filter.clear();
            self.filter_resets += 1;
        }
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if let InsertionDecision::Insert { rrpv } = decision {
            if way != usize::MAX {
                self.rrpv.set(ctx.set_index, way, *rrpv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block: u64, set: usize) -> AccessContext {
        AccessContext {
            core_id: 0,
            pc: 0,
            block_addr: block,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn address_absent_from_filter_is_distant_mostly() {
        let mut p = EafPolicy::new(16, 4);
        let mut distant = 0;
        for i in 0..31 {
            if let InsertionDecision::Insert { rrpv: 3 } = p.insertion_decision(&ctx(i, 0)) {
                distant += 1;
            }
        }
        assert!(distant >= 30);
    }

    #[test]
    fn recently_evicted_address_is_reinserted_near() {
        let mut p = EafPolicy::new(16, 4);
        p.on_evict(&ctx(0, 0), 0xabc, 0);
        match p.insertion_decision(&ctx(0xabc, 0)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, SRRIP_INSERT_RRPV),
            other => panic!("unexpected {other:?}"),
        }
        // The address was consumed from the filter: a second miss is distant again.
        match p.insertion_decision(&ctx(0xabc, 0)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, RRPV_MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_clears_when_full() {
        let mut p = EafPolicy::with_capacity(4, 2, 8);
        for i in 0..8u64 {
            p.on_evict(&ctx(0, 0), 1000 + i, 0);
        }
        assert_eq!(p.filter_resets, 1);
        assert_eq!(p.filter_len(), 0);
        // Everything tracked before the reset is forgotten.
        match p.insertion_decision(&ctx(1000, 0)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, RRPV_MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn thrashing_floods_the_filter_and_hides_friendly_lines() {
        // The effect the ADAPT paper describes: a thrashing app's evictions fill the filter,
        // so a friendly app's evicted lines may be forgotten by the time they miss again.
        let mut p = EafPolicy::with_capacity(16, 4, 16);
        p.on_evict(&ctx(0, 0), 1, 0); // friendly line evicted
        for i in 0..15u64 {
            p.on_evict(&ctx(0, 0), 0x1000 + i, 1); // thrasher evictions fill + clear
        }
        assert_eq!(p.filter_resets, 1);
        match p.insertion_decision(&ctx(1, 0)) {
            InsertionDecision::Insert { rrpv } => assert_eq!(rrpv, RRPV_MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insertion_counters_track_decisions() {
        let mut p = EafPolicy::new(4, 4);
        p.on_evict(&ctx(0, 0), 5, 0);
        p.insertion_decision(&ctx(5, 0));
        p.insertion_decision(&ctx(6, 0));
        assert_eq!(p.near_insertions, 1);
        assert_eq!(p.distant_insertions, 1);
    }
}
