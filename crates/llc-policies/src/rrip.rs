//! Static and Bimodal Re-Reference Interval Prediction (SRRIP / BRRIP).
//!
//! SRRIP inserts every line with a "long" re-reference prediction (RRPV 2 on a 2-bit scale)
//! and promotes hitting lines to RRPV 0; it handles recency-friendly and mixed
//! (recency + scan) patterns. BRRIP inserts lines with a "distant" prediction (RRPV 3) and
//! only infrequently (1 in 32) with RRPV 2, which preserves a small fraction of a thrashing
//! working set. DRRIP and TA-DRRIP (see [`crate::drrip`]) choose between the two with set
//! dueling. These are the building blocks referenced throughout the paper.

use cache_sim::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray, RRPV_MAX,
};

/// Insertion RRPV used by SRRIP ("long" re-reference interval).
pub const SRRIP_INSERT_RRPV: u8 = RRPV_MAX - 1;
/// BRRIP inserts at SRRIP's value once every `BRRIP_THROTTLE` fills, distant otherwise.
pub const BRRIP_THROTTLE: u32 = 32;

/// Static RRIP.
pub struct SrripPolicy {
    rrpv: RrpvArray,
}

impl SrripPolicy {
    pub fn new(num_sets: usize, ways: usize) -> Self {
        SrripPolicy {
            rrpv: RrpvArray::new(num_sets, ways),
        }
    }

    /// Read a line's RRPV (test/inspection helper).
    pub fn rrpv_of(&self, set: usize, way: usize) -> u8 {
        self.rrpv.get(set, way)
    }
}

impl LlcReplacementPolicy for SrripPolicy {
    fn name(&self) -> String {
        "SRRIP".into()
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
    }

    fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
        InsertionDecision::insert(SRRIP_INSERT_RRPV)
    }

    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if let InsertionDecision::Insert { rrpv } = decision {
            if way != usize::MAX {
                self.rrpv.set(ctx.set_index, way, *rrpv);
            }
        }
    }
}

/// Bimodal RRIP.
pub struct BrripPolicy {
    rrpv: RrpvArray,
    throttle: u32,
}

impl BrripPolicy {
    pub fn new(num_sets: usize, ways: usize) -> Self {
        BrripPolicy {
            rrpv: RrpvArray::new(num_sets, ways),
            throttle: 0,
        }
    }
}

impl LlcReplacementPolicy for BrripPolicy {
    fn name(&self) -> String {
        "BRRIP".into()
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
    }

    fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
        self.throttle = self.throttle.wrapping_add(1);
        if self.throttle.is_multiple_of(BRRIP_THROTTLE) {
            InsertionDecision::insert(SRRIP_INSERT_RRPV)
        } else {
            InsertionDecision::insert(RRPV_MAX)
        }
    }

    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if let InsertionDecision::Insert { rrpv } = decision {
            if way != usize::MAX {
                self.rrpv.set(ctx.set_index, way, *rrpv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(set: usize) -> AccessContext {
        AccessContext {
            core_id: 0,
            pc: 0,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn srrip_inserts_long_and_promotes_on_hit() {
        let mut p = SrripPolicy::new(4, 4);
        let d = p.insertion_decision(&ctx(0));
        assert_eq!(d, InsertionDecision::Insert { rrpv: 2 });
        p.on_fill(&ctx(0), 1, &d);
        assert_eq!(p.rrpv_of(0, 1), 2);
        p.on_hit(&ctx(0), 1);
        assert_eq!(p.rrpv_of(0, 1), 0);
    }

    #[test]
    fn srrip_victimizes_distant_lines_first() {
        let mut p = SrripPolicy::new(1, 4);
        for w in 0..4 {
            p.on_fill(&ctx(0), w, &InsertionDecision::insert(2));
        }
        p.on_hit(&ctx(0), 0);
        p.on_hit(&ctx(0), 1);
        let lines = vec![
            LineView {
                valid: true,
                owner: 0,
                block_addr: 0,
                dirty: false
            };
            4
        ];
        // Ways 2 and 3 are at RRPV 2; after aging they reach 3 and way 2 is picked first.
        assert_eq!(p.choose_victim(&ctx(0), &lines), 2);
    }

    #[test]
    fn brrip_inserts_distant_except_one_in_thirtytwo() {
        let mut p = BrripPolicy::new(1, 16);
        let mut long = 0;
        let mut distant = 0;
        for _ in 0..320 {
            match p.insertion_decision(&ctx(0)) {
                InsertionDecision::Insert { rrpv: 3 } => distant += 1,
                InsertionDecision::Insert { rrpv: 2 } => long += 1,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert_eq!(long, 10);
        assert_eq!(distant, 310);
    }

    #[test]
    fn brrip_is_deterministic() {
        let run = || {
            let mut p = BrripPolicy::new(1, 16);
            (0..100)
                .map(|_| match p.insertion_decision(&ctx(0)) {
                    InsertionDecision::Insert { rrpv } => rrpv,
                    _ => 255,
                })
                .collect::<Vec<u8>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bypass_fills_do_not_touch_rrpv_state() {
        let mut p = SrripPolicy::new(1, 4);
        p.on_fill(&ctx(0), usize::MAX, &InsertionDecision::insert(0));
        // All lines still at the initial distant value.
        for w in 0..4 {
            assert_eq!(p.rrpv_of(0, w), 3);
        }
    }
}
