//! Monomorphized policy dispatch.
//!
//! [`AnyPolicy`] is an enum over the paper's policy set implementing
//! [`LlcReplacementPolicy`] by delegation. Instantiating the generic
//! `cache_sim::llc::SharedLlc<AnyPolicy>` with it turns every per-access policy callback
//! (`on_access`, `on_hit`, `insertion_decision`, ...) from a virtual call through a
//! `Box<dyn LlcReplacementPolicy>` vtable into a direct, inlinable match — the
//! simulator's hottest dispatch edge. Policies outside this crate (ADAPT, custom test
//! policies) ride the retained dynamic path behind [`AnyPolicy::Custom`], which costs
//! exactly what the old all-boxed design cost.

use cache_sim::replacement::{AccessContext, InsertionDecision, LineView, LlcReplacementPolicy};

use crate::bypass::BypassDistant;
use crate::drrip::{DrripPolicy, TaDrripPolicy};
use crate::eaf::EafPolicy;
use crate::lru::LruPolicy;
use crate::rrip::{BrripPolicy, SrripPolicy};
use crate::ship::ShipPolicy;
use crate::BaselineKind;

/// Enum dispatch over the paper's LLC replacement policies.
///
/// Every baseline of [`BaselineKind`] has a dedicated variant (plus the Figure 6
/// [`BypassDistant`] wrapper); anything else plugs in through [`AnyPolicy::Custom`] with
/// dynamic dispatch. See the module docs for why this exists.
pub enum AnyPolicy {
    /// Classic least-recently-used replacement.
    Lru(LruPolicy),
    /// Static RRIP.
    Srrip(SrripPolicy),
    /// Bimodal RRIP.
    Brrip(BrripPolicy),
    /// Set-dueling DRRIP.
    Drrip(DrripPolicy),
    /// Thread-aware DRRIP (the paper's baseline).
    TaDrrip(TaDrripPolicy),
    /// SHiP-PC signature-based hit prediction.
    Ship(ShipPolicy),
    /// Evicted-address-filter insertion.
    Eaf(EafPolicy),
    /// Any inner policy with distant insertions converted to bypasses (Figure 6).
    BypassDistant(BypassDistant),
    /// The retained dynamic-dispatch path for policies outside the paper set
    /// (ADAPT, experiment-specific variants, test doubles).
    Custom(Box<dyn LlcReplacementPolicy>),
}

macro_rules! each_variant {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::Srrip($p) => $body,
            AnyPolicy::Brrip($p) => $body,
            AnyPolicy::Drrip($p) => $body,
            AnyPolicy::TaDrrip($p) => $body,
            AnyPolicy::Ship($p) => $body,
            AnyPolicy::Eaf($p) => $body,
            AnyPolicy::BypassDistant($p) => $body,
            AnyPolicy::Custom($p) => $body,
        }
    };
}

impl AnyPolicy {
    /// Wrap an arbitrary boxed policy in the dynamic-dispatch variant.
    pub fn custom(policy: Box<dyn LlcReplacementPolicy>) -> Self {
        AnyPolicy::Custom(policy)
    }
}

impl LlcReplacementPolicy for AnyPolicy {
    fn name(&self) -> String {
        each_variant!(self, p => p.name())
    }

    fn on_access(&mut self, ctx: &AccessContext) {
        each_variant!(self, p => p.on_access(ctx))
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        each_variant!(self, p => p.on_hit(ctx, way))
    }

    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        each_variant!(self, p => p.insertion_decision(ctx))
    }

    fn choose_victim(&mut self, ctx: &AccessContext, lines: &[LineView]) -> usize {
        each_variant!(self, p => p.choose_victim(ctx, lines))
    }

    fn on_evict(&mut self, ctx: &AccessContext, evicted_block: u64, owner: usize) {
        each_variant!(self, p => p.on_evict(ctx, evicted_block, owner))
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        each_variant!(self, p => p.on_fill(ctx, way, decision))
    }

    fn on_interval(&mut self) {
        each_variant!(self, p => p.on_interval())
    }
}

impl From<LruPolicy> for AnyPolicy {
    fn from(p: LruPolicy) -> Self {
        AnyPolicy::Lru(p)
    }
}
impl From<SrripPolicy> for AnyPolicy {
    fn from(p: SrripPolicy) -> Self {
        AnyPolicy::Srrip(p)
    }
}
impl From<BrripPolicy> for AnyPolicy {
    fn from(p: BrripPolicy) -> Self {
        AnyPolicy::Brrip(p)
    }
}
impl From<DrripPolicy> for AnyPolicy {
    fn from(p: DrripPolicy) -> Self {
        AnyPolicy::Drrip(p)
    }
}
impl From<TaDrripPolicy> for AnyPolicy {
    fn from(p: TaDrripPolicy) -> Self {
        AnyPolicy::TaDrrip(p)
    }
}
impl From<ShipPolicy> for AnyPolicy {
    fn from(p: ShipPolicy) -> Self {
        AnyPolicy::Ship(p)
    }
}
impl From<EafPolicy> for AnyPolicy {
    fn from(p: EafPolicy) -> Self {
        AnyPolicy::Eaf(p)
    }
}
impl From<BypassDistant> for AnyPolicy {
    fn from(p: BypassDistant) -> Self {
        AnyPolicy::BypassDistant(p)
    }
}
impl From<Box<dyn LlcReplacementPolicy>> for AnyPolicy {
    fn from(p: Box<dyn LlcReplacementPolicy>) -> Self {
        AnyPolicy::Custom(p)
    }
}

/// [`crate::build_baseline`] returning the enum-dispatched form instead of a boxed trait
/// object; the hot path the experiment drivers instantiate [`cache_sim::llc::SharedLlc`]
/// with.
pub fn build_baseline_any(
    kind: BaselineKind,
    llc: &cache_sim::config::LlcConfig,
    num_cores: usize,
) -> AnyPolicy {
    let sets = llc.geometry.num_sets();
    let ways = llc.geometry.ways;
    match kind {
        BaselineKind::Lru => AnyPolicy::Lru(LruPolicy::new(sets, ways)),
        BaselineKind::Srrip => AnyPolicy::Srrip(SrripPolicy::new(sets, ways)),
        BaselineKind::Brrip => AnyPolicy::Brrip(BrripPolicy::new(sets, ways)),
        BaselineKind::Drrip => AnyPolicy::Drrip(DrripPolicy::new(sets, ways)),
        BaselineKind::TaDrrip => AnyPolicy::TaDrrip(TaDrripPolicy::new(sets, ways, num_cores)),
        BaselineKind::Ship => AnyPolicy::Ship(ShipPolicy::new(sets, ways, num_cores)),
        BaselineKind::Eaf => AnyPolicy::Eaf(EafPolicy::new(sets, ways)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::config::SystemConfig;

    fn ctx(set: usize) -> AccessContext {
        AccessContext {
            core_id: 0,
            pc: 0,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn enum_dispatch_matches_boxed_dispatch_per_kind() {
        // Drive the enum-dispatched and boxed forms of every baseline through an
        // identical call sequence; names and decisions must agree call for call.
        let cfg = SystemConfig::tiny(4);
        for kind in [
            BaselineKind::Lru,
            BaselineKind::Srrip,
            BaselineKind::Brrip,
            BaselineKind::Drrip,
            BaselineKind::TaDrrip,
            BaselineKind::Ship,
            BaselineKind::Eaf,
        ] {
            let mut an = build_baseline_any(kind, &cfg.llc, 4);
            let mut boxed = crate::build_baseline(kind, &cfg.llc, 4);
            assert_eq!(an.name(), boxed.name());
            for i in 0..200usize {
                let c = ctx(i % 16);
                an.on_access(&c);
                boxed.on_access(&c);
                let a = an.insertion_decision(&c);
                let b = boxed.insertion_decision(&c);
                assert_eq!(a, b, "{kind:?} diverged at call {i}");
                an.on_fill(&c, i % 4, &a);
                boxed.on_fill(&c, i % 4, &b);
                if i % 7 == 0 {
                    an.on_hit(&c, i % 4);
                    boxed.on_hit(&c, i % 4);
                }
                if i % 31 == 0 {
                    an.on_interval();
                    boxed.on_interval();
                }
            }
        }
    }

    #[test]
    fn custom_variant_delegates() {
        let cfg = SystemConfig::tiny(4);
        let inner = crate::build_baseline(BaselineKind::Lru, &cfg.llc, 4);
        let mut p = AnyPolicy::custom(inner);
        assert_eq!(p.name(), "LRU");
        assert!(!p.insertion_decision(&ctx(0)).is_bypass());
    }

    #[test]
    fn from_impls_cover_the_paper_set() {
        let p: AnyPolicy = LruPolicy::new(4, 4).into();
        assert_eq!(p.name(), "LRU");
        let p: AnyPolicy = BypassDistant::new(Box::new(SrripPolicy::new(4, 4))).into();
        assert_eq!(p.name(), "SRRIP+bypass");
    }
}
