//! Least-recently-used replacement.
//!
//! LRU inserts every line at the MRU position and evicts the least recently touched line.
//! The paper uses LRU as one of the comparison points in Figure 3: its weakness in the
//! large-multicore regime is that thrashing applications' MRU insertions pollute the cache
//! and shorten the most-to-least transition time available to cache-friendly applications.

use cache_sim::replacement::{AccessContext, InsertionDecision, LineView, LlcReplacementPolicy};

/// Classic LRU, implemented with per-line monotonic timestamps.
pub struct LruPolicy {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    pub fn new(num_sets: usize, ways: usize) -> Self {
        LruPolicy {
            ways,
            stamps: vec![0; num_sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }

    /// Recency rank of a way within its set: 0 = MRU, ways-1 = LRU. Exposed for tests.
    pub fn recency_rank(&self, set: usize, way: usize) -> usize {
        let base = set * self.ways;
        let mine = self.stamps[base + way];
        (0..self.ways)
            .filter(|&w| self.stamps[base + w] > mine)
            .count()
    }
}

impl LlcReplacementPolicy for LruPolicy {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.touch(ctx.set_index, way);
    }

    fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
        // MRU insertion; the RRPV value is not used for victimization by this policy but 0
        // communicates "near-immediate reuse" to any observer.
        InsertionDecision::insert(0)
    }

    fn choose_victim(&mut self, ctx: &AccessContext, lines: &[LineView]) -> usize {
        debug_assert_eq!(lines.len(), self.ways);
        let base = ctx.set_index * self.ways;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        victim
    }

    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if way != usize::MAX && !decision.is_bypass() {
            self.touch(ctx.set_index, way);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(set: usize) -> AccessContext {
        AccessContext {
            core_id: 0,
            pc: 0,
            block_addr: 0,
            set_index: set,
            is_demand: true,
            is_write: false,
        }
    }

    #[test]
    fn victim_is_least_recently_used() {
        let mut p = LruPolicy::new(2, 4);
        for w in 0..4 {
            p.on_fill(&ctx(0), w, &InsertionDecision::insert(0));
        }
        p.on_hit(&ctx(0), 0); // way 1 is now the oldest
        let lines = vec![
            LineView {
                valid: true,
                owner: 0,
                block_addr: 0,
                dirty: false
            };
            4
        ];
        assert_eq!(p.choose_victim(&ctx(0), &lines), 1);
    }

    #[test]
    fn insertion_is_mru() {
        let mut p = LruPolicy::new(1, 4);
        assert_eq!(
            p.insertion_decision(&ctx(0)),
            InsertionDecision::Insert { rrpv: 0 }
        );
        for w in 0..4 {
            p.on_fill(&ctx(0), w, &InsertionDecision::insert(0));
        }
        assert_eq!(p.recency_rank(0, 3), 0, "last filled way is MRU");
        assert_eq!(p.recency_rank(0, 0), 3, "first filled way is LRU");
    }

    #[test]
    fn sets_are_independent() {
        let mut p = LruPolicy::new(2, 2);
        p.on_fill(&ctx(0), 0, &InsertionDecision::insert(0));
        p.on_fill(&ctx(1), 0, &InsertionDecision::insert(0));
        p.on_fill(&ctx(1), 1, &InsertionDecision::insert(0));
        p.on_hit(&ctx(1), 0);
        let lines = vec![
            LineView {
                valid: true,
                owner: 0,
                block_addr: 0,
                dirty: false
            };
            2
        ];
        // Set 1's victim is way 1; set 0 is untouched by set 1's activity.
        assert_eq!(p.choose_victim(&ctx(1), &lines), 1);
        assert_eq!(p.choose_victim(&ctx(0), &lines), 1); // never-touched way has stamp 0
    }

    #[test]
    fn name_is_lru() {
        assert_eq!(LruPolicy::new(1, 1).name(), "LRU");
    }
}
