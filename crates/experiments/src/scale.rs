//! Experiment scale selection.
//!
//! The paper simulates 300M instructions per application over 16 MB LLCs and hundreds of
//! workload mixes — hours of simulation per figure on a software model. Three scales are
//! provided:
//!
//! * [`ExperimentScale::Paper`] — the paper's cache sizes, instruction counts and mix
//!   counts (Table 3 / Table 6). Use for a faithful, long-running reproduction.
//! * [`ExperimentScale::Scaled`] — the default: proportionally smaller caches (same
//!   associativities, so the `#cores >= #ways` regime is preserved), shorter traces and
//!   fewer mixes; every figure regenerates in minutes on a laptop.
//! * [`ExperimentScale::Smoke`] — tiny configuration for unit tests and Criterion benches.

use cache_sim::config::SystemConfig;
use serde::{Deserialize, Serialize};
use workloads::StudyKind;

/// Which memory-system model the many-core scaling study runs under. The three
/// variants form the head-to-head reported by `repro scale --memsys`:
///
/// * [`MemSystem::Flat`] — infinite bank bandwidth, no row model, zero NUCA
///   distance. Algebraically identical to the pre-contention model; the
///   bit-identity walls pin this variant.
/// * [`MemSystem::FcfsContended`] — cycle-accounted FCFS bank service (finite
///   ports, bounded queues, MSHR back-pressure), single bank latency.
/// * [`MemSystem::FrFcfsNuca`] — the contended model plus row-buffer-aware
///   FR-FCFS scheduling (distinct row-hit/miss/conflict latencies, starvation
///   cap) and mesh-NUCA distance-dependent LLC bank latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSystem {
    /// Infinite bandwidth, no row model, zero distance.
    Flat,
    /// Cycle-accounted FCFS bank contention, single bank latency.
    FcfsContended,
    /// FR-FCFS row-buffer scheduling plus mesh NUCA on the contended model.
    FrFcfsNuca,
}

impl MemSystem {
    /// Head-to-head order used in reports.
    pub fn all() -> [MemSystem; 3] {
        [
            MemSystem::Flat,
            MemSystem::FcfsContended,
            MemSystem::FrFcfsNuca,
        ]
    }

    /// Column label used in reports and `BENCH_sim.json`.
    pub fn label(&self) -> &'static str {
        match self {
            MemSystem::Flat => "flat",
            MemSystem::FcfsContended => "fcfs",
            MemSystem::FrFcfsNuca => "frfcfs+nuca",
        }
    }
}

/// How big the experiments should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// The paper's cache sizes, instruction counts and mix counts (hours).
    Paper,
    /// Proportionally smaller caches/traces/mix counts; every figure in minutes.
    Scaled,
    /// Tiny configuration for unit tests and Criterion benches (seconds).
    Smoke,
}

impl ExperimentScale {
    /// System configuration for a study at this scale. The many-core scaling studies
    /// (32/48/64 cores) use the core-count-generic geometry with the cycle-accounted
    /// bank contention model enabled; see [`ExperimentScale::scaling_config`].
    pub fn system_config(&self, study: StudyKind) -> SystemConfig {
        let cores = study.num_cores();
        if study.is_scaling() {
            return self.scaling_config(cores, true);
        }
        match self {
            ExperimentScale::Paper => {
                // 4- and 8-core studies use 4 MB / 8 MB LLCs (paper §4.3); the rest 16 MB.
                match study {
                    StudyKind::Cores4 => SystemConfig::paper_with_llc(cores, 4 * 1024 * 1024, 16),
                    StudyKind::Cores8 => SystemConfig::paper_with_llc(cores, 8 * 1024 * 1024, 16),
                    _ => SystemConfig::paper_baseline(cores),
                }
            }
            ExperimentScale::Scaled => match study {
                StudyKind::Cores4 => SystemConfig::scaled_with_llc(cores, 128 * 1024, 16),
                StudyKind::Cores8 => SystemConfig::scaled_with_llc(cores, 256 * 1024, 16),
                _ => SystemConfig::scaled(cores),
            },
            ExperimentScale::Smoke => SystemConfig::tiny(cores),
        }
    }

    /// Core-count-generic configuration for the many-core scaling study: per-core LLC
    /// provisioning, bank/MSHR counts scaled with the core count and — unless `flat` is
    /// requested via `contention = false` — the cycle-accounted bank contention model
    /// (finite service ports, bounded per-bank queues, MSHR back-pressure).
    pub fn scaling_config(&self, cores: usize, contention: bool) -> SystemConfig {
        let mut cfg = match self {
            ExperimentScale::Paper => SystemConfig::paper_many_core(cores),
            ExperimentScale::Scaled => SystemConfig::scaled_many_core(cores),
            ExperimentScale::Smoke => {
                let mut cfg = SystemConfig::tiny(cores);
                cfg.llc.banks = SystemConfig::many_core_llc_banks(cores);
                cfg.llc.contention = cache_sim::config::BankContentionConfig::contended(2, 16);
                cfg.dram.contention = cache_sim::config::BankContentionConfig::contended(2, 16);
                cfg
            }
        };
        if !contention {
            cfg.llc.contention = cache_sim::config::BankContentionConfig::flat();
            cfg.dram.contention = cache_sim::config::BankContentionConfig::flat();
        }
        cfg
    }

    /// Core-count-generic configuration for a given memory-system variant of the
    /// scaling study. `Flat` and `FcfsContended` match `scaling_config(cores, false)`
    /// and `scaling_config(cores, true)` exactly; `FrFcfsNuca` layers the FR-FCFS row
    /// model and a 2-cycle-per-hop mesh NUCA on the contended configuration.
    pub fn scaling_config_memsys(&self, cores: usize, memsys: MemSystem) -> SystemConfig {
        match memsys {
            MemSystem::Flat => self.scaling_config(cores, false),
            MemSystem::FcfsContended => self.scaling_config(cores, true),
            MemSystem::FrFcfsNuca => self.scaling_config(cores, true).with_frfcfs_nuca(2),
        }
    }

    /// System configuration with an explicit LLC size/associativity (Figure 7).
    pub fn system_config_with_llc(
        &self,
        study: StudyKind,
        paper_llc_bytes: u64,
        llc_ways: usize,
    ) -> SystemConfig {
        let cores = study.num_cores();
        match self {
            ExperimentScale::Paper => {
                SystemConfig::paper_with_llc(cores, paper_llc_bytes, llc_ways)
            }
            ExperimentScale::Scaled => {
                // Scale the paper's LLC size by the same 32x factor used by `scaled()`
                // (16 MB -> 512 KB), preserving the paper's "same set count, larger
                // associativity" shape for the 24 MB / 32 MB variants.
                SystemConfig::scaled_with_llc(cores, paper_llc_bytes / 32, llc_ways)
            }
            ExperimentScale::Smoke => {
                let mut cfg = SystemConfig::tiny(cores);
                cfg.llc.geometry = cache_sim::config::CacheGeometry::new(
                    (paper_llc_bytes / 256).max(64 * 1024),
                    llc_ways,
                );
                cfg
            }
        }
    }

    /// Instructions simulated per application.
    pub fn instructions_per_core(&self) -> u64 {
        match self {
            ExperimentScale::Paper => 300_000_000,
            ExperimentScale::Scaled => 3_000_000,
            ExperimentScale::Smoke => 40_000,
        }
    }

    /// Number of workload mixes evaluated for a study.
    pub fn mixes_for(&self, study: StudyKind) -> usize {
        match self {
            ExperimentScale::Paper => study.paper_workload_count(),
            ExperimentScale::Scaled => match study {
                StudyKind::Cores4 => 16,
                StudyKind::Cores8 => 12,
                StudyKind::Cores16 => 12,
                StudyKind::Cores20 | StudyKind::Cores24 => 8,
                StudyKind::Cores32 => 6,
                StudyKind::Cores48 | StudyKind::Cores64 => 4,
                StudyKind::Cores128 | StudyKind::Cores256 => 2,
            },
            ExperimentScale::Smoke => 2,
        }
    }

    /// Seed used for mix generation and trace construction.
    pub fn seed(&self) -> u64 {
        0xADA9_7000 + matches!(self, ExperimentScale::Paper) as u64
    }

    /// Human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentScale::Paper => "paper",
            ExperimentScale::Scaled => "scaled",
            ExperimentScale::Smoke => "smoke",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table3_and_table6() {
        let s = ExperimentScale::Paper;
        let cfg16 = s.system_config(StudyKind::Cores16);
        assert_eq!(cfg16.llc.geometry.size_bytes, 16 * 1024 * 1024);
        assert_eq!(s.instructions_per_core(), 300_000_000);
        assert_eq!(s.mixes_for(StudyKind::Cores16), 60);
        let cfg4 = s.system_config(StudyKind::Cores4);
        assert_eq!(cfg4.llc.geometry.size_bytes, 4 * 1024 * 1024);
        let cfg8 = s.system_config(StudyKind::Cores8);
        assert_eq!(cfg8.llc.geometry.size_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn scaled_and_smoke_configs_validate() {
        for scale in [ExperimentScale::Scaled, ExperimentScale::Smoke] {
            for study in StudyKind::all() {
                scale.system_config(study).validate().unwrap();
                assert!(scale.mixes_for(study) >= 1);
            }
        }
    }

    #[test]
    fn llc_override_keeps_requested_associativity() {
        for scale in [
            ExperimentScale::Paper,
            ExperimentScale::Scaled,
            ExperimentScale::Smoke,
        ] {
            let cfg = scale.system_config_with_llc(StudyKind::Cores20, 24 * 1024 * 1024, 24);
            assert_eq!(cfg.llc.geometry.ways, 24);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn scaled_preserves_cores_vs_ways_regime() {
        let cfg = ExperimentScale::Scaled.system_config(StudyKind::Cores24);
        assert!(cfg.num_cores >= cfg.llc.geometry.ways);
    }

    #[test]
    fn memsys_variants_validate_and_match_their_base_configs() {
        for scale in [ExperimentScale::Scaled, ExperimentScale::Smoke] {
            for cores in [32, 64, 128, 256] {
                let flat = scale.scaling_config_memsys(cores, MemSystem::Flat);
                assert_eq!(flat, scale.scaling_config(cores, false));
                assert!(flat.llc.nuca.is_disabled());
                assert!(!flat.dram.row_model.enabled);

                let fcfs = scale.scaling_config_memsys(cores, MemSystem::FcfsContended);
                assert_eq!(fcfs, scale.scaling_config(cores, true));

                let frfcfs = scale.scaling_config_memsys(cores, MemSystem::FrFcfsNuca);
                frfcfs.validate().unwrap();
                assert!(frfcfs.dram.row_model.enabled);
                assert_eq!(frfcfs.llc.nuca.hop_cycles, 2);
                assert!(frfcfs.nuca_delay(cores - 1, 0) > 0);
            }
        }
        assert_eq!(
            MemSystem::all().map(|m| m.label()).join("/"),
            "flat/fcfs/frfcfs+nuca"
        );
    }

    #[test]
    fn scaling_studies_get_contended_many_core_configs() {
        for scale in [
            ExperimentScale::Paper,
            ExperimentScale::Scaled,
            ExperimentScale::Smoke,
        ] {
            for study in StudyKind::scaling_studies() {
                let cfg = scale.system_config(study);
                cfg.validate().unwrap();
                assert_eq!(cfg.num_cores, study.num_cores());
                assert!(!cfg.llc.contention.is_flat(), "{study:?} must be contended");
                assert!(cfg.llc.contention.mshr_backpressure);
                // The flat variant of the same geometry, for A/B comparisons.
                let flat = scale.scaling_config(study.num_cores(), false);
                assert!(flat.llc.contention.is_flat());
                assert_eq!(flat.llc.geometry, cfg.llc.geometry);
            }
        }
        // The contention regime keeps the paper's #cores >= #ways property.
        let cfg = ExperimentScale::Scaled.system_config(StudyKind::Cores64);
        assert!(cfg.num_cores >= cfg.llc.geometry.ways);
    }
}
