//! Figures 4 and 5: per-application MPKI and IPC impact on 16-core workloads.
//!
//! Figure 4 reports, for each *thrashing* application (Footprint-number >= 16), the change
//! in LLC MPKI and the IPC speedup of LRU, SHiP, EAF, ADAPT_ins and ADAPT_bp32 relative to
//! TA-DRRIP, averaged over the 16-core workloads. Figure 5 reports the same quantities for
//! the non-thrashing applications. The paper's observation: bypassing barely affects the
//! thrashing applications (cactusADM being the exception) while substantially improving the
//! cache-friendly ones.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::render_table;
use crate::runner::{evaluate_policies_on_mixes, MixEvaluation};
use crate::scale::ExperimentScale;

/// Per-benchmark, per-policy aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppPolicyImpact {
    /// Benchmark name (Table 4 identifier).
    pub benchmark: String,
    /// Display name of the policy.
    pub policy: String,
    /// Percent reduction in LLC MPKI relative to TA-DRRIP (positive = fewer misses).
    pub mpki_reduction_percent: f64,
    /// IPC speedup relative to TA-DRRIP.
    pub ipc_speedup: f64,
}

/// Figures 4 (thrashing) and 5 (non-thrashing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure45Result {
    /// Figure 4: impact on thrashing applications.
    pub thrashing: Vec<AppPolicyImpact>,
    /// Figure 5: impact on non-thrashing applications.
    pub non_thrashing: Vec<AppPolicyImpact>,
}

/// The per-application comparison policies (Figure 4/5 legends).
pub fn comparison_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Ship,
        PolicyKind::Eaf,
        PolicyKind::AdaptIns,
        PolicyKind::AdaptBp32,
    ]
}

fn impacts(evals: &[MixEvaluation], thrashing: bool) -> Vec<AppPolicyImpact> {
    use std::collections::HashMap;
    // (benchmark, policy) -> (sum mpki reduction, sum ipc ratio, count)
    let mut acc: HashMap<(String, String), (f64, f64, u64)> = HashMap::new();
    for base in evals.iter().filter(|e| e.policy == PolicyKind::TaDrrip) {
        for policy in comparison_policies() {
            let Some(pol) = evals
                .iter()
                .find(|e| e.policy == policy && e.mix_id == base.mix_id)
            else {
                continue;
            };
            for (b, p) in base.per_app.iter().zip(&pol.per_app) {
                if b.is_thrashing != thrashing || b.ipc <= 0.0 {
                    continue;
                }
                let red = if b.llc_mpki > 0.0 {
                    mc_metrics::mpki_reduction_percent(p.llc_mpki, b.llc_mpki)
                } else {
                    0.0
                };
                let ipc_ratio = p.ipc / b.ipc;
                let e = acc
                    .entry((b.name.clone(), policy.label()))
                    .or_insert((0.0, 0.0, 0));
                e.0 += red;
                e.1 += ipc_ratio;
                e.2 += 1;
            }
        }
    }
    let mut rows: Vec<AppPolicyImpact> = acc
        .into_iter()
        .map(|((benchmark, policy), (red, ipc, n))| AppPolicyImpact {
            benchmark,
            policy,
            mpki_reduction_percent: red / n as f64,
            ipc_speedup: ipc / n as f64,
        })
        .collect();
    rows.sort_by(|a, b| a.benchmark.cmp(&b.benchmark).then(a.policy.cmp(&b.policy)));
    rows
}

/// Run Figures 4 and 5 from a shared 16-core sweep.
pub fn run(scale: ExperimentScale) -> Figure45Result {
    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let mut policies = vec![PolicyKind::TaDrrip];
    policies.extend(comparison_policies());
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );
    Figure45Result {
        thrashing: impacts(&evals, true),
        non_thrashing: impacts(&evals, false),
    }
}

fn render_panel(title: &str, rows: &[AppPolicyImpact]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&render_table(
        &["benchmark", "policy", "MPKI reduction %", "IPC speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.policy.clone(),
                    format!("{:.1}", r.mpki_reduction_percent),
                    format!("{:.3}", r.ipc_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

/// Render both figures.
pub fn render(r: &Figure45Result) -> String {
    let mut out = render_panel(
        "Figure 4: MPKI / IPC impact on thrashing applications (vs TA-DRRIP)",
        &r.thrashing,
    );
    out.push('\n');
    out.push_str(&render_panel(
        "Figure 5: MPKI / IPC impact on non-thrashing applications (vs TA-DRRIP)",
        &r.non_thrashing,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_both_groups_for_every_policy() {
        let r = run(ExperimentScale::Smoke);
        assert!(!r.thrashing.is_empty());
        assert!(!r.non_thrashing.is_empty());
        let policies: std::collections::HashSet<&str> =
            r.thrashing.iter().map(|x| x.policy.as_str()).collect();
        assert!(policies.contains("ADAPT_bp32"));
        assert!(policies.contains("LRU"));
        let text = render(&r);
        assert!(text.contains("Figure 4"));
        assert!(text.contains("Figure 5"));
    }
}
