//! Figure 3: weighted speedup of ADAPT and prior policies on 16-core workloads.
//!
//! The paper's headline result: over 60 16-core workloads on a 16 MB / 16-way LLC,
//! ADAPT_bp32 consistently outperforms TA-DRRIP (up to 7%, 4.7% on average), ADAPT_ins and
//! EAF are comparable to each other, and LRU/SHiP hover around (or slightly below) the
//! TA-DRRIP baseline. Results are presented as an s-curve: per-workload speedups relative
//! to TA-DRRIP, sorted ascending.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, pct, render_series_csv, render_table};
use crate::runner::{evaluate_policies_on_mixes, speedups_over_baseline, MixEvaluation};
use crate::scale::ExperimentScale;

/// One policy's s-curve plus its average speedup over the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCurve {
    /// Display name of the policy.
    pub policy: String,
    /// Per-workload speedups over TA-DRRIP, sorted ascending (the s-curve).
    pub s_curve: Vec<f64>,
    /// Arithmetic mean of the per-workload speedups.
    pub mean_speedup: f64,
    /// Best per-workload speedup.
    pub max_speedup: f64,
}

/// Figure 3 (and, reused by Figure 8, any per-study s-curve panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SCurveResult {
    /// Cores in the study (= applications per mix).
    pub study_cores: usize,
    /// Number of workload mixes evaluated.
    pub workloads: usize,
    /// Total replay wraps reported by the sweep engine. Zero for synthetic sweeps and
    /// for corpora whose capture budget covered every run; non-zero means some corpus
    /// stream was re-executed (the paper's methodology for early-finishing
    /// applications) because the capture budget was smaller than the run, so results
    /// may differ from a live-generator sweep. See `SweepOutcome::mix_wraps` and
    /// `docs/repro-guide.md`.
    pub replay_wraps: u64,
    /// One curve per non-baseline policy.
    pub curves: Vec<PolicyCurve>,
}

/// Evaluate the Figure 3/8 policy lineup on one study and build s-curves.
pub fn run_study(scale: ExperimentScale, study: StudyKind) -> SCurveResult {
    let config = scale.system_config(study);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let mut policies = vec![PolicyKind::TaDrrip];
    policies.extend(PolicyKind::figure3_lineup());
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );
    SCurveResult {
        study_cores: study.num_cores(),
        workloads: mixes.len(),
        replay_wraps: 0, // synthetic generators never wrap
        curves: build_curves(&evals),
    }
}

/// Build per-policy curves (relative to TA-DRRIP) from a finished evaluation sweep.
pub fn build_curves(evals: &[MixEvaluation]) -> Vec<PolicyCurve> {
    PolicyKind::figure3_lineup()
        .into_iter()
        .map(|p| {
            let speedups = speedups_over_baseline(evals, p, PolicyKind::TaDrrip);
            let mut sorted = speedups.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN speedups"));
            PolicyCurve {
                policy: p.label(),
                mean_speedup: amean(&speedups),
                max_speedup: sorted.last().copied().unwrap_or(0.0),
                s_curve: sorted,
            }
        })
        .collect()
}

/// The 16-core headline experiment.
pub fn run(scale: ExperimentScale) -> SCurveResult {
    run_study(scale, StudyKind::Cores16)
}

/// Render the summary table plus the s-curve series as CSV.
pub fn render(r: &SCurveResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3: weighted speedup over TA-DRRIP ({}-core, {} workloads)\n",
        r.study_cores, r.workloads
    ));
    if r.replay_wraps > 0 {
        out.push_str(&format!(
            "note: corpus replay wrapped {} time(s) — capture budget smaller than the \
             run; results follow re-execution semantics (docs/repro-guide.md)\n",
            r.replay_wraps
        ));
    }
    out.push_str(&render_table(
        &["policy", "mean speedup", "mean gain", "max speedup"],
        &r.curves
            .iter()
            .map(|c| {
                vec![
                    c.policy.clone(),
                    format!("{:.4}", c.mean_speedup),
                    pct(c.mean_speedup - 1.0),
                    format!("{:.4}", c.max_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nS-curve series (per-workload speedup over TA-DRRIP, sorted):\n");
    out.push_str(&render_series_csv(
        &r.curves
            .iter()
            .map(|c| (c.policy.clone(), c.s_curve.clone()))
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_a_curve_per_policy() {
        let r = run(ExperimentScale::Smoke);
        assert_eq!(r.study_cores, 16);
        assert_eq!(r.curves.len(), 5);
        for c in &r.curves {
            assert_eq!(c.s_curve.len(), r.workloads);
            assert!(c.mean_speedup > 0.0);
            assert!(
                c.s_curve.windows(2).all(|w| w[0] <= w[1]),
                "s-curve must be sorted"
            );
        }
        let text = render(&r);
        assert!(text.contains("ADAPT_bp32"));
        assert!(text.contains("workload_index"));
    }
}
