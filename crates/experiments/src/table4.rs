//! Table 4: benchmark classification — paper values vs. values measured on our substrate.
//!
//! For every synthetic benchmark the experiment measures:
//!
//! * `Fpn(A)` — Footprint-number with every LLC set monitored, computed by streaming the
//!   benchmark's demand-address stream into the ADAPT monitor (footprint is a property of
//!   the address stream: repeated accesses never add uniqueness, so monitoring the raw
//!   stream and monitoring LLC accesses agree over a sufficiently long interval);
//! * `Fpn(S)` — the same with the paper's 40-set sampling;
//! * `L2-MPKI` — from a standalone run of the benchmark on the simulator;
//! * the memory-intensity class obtained by applying Table 5 to the measured values.
//!
//! The render compares each measured value with the paper's published value.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use adapt_core::{AdaptConfig, FootprintMonitor};
use cache_sim::addr::block_of;
use cache_sim::single::profile_alone;
use cache_sim::trace::TraceSource;
use workloads::{all_benchmarks, classify, MemIntensity, StudyKind};

use crate::report::render_table;
use crate::scale::ExperimentScale;

/// One row of the regenerated Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// Footprint-number over all sets as published in the paper.
    pub paper_fpn_all: f64,
    /// Footprint-number over all sets measured on our synthetic model.
    pub measured_fpn_all: f64,
    /// Footprint-number over the 40 sampled sets as published.
    pub paper_fpn_sampled: f64,
    /// Footprint-number over the sampled sets measured on our model.
    pub measured_fpn_sampled: f64,
    /// L2 MPKI as published.
    pub paper_l2_mpki: f64,
    /// L2 MPKI measured on our model.
    pub measured_l2_mpki: f64,
    /// Memory-intensity class as published.
    pub paper_class: String,
    /// Memory-intensity class our classifier assigns.
    pub measured_class: String,
}

/// Table 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// One row per Table 4 benchmark.
    pub rows: Vec<Table4Row>,
}

/// Measure a benchmark's Footprint-number by streaming its address stream into the monitor.
fn measure_footprint(
    benchmark: &workloads::BenchmarkSpec,
    llc_sets: usize,
    all_sets: bool,
    accesses: u64,
    interval_accesses: u64,
    seed: u64,
) -> f64 {
    let config = if all_sets {
        AdaptConfig::all_sets_profiler()
    } else {
        AdaptConfig::paper()
    };
    let mut monitor = FootprintMonitor::new(config, llc_sets, 1);
    let mut trace = benchmark.trace(0, llc_sets, seed);
    let mut since_interval = 0u64;
    for _ in 0..accesses {
        let a = trace.next_access();
        let block = block_of(a.addr);
        monitor.observe(0, block.set_index(llc_sets), block.0);
        since_interval += 1;
        if since_interval >= interval_accesses {
            monitor.end_interval();
            since_interval = 0;
        }
    }
    if monitor.intervals() == 0 {
        monitor.end_interval();
    }
    monitor.mean_footprint_of(0)
}

/// Regenerate Table 4.
pub fn run(scale: ExperimentScale) -> Table4Result {
    let config = scale.system_config(StudyKind::Cores16);
    let llc_sets = config.llc.geometry.num_sets();
    // Enough accesses for several interval boundaries over the sampled sets.
    let (accesses, interval) = match scale {
        ExperimentScale::Paper => (8_000_000u64, 2_000_000u64),
        ExperimentScale::Scaled => (1_500_000, 400_000),
        ExperimentScale::Smoke => (200_000, 60_000),
    };
    let instructions = scale.instructions_per_core();

    let mut rows: Vec<Table4Row> = all_benchmarks()
        .par_iter()
        .map(|b| {
            let fpn_all = measure_footprint(b, llc_sets, true, accesses, interval, scale.seed());
            let fpn_sampled =
                measure_footprint(b, llc_sets, false, accesses, interval, scale.seed());
            let profile = profile_alone(
                &config,
                Box::new(b.trace(0, llc_sets, scale.seed())),
                instructions,
            );
            let measured_class: MemIntensity = classify(fpn_all, profile.l2_mpki);
            Table4Row {
                name: b.name.to_string(),
                paper_fpn_all: b.paper_fpn_all,
                measured_fpn_all: fpn_all,
                paper_fpn_sampled: b.paper_fpn_sampled,
                measured_fpn_sampled: fpn_sampled,
                paper_l2_mpki: b.paper_l2_mpki,
                measured_l2_mpki: profile.l2_mpki,
                paper_class: b.paper_class.label().to_string(),
                measured_class: measured_class.label().to_string(),
            }
        })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Table4Result { rows }
}

/// Render the paper-vs-measured comparison.
pub fn render(r: &Table4Result) -> String {
    let mut out = String::from("Table 4: benchmark classification (paper vs measured)\n");
    out.push_str(&render_table(
        &[
            "benchmark",
            "Fpn(A) paper",
            "Fpn(A) meas",
            "Fpn(S) paper",
            "Fpn(S) meas",
            "MPKI paper",
            "MPKI meas",
            "class paper",
            "class meas",
        ],
        &r.rows
            .iter()
            .map(|row| {
                vec![
                    row.name.clone(),
                    format!("{:.2}", row.paper_fpn_all),
                    format!("{:.2}", row.measured_fpn_all),
                    format!("{:.2}", row.paper_fpn_sampled),
                    format!("{:.2}", row.measured_fpn_sampled),
                    format!("{:.2}", row.paper_l2_mpki),
                    format!("{:.2}", row.measured_l2_mpki),
                    row.paper_class.clone(),
                    row.measured_class.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark_by_name;

    #[test]
    fn footprint_measurement_tracks_paper_classes_for_extremes() {
        // A small-footprint benchmark and a streaming one must land on opposite ends.
        let calc = benchmark_by_name("calc").unwrap();
        let lbm = benchmark_by_name("lbm").unwrap();
        let sets = 256;
        let f_calc = measure_footprint(calc, sets, true, 200_000, 60_000, 1);
        let f_lbm = measure_footprint(lbm, sets, true, 200_000, 60_000, 1);
        assert!(f_calc < 8.0, "calc footprint {f_calc}");
        assert!(f_lbm >= 16.0, "lbm footprint {f_lbm}");
    }

    #[test]
    fn sampled_and_all_sets_measurements_agree_for_uniform_benchmarks() {
        let gob = benchmark_by_name("gob").unwrap();
        let sets = 1024;
        let all = measure_footprint(gob, sets, true, 400_000, 100_000, 1);
        let sampled = measure_footprint(gob, sets, false, 400_000, 100_000, 1);
        assert!((all - sampled).abs() <= 4.0, "all={all} sampled={sampled}");
    }

    #[test]
    fn smoke_table_has_a_row_per_benchmark() {
        let r = run(ExperimentScale::Smoke);
        assert_eq!(r.rows.len(), all_benchmarks().len());
        let text = render(&r);
        assert!(text.contains("benchmark"));
        assert!(text.contains("lbm"));
    }
}
