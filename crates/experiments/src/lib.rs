//! # experiments
//!
//! Drivers that regenerate every figure and table of the ADAPT paper on top of the
//! simulator substrate (`cache-sim`), the baseline policies (`llc-policies`), ADAPT itself
//! (`adapt-core`), the synthetic workloads (`workloads`) and the multi-core metrics
//! (`mc-metrics`).
//!
//! Each `figure*` / `table*` module exposes a `run(&ExperimentScale) -> ...Result` function
//! returning plain data plus a `render` helper that prints the same rows/series the paper
//! reports. The `repro` binary (in `src/bin/repro.rs`) wires them to a command-line
//! interface; the `adapt-bench` crate wraps them in Criterion benchmarks.
//!
//! Every sweep runs on the corpus-backed engine in [`runner`]: each workload mix's access
//! streams are materialized exactly once (shared in-memory capture, or an on-disk
//! [`trace_io::Corpus`] via `repro corpus` / `repro sweep`) and the (policy × mix) grid
//! fans out across rayon workers with deterministic result ordering — see
//! `docs/architecture.md` for the full data-flow walkthrough.
//!
//! Absolute performance numbers differ from the paper (our substrate is an approximate
//! trace-driven simulator fed with synthetic workloads, not BADCO running SPEC), so the
//! reproduction target is the *shape* of every result: which policy wins, by roughly what
//! factor, and where the crossovers lie. `EXPERIMENTS.md` records paper-vs-measured values
//! for every experiment.

#![warn(missing_docs)]

pub mod ablation;
pub mod figure1;
pub mod figure3;
pub mod figure45;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod policies;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scaling;
pub mod table2;
pub mod table4;
pub mod table7;

pub use policies::PolicyKind;
pub use runner::{
    evaluate_mix, evaluate_policies_on_corpus, evaluate_policies_on_mixes,
    evaluate_policies_serial, sweep_policies_on_corpus, sweep_policies_on_sources, MixEvaluation,
    MixSource, PerAppOutcome, SweepOutcome,
};
pub use scale::{ExperimentScale, MemSystem};
