//! Many-core scaling study: the paper's policy comparison beyond 24 cores.
//!
//! The paper stops at 24 cores ("the number of cores is equal to or greater than the
//! associativity" being the regime of interest); this module extends the comparison to
//! 32/48/64 cores on the core-count-generic geometry of
//! [`cache_sim::config::SystemConfig::scaled_many_core`] with the cycle-accounted bank
//! contention model of `cache_sim::bank` enabled — finite service ports, bounded
//! per-bank queues and MSHR back-pressure — so policies are differentiated not only by
//! hit rates but by the bank pressure they induce. Following fairness-oriented LLC
//! management work (LFOC/LFOC+, Saez et al.), each policy is scored on three axes:
//!
//! * **throughput** — mean weighted speedup over the workload mixes, plus the geometric
//!   mean of the per-mix speedup over TA-DRRIP (the paper's headline presentation),
//! * **fairness** — mean min/max ratio of normalized IPCs ([`mc_metrics::fairness`]),
//! * **bank-stall share** — the fraction of LLC bank time requests spent queued or
//!   refused admission rather than in service ([`MixEvaluation::bank_stall_share`]).
//!
//! Runs go through the corpus-backed parallel sweep engine
//! ([`runner::sweep_policies_on_sources`]) and are bit-identical to the serial
//! reference, which the tests enforce at 64 cores. `repro scale --cores 32,48,64`
//! drives this from the command line; `--flat` re-runs the same geometry under the
//! seed's latency-only banking for an A/B comparison.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, gmean, pct, render_table};
use crate::runner::{self, MixEvaluation, MixSource};
use crate::scale::{ExperimentScale, MemSystem};

/// One policy's scores at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyScalingRow {
    /// Display name of the policy.
    pub policy: String,
    /// Arithmetic mean of the per-mix weighted speedups (raw throughput).
    pub mean_weighted_speedup: f64,
    /// Geometric mean of the per-mix weighted-speedup ratios over TA-DRRIP.
    pub speedup_over_baseline: f64,
    /// Arithmetic mean of the per-mix fairness scores (min/max normalized IPC).
    pub mean_fairness: f64,
    /// Arithmetic mean of the per-mix LLC bank-stall shares.
    pub mean_bank_stall_share: f64,
    /// Arithmetic mean of the per-mix per-core stall imbalance (max/mean attributed
    /// stall cycles; 1.0 = balanced, 0.0 = no memory-system stalls at all).
    pub mean_stall_imbalance: f64,
}

/// Attributed memory-system stall cycles of one core, aggregated over a study's
/// baseline-policy runs (the per-core view `cache_sim::stats::CoreStallAttribution`
/// provides per run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreStallSummary {
    /// Core index.
    pub core: usize,
    /// Cycles queued behind busy LLC bank ports.
    pub llc_queue_cycles: u64,
    /// Cycles refused admission at full LLC bank queues.
    pub llc_admission_cycles: u64,
    /// Cycles stalled on a full LLC MSHR file.
    pub mshr_stall_cycles: u64,
    /// Cycles queued behind busy DRAM banks (including admission refusals).
    pub dram_stall_cycles: u64,
}

impl CoreStallSummary {
    /// Total attributed stall cycles for this core.
    pub fn total(&self) -> u64 {
        self.llc_queue_cycles
            + self.llc_admission_cycles
            + self.mshr_stall_cycles
            + self.dram_stall_cycles
    }
}

/// Aggregated occupancy/stall picture of one LLC bank across a study's runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankSummary {
    /// Bank index.
    pub bank: usize,
    /// Requests served, summed over the study's baseline-policy runs.
    pub requests: u64,
    /// Bank utilization: busy cycles as a share of the summed run lengths.
    pub busy_share: f64,
    /// Share of the bank's request time spent stalled rather than in service.
    pub stall_share: f64,
    /// Peak simultaneous waiters observed at this bank across the runs.
    pub peak_waiting: usize,
}

/// The study's results at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Cores (= applications per mix).
    pub cores: usize,
    /// LLC banks in the configuration.
    pub banks: usize,
    /// Workload mixes evaluated.
    pub workloads: usize,
    /// One row per policy, baseline (TA-DRRIP) first.
    pub rows: Vec<PolicyScalingRow>,
    /// Per-bank occupancy/stall metrics aggregated over the baseline policy's runs.
    pub per_bank: Vec<BankSummary>,
    /// The most-stalled cores (top 8 by attributed stall cycles) aggregated over the
    /// baseline policy's runs, descending; empty when nothing stalled.
    pub top_stalled_cores: Vec<CoreStallSummary>,
    /// Max/mean imbalance of the aggregated per-core stall cycles (see
    /// [`mc_metrics::stall_imbalance`]).
    pub stall_imbalance: f64,
    /// Total replay wraps reported by the sweep engine (0 for synthetic runs).
    pub replay_wraps: u64,
}

/// The full scaling study: one [`ScalingPoint`] per requested core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingStudyResult {
    /// Scale the study ran at (`smoke`/`scaled`/`paper`).
    pub scale: String,
    /// False when `--flat` disabled the contention model for an A/B run.
    pub contention: bool,
    /// One entry per core count, in request order.
    pub points: Vec<ScalingPoint>,
}

/// The policies compared by the study: the TA-DRRIP baseline plus the Figure 3 lineup.
pub fn scaling_lineup() -> Vec<PolicyKind> {
    let mut policies = vec![PolicyKind::TaDrrip];
    policies.extend(PolicyKind::figure3_lineup());
    policies
}

/// Run the study at one core count. `mixes_override` bounds the workload count (tests
/// and the `--mixes` flag); `contention` selects the cycle-accounted model vs. the flat
/// seed banking on the same geometry.
pub fn run_point(
    scale: ExperimentScale,
    study: StudyKind,
    contention: bool,
    mixes_override: Option<usize>,
) -> ScalingPoint {
    let config = scale.scaling_config(study.num_cores(), contention);
    let count = mixes_override
        .unwrap_or_else(|| scale.mixes_for(study))
        .max(1);
    let mixes = generate_mixes(study, count, scale.seed());
    let sources: Vec<MixSource> = mixes.iter().cloned().map(MixSource::synthetic).collect();
    let policies = scaling_lineup();
    let outcome = runner::sweep_policies_on_sources(
        &config,
        &sources,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    )
    .expect("synthetic sweeps cannot fail to materialize");
    build_point(&config, mixes.len(), &policies, &outcome)
}

fn build_point(
    config: &cache_sim::config::SystemConfig,
    workloads: usize,
    policies: &[PolicyKind],
    outcome: &runner::SweepOutcome,
) -> ScalingPoint {
    let evals = &outcome.evaluations;
    let baseline = policies[0];
    let rows = policies
        .iter()
        .map(|&p| {
            let of_policy: Vec<&MixEvaluation> = evals.iter().filter(|e| e.policy == p).collect();
            let speedups = runner::speedups_over_baseline(evals, p, baseline);
            PolicyScalingRow {
                policy: p.label(),
                mean_weighted_speedup: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.weighted_speedup())
                        .collect::<Vec<_>>(),
                ),
                speedup_over_baseline: gmean(&speedups),
                mean_fairness: amean(&of_policy.iter().map(|e| e.fairness()).collect::<Vec<_>>()),
                mean_bank_stall_share: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.bank_stall_share())
                        .collect::<Vec<_>>(),
                ),
                mean_stall_imbalance: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.stall_imbalance())
                        .collect::<Vec<_>>(),
                ),
            }
        })
        .collect();

    // Per-bank aggregation over the baseline policy's runs.
    let base_evals: Vec<&MixEvaluation> = evals.iter().filter(|e| e.policy == baseline).collect();
    let total_cycles: u64 = base_evals.iter().map(|e| e.final_cycle).sum();
    let per_bank = (0..config.llc.banks)
        .map(|bank| {
            let mut requests = 0;
            let mut busy = 0;
            let mut stall = 0;
            let mut peak = 0;
            for e in &base_evals {
                let b = &e.llc_banks[bank];
                requests += b.requests;
                busy += b.busy_cycles;
                stall += b.stall_cycles();
                peak = peak.max(b.peak_waiting);
            }
            BankSummary {
                bank,
                requests,
                busy_share: if total_cycles == 0 {
                    0.0
                } else {
                    busy as f64 / total_cycles as f64
                },
                stall_share: cache_sim::bank::stall_share(stall, busy),
                peak_waiting: peak,
            }
        })
        .collect();

    // Per-core stall attribution aggregated over the baseline policy's runs.
    let mut core_totals = vec![
        CoreStallSummary {
            core: 0,
            llc_queue_cycles: 0,
            llc_admission_cycles: 0,
            mshr_stall_cycles: 0,
            dram_stall_cycles: 0,
        };
        config.num_cores
    ];
    for (core, summary) in core_totals.iter_mut().enumerate() {
        summary.core = core;
        for e in &base_evals {
            if let Some(c) = e.core_stalls.get(core) {
                summary.llc_queue_cycles += c.llc_queue_cycles;
                summary.llc_admission_cycles += c.llc_admission_cycles;
                summary.mshr_stall_cycles += c.mshr_stall_cycles;
                summary.dram_stall_cycles += c.dram_queue_cycles + c.dram_admission_cycles;
            }
        }
    }
    let stall_imbalance =
        mc_metrics::stall_imbalance(&core_totals.iter().map(|c| c.total()).collect::<Vec<_>>());
    let mut top_stalled_cores: Vec<CoreStallSummary> =
        core_totals.into_iter().filter(|c| c.total() > 0).collect();
    top_stalled_cores.sort_by(|a, b| b.total().cmp(&a.total()).then(a.core.cmp(&b.core)));
    top_stalled_cores.truncate(8);

    ScalingPoint {
        cores: config.num_cores,
        banks: config.llc.banks,
        workloads,
        rows,
        per_bank,
        top_stalled_cores,
        stall_imbalance,
        replay_wraps: outcome.total_replay_wraps(),
    }
}

/// Run the study over `core_counts` (each must name a known study; 32/48/64 are the
/// intended values, but any Table 6 core count works for comparison points).
pub fn run(
    scale: ExperimentScale,
    core_counts: &[usize],
    contention: bool,
    mixes_override: Option<usize>,
) -> Result<ScalingStudyResult, String> {
    let points = core_counts
        .iter()
        .map(|&cores| {
            let study = StudyKind::by_cores(cores).ok_or_else(|| {
                format!("no study with {cores} cores (4/8/16/20/24/32/48/64/128/256)")
            })?;
            Ok(run_point(scale, study, contention, mixes_override))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ScalingStudyResult {
        scale: scale.label().to_string(),
        contention,
        points,
    })
}

/// Render the study as text tables (one policy table + one bank table per core count).
pub fn render(r: &ScalingStudyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Many-core scaling study ({} scale, {} banking)\n",
        r.scale,
        if r.contention {
            "cycle-accounted contended"
        } else {
            "flat latency-only"
        }
    ));
    for p in &r.points {
        out.push_str(&format!(
            "\n== {} cores, {} LLC banks, {} workloads",
            p.cores, p.banks, p.workloads
        ));
        if p.replay_wraps > 0 {
            out.push_str(&format!(", replay wraps {}", p.replay_wraps));
        }
        out.push_str(" ==\n");
        out.push_str(&render_table(
            &[
                "policy",
                "wt.speedup",
                "vs TA-DRRIP",
                "fairness",
                "bank-stall share",
                "stall imbalance",
            ],
            &p.rows
                .iter()
                .map(|row| {
                    vec![
                        row.policy.clone(),
                        format!("{:.4}", row.mean_weighted_speedup),
                        pct(row.speedup_over_baseline - 1.0),
                        format!("{:.4}", row.mean_fairness),
                        format!("{:.4}", row.mean_bank_stall_share),
                        format!("{:.2}", row.mean_stall_imbalance),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str("\nPer-bank occupancy/stalls (TA-DRRIP runs):\n");
        out.push_str(&render_table(
            &[
                "bank",
                "requests",
                "busy share",
                "stall share",
                "peak waiting",
            ],
            &p.per_bank
                .iter()
                .map(|b| {
                    vec![
                        b.bank.to_string(),
                        b.requests.to_string(),
                        format!("{:.4}", b.busy_share),
                        format!("{:.4}", b.stall_share),
                        b.peak_waiting.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        if !p.top_stalled_cores.is_empty() {
            out.push_str(&format!(
                "\nMost-stalled cores (TA-DRRIP runs, stall imbalance {:.2}):\n",
                p.stall_imbalance
            ));
            out.push_str(&render_table(
                &[
                    "core",
                    "llc queue",
                    "llc admission",
                    "mshr",
                    "dram",
                    "total",
                ],
                &p.top_stalled_cores
                    .iter()
                    .map(|c| {
                        vec![
                            c.core.to_string(),
                            c.llc_queue_cycles.to_string(),
                            c.llc_admission_cycles.to_string(),
                            c.mshr_stall_cycles.to_string(),
                            c.dram_stall_cycles.to_string(),
                            c.total().to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
        }
    }
    out
}

/// One (memory system, policy) cell of the head-to-head study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemsysPolicyRow {
    /// Memory-system label (`flat` / `fcfs` / `frfcfs+nuca`).
    pub memsys: String,
    /// Display name of the policy.
    pub policy: String,
    /// Arithmetic mean of the per-mix weighted speedups.
    pub mean_weighted_speedup: f64,
    /// Geometric mean of the per-mix weighted-speedup ratios over TA-DRRIP under the
    /// *same* memory system (each variant is its own baseline frame).
    pub speedup_over_baseline: f64,
    /// Arithmetic mean of the per-mix fairness scores.
    pub mean_fairness: f64,
    /// Arithmetic mean of the per-mix LLC bank-stall shares.
    pub mean_bank_stall_share: f64,
    /// Arithmetic mean of the per-mix per-core stall imbalance.
    pub mean_stall_imbalance: f64,
}

/// The memory-system head-to-head at one core count: every policy of the lineup
/// evaluated under every [`MemSystem`] variant on the same mixes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemsysPoint {
    /// Cores (= applications per mix).
    pub cores: usize,
    /// Workload mixes evaluated per variant.
    pub workloads: usize,
    /// One row per (memory system, policy), grouped by memory system in
    /// [`MemSystem::all`] order, baseline policy first within each group.
    pub rows: Vec<MemsysPolicyRow>,
}

/// The full memory-system head-to-head study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemsysStudyResult {
    /// Scale the study ran at.
    pub scale: String,
    /// One entry per core count, in request order.
    pub points: Vec<MemsysPoint>,
}

/// Run the memory-system head-to-head at one core count: the scaling lineup under
/// flat, FCFS-contended and FR-FCFS+NUCA memory systems on identical mixes, so any
/// ranking shift between rows is attributable to the memory model alone.
pub fn run_memsys_point(
    scale: ExperimentScale,
    study: StudyKind,
    mixes_override: Option<usize>,
) -> MemsysPoint {
    let count = mixes_override
        .unwrap_or_else(|| scale.mixes_for(study))
        .max(1);
    let mixes = generate_mixes(study, count, scale.seed());
    let sources: Vec<MixSource> = mixes.iter().cloned().map(MixSource::synthetic).collect();
    let policies = scaling_lineup();
    let baseline = policies[0];
    let mut rows = Vec::new();
    for memsys in MemSystem::all() {
        let config = scale.scaling_config_memsys(study.num_cores(), memsys);
        let outcome = runner::sweep_policies_on_sources(
            &config,
            &sources,
            &policies,
            scale.instructions_per_core(),
            scale.seed(),
        )
        .expect("synthetic sweeps cannot fail to materialize");
        let evals = &outcome.evaluations;
        for &p in &policies {
            let of_policy: Vec<&MixEvaluation> = evals.iter().filter(|e| e.policy == p).collect();
            rows.push(MemsysPolicyRow {
                memsys: memsys.label().to_string(),
                policy: p.label(),
                mean_weighted_speedup: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.weighted_speedup())
                        .collect::<Vec<_>>(),
                ),
                speedup_over_baseline: gmean(&runner::speedups_over_baseline(evals, p, baseline)),
                mean_fairness: amean(&of_policy.iter().map(|e| e.fairness()).collect::<Vec<_>>()),
                mean_bank_stall_share: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.bank_stall_share())
                        .collect::<Vec<_>>(),
                ),
                mean_stall_imbalance: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.stall_imbalance())
                        .collect::<Vec<_>>(),
                ),
            });
        }
    }
    MemsysPoint {
        cores: study.num_cores(),
        workloads: mixes.len(),
        rows,
    }
}

/// Run the memory-system head-to-head over `core_counts`.
pub fn run_memsys(
    scale: ExperimentScale,
    core_counts: &[usize],
    mixes_override: Option<usize>,
) -> Result<MemsysStudyResult, String> {
    let points = core_counts
        .iter()
        .map(|&cores| {
            let study = StudyKind::by_cores(cores).ok_or_else(|| {
                format!("no study with {cores} cores (4/8/16/20/24/32/48/64/128/256)")
            })?;
            Ok(run_memsys_point(scale, study, mixes_override))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(MemsysStudyResult {
        scale: scale.label().to_string(),
        points,
    })
}

/// Render the memory-system head-to-head as one table per core count.
pub fn render_memsys(r: &MemsysStudyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Memory-system head-to-head ({} scale): flat vs FCFS-contended vs FR-FCFS+NUCA\n",
        r.scale
    ));
    for p in &r.points {
        out.push_str(&format!(
            "\n== {} cores, {} workloads per memory system ==\n",
            p.cores, p.workloads
        ));
        out.push_str(&render_table(
            &[
                "memsys",
                "policy",
                "wt.speedup",
                "vs TA-DRRIP",
                "fairness",
                "bank-stall share",
                "stall imbalance",
            ],
            &p.rows
                .iter()
                .map(|row| {
                    vec![
                        row.memsys.clone(),
                        row.policy.clone(),
                        format!("{:.4}", row.mean_weighted_speedup),
                        pct(row.speedup_over_baseline - 1.0),
                        format!("{:.4}", row.mean_fairness),
                        format!("{:.4}", row.mean_bank_stall_share),
                        format!("{:.2}", row.mean_stall_imbalance),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_reports_all_policies_and_banks() {
        let point = run_point(ExperimentScale::Smoke, StudyKind::Cores32, true, Some(1));
        assert_eq!(point.cores, 32);
        assert_eq!(point.rows.len(), scaling_lineup().len());
        assert_eq!(point.per_bank.len(), point.banks);
        assert_eq!(point.replay_wraps, 0, "synthetic runs never wrap");
        assert!(point.rows.iter().all(|r| r.mean_weighted_speedup > 0.0));
        assert!(point
            .rows
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.mean_fairness)));
        assert!(
            point.per_bank.iter().any(|b| b.requests > 0),
            "banks must see traffic"
        );
        // TA-DRRIP's speedup over itself is exactly 1.
        assert!((point.rows[0].speedup_over_baseline - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_includes_metrics_and_banks() {
        let r = run(ExperimentScale::Smoke, &[32], true, Some(1)).unwrap();
        let text = render(&r);
        assert!(text.contains("32 cores"));
        assert!(text.contains("bank-stall share"));
        assert!(text.contains("Per-bank occupancy/stalls"));
        assert!(text.contains("TA-DRRIP"));
    }

    #[test]
    fn unknown_core_count_is_an_error() {
        assert!(run(ExperimentScale::Smoke, &[12], true, Some(1)).is_err());
        assert!(run_memsys(ExperimentScale::Smoke, &[12], Some(1)).is_err());
    }

    #[test]
    fn contended_point_attributes_stalls_to_cores() {
        let point = run_point(ExperimentScale::Smoke, StudyKind::Cores32, true, Some(1));
        assert!(
            !point.top_stalled_cores.is_empty(),
            "a contended 32-core run must attribute some stalls"
        );
        assert!(point.stall_imbalance >= 1.0);
        // Descending by total, tie-broken by core index.
        for w in point.top_stalled_cores.windows(2) {
            assert!(w[0].total() >= w[1].total());
        }
        let text = render(&ScalingStudyResult {
            scale: "smoke".into(),
            contention: true,
            points: vec![point],
        });
        assert!(text.contains("Most-stalled cores"));
        assert!(text.contains("stall imbalance"));
    }

    #[test]
    fn memsys_head_to_head_covers_every_variant_and_policy() {
        let point = run_memsys_point(ExperimentScale::Smoke, StudyKind::Cores4, Some(1));
        let lineup = scaling_lineup().len();
        assert_eq!(point.rows.len(), 3 * lineup);
        for (i, memsys) in MemSystem::all().iter().enumerate() {
            let group = &point.rows[i * lineup..(i + 1) * lineup];
            assert!(group.iter().all(|r| r.memsys == memsys.label()));
            // TA-DRRIP is its own baseline within each memory-system frame.
            assert!((group[0].speedup_over_baseline - 1.0).abs() < 1e-12);
            assert!(group.iter().all(|r| r.mean_weighted_speedup > 0.0));
        }
        // Shares are well-formed fractions; the flat variant has no admission
        // stalls to attribute, so its imbalance is either 0 (nothing stalled) or
        // a proper max/mean ratio >= 1.
        for r in &point.rows {
            assert!((0.0..=1.0).contains(&r.mean_bank_stall_share));
            assert!(r.mean_stall_imbalance == 0.0 || r.mean_stall_imbalance >= 1.0);
        }
        let text = render_memsys(&MemsysStudyResult {
            scale: "smoke".into(),
            points: vec![point],
        });
        assert!(text.contains("frfcfs+nuca"));
        assert!(text.contains("head-to-head"));
    }
}
