//! Many-core scaling study: the paper's policy comparison beyond 24 cores.
//!
//! The paper stops at 24 cores ("the number of cores is equal to or greater than the
//! associativity" being the regime of interest); this module extends the comparison to
//! 32/48/64 cores on the core-count-generic geometry of
//! [`cache_sim::config::SystemConfig::scaled_many_core`] with the cycle-accounted bank
//! contention model of `cache_sim::bank` enabled — finite service ports, bounded
//! per-bank queues and MSHR back-pressure — so policies are differentiated not only by
//! hit rates but by the bank pressure they induce. Following fairness-oriented LLC
//! management work (LFOC/LFOC+, Saez et al.), each policy is scored on three axes:
//!
//! * **throughput** — mean weighted speedup over the workload mixes, plus the geometric
//!   mean of the per-mix speedup over TA-DRRIP (the paper's headline presentation),
//! * **fairness** — mean min/max ratio of normalized IPCs ([`mc_metrics::fairness`]),
//! * **bank-stall share** — the fraction of LLC bank time requests spent queued or
//!   refused admission rather than in service ([`MixEvaluation::bank_stall_share`]).
//!
//! Runs go through the corpus-backed parallel sweep engine
//! ([`runner::sweep_policies_on_sources`]) and are bit-identical to the serial
//! reference, which the tests enforce at 64 cores. `repro scale --cores 32,48,64`
//! drives this from the command line; `--flat` re-runs the same geometry under the
//! seed's latency-only banking for an A/B comparison.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, gmean, pct, render_table};
use crate::runner::{self, MixEvaluation, MixSource};
use crate::scale::ExperimentScale;

/// One policy's scores at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyScalingRow {
    /// Display name of the policy.
    pub policy: String,
    /// Arithmetic mean of the per-mix weighted speedups (raw throughput).
    pub mean_weighted_speedup: f64,
    /// Geometric mean of the per-mix weighted-speedup ratios over TA-DRRIP.
    pub speedup_over_baseline: f64,
    /// Arithmetic mean of the per-mix fairness scores (min/max normalized IPC).
    pub mean_fairness: f64,
    /// Arithmetic mean of the per-mix LLC bank-stall shares.
    pub mean_bank_stall_share: f64,
}

/// Aggregated occupancy/stall picture of one LLC bank across a study's runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankSummary {
    /// Bank index.
    pub bank: usize,
    /// Requests served, summed over the study's baseline-policy runs.
    pub requests: u64,
    /// Bank utilization: busy cycles as a share of the summed run lengths.
    pub busy_share: f64,
    /// Share of the bank's request time spent stalled rather than in service.
    pub stall_share: f64,
    /// Peak simultaneous waiters observed at this bank across the runs.
    pub peak_waiting: usize,
}

/// The study's results at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Cores (= applications per mix).
    pub cores: usize,
    /// LLC banks in the configuration.
    pub banks: usize,
    /// Workload mixes evaluated.
    pub workloads: usize,
    /// One row per policy, baseline (TA-DRRIP) first.
    pub rows: Vec<PolicyScalingRow>,
    /// Per-bank occupancy/stall metrics aggregated over the baseline policy's runs.
    pub per_bank: Vec<BankSummary>,
    /// Total replay wraps reported by the sweep engine (0 for synthetic runs).
    pub replay_wraps: u64,
}

/// The full scaling study: one [`ScalingPoint`] per requested core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingStudyResult {
    /// Scale the study ran at (`smoke`/`scaled`/`paper`).
    pub scale: String,
    /// False when `--flat` disabled the contention model for an A/B run.
    pub contention: bool,
    /// One entry per core count, in request order.
    pub points: Vec<ScalingPoint>,
}

/// The policies compared by the study: the TA-DRRIP baseline plus the Figure 3 lineup.
pub fn scaling_lineup() -> Vec<PolicyKind> {
    let mut policies = vec![PolicyKind::TaDrrip];
    policies.extend(PolicyKind::figure3_lineup());
    policies
}

/// Run the study at one core count. `mixes_override` bounds the workload count (tests
/// and the `--mixes` flag); `contention` selects the cycle-accounted model vs. the flat
/// seed banking on the same geometry.
pub fn run_point(
    scale: ExperimentScale,
    study: StudyKind,
    contention: bool,
    mixes_override: Option<usize>,
) -> ScalingPoint {
    let config = scale.scaling_config(study.num_cores(), contention);
    let count = mixes_override
        .unwrap_or_else(|| scale.mixes_for(study))
        .max(1);
    let mixes = generate_mixes(study, count, scale.seed());
    let sources: Vec<MixSource> = mixes.iter().cloned().map(MixSource::synthetic).collect();
    let policies = scaling_lineup();
    let outcome = runner::sweep_policies_on_sources(
        &config,
        &sources,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    )
    .expect("synthetic sweeps cannot fail to materialize");
    build_point(&config, mixes.len(), &policies, &outcome)
}

fn build_point(
    config: &cache_sim::config::SystemConfig,
    workloads: usize,
    policies: &[PolicyKind],
    outcome: &runner::SweepOutcome,
) -> ScalingPoint {
    let evals = &outcome.evaluations;
    let baseline = policies[0];
    let rows = policies
        .iter()
        .map(|&p| {
            let of_policy: Vec<&MixEvaluation> = evals.iter().filter(|e| e.policy == p).collect();
            let speedups = runner::speedups_over_baseline(evals, p, baseline);
            PolicyScalingRow {
                policy: p.label(),
                mean_weighted_speedup: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.weighted_speedup())
                        .collect::<Vec<_>>(),
                ),
                speedup_over_baseline: gmean(&speedups),
                mean_fairness: amean(&of_policy.iter().map(|e| e.fairness()).collect::<Vec<_>>()),
                mean_bank_stall_share: amean(
                    &of_policy
                        .iter()
                        .map(|e| e.bank_stall_share())
                        .collect::<Vec<_>>(),
                ),
            }
        })
        .collect();

    // Per-bank aggregation over the baseline policy's runs.
    let base_evals: Vec<&MixEvaluation> = evals.iter().filter(|e| e.policy == baseline).collect();
    let total_cycles: u64 = base_evals.iter().map(|e| e.final_cycle).sum();
    let per_bank = (0..config.llc.banks)
        .map(|bank| {
            let mut requests = 0;
            let mut busy = 0;
            let mut stall = 0;
            let mut peak = 0;
            for e in &base_evals {
                let b = &e.llc_banks[bank];
                requests += b.requests;
                busy += b.busy_cycles;
                stall += b.stall_cycles();
                peak = peak.max(b.peak_waiting);
            }
            BankSummary {
                bank,
                requests,
                busy_share: if total_cycles == 0 {
                    0.0
                } else {
                    busy as f64 / total_cycles as f64
                },
                stall_share: cache_sim::bank::stall_share(stall, busy),
                peak_waiting: peak,
            }
        })
        .collect();

    ScalingPoint {
        cores: config.num_cores,
        banks: config.llc.banks,
        workloads,
        rows,
        per_bank,
        replay_wraps: outcome.total_replay_wraps(),
    }
}

/// Run the study over `core_counts` (each must name a known study; 32/48/64 are the
/// intended values, but any Table 6 core count works for comparison points).
pub fn run(
    scale: ExperimentScale,
    core_counts: &[usize],
    contention: bool,
    mixes_override: Option<usize>,
) -> Result<ScalingStudyResult, String> {
    let points = core_counts
        .iter()
        .map(|&cores| {
            let study = StudyKind::by_cores(cores)
                .ok_or_else(|| format!("no study with {cores} cores (4/8/16/20/24/32/48/64)"))?;
            Ok(run_point(scale, study, contention, mixes_override))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ScalingStudyResult {
        scale: scale.label().to_string(),
        contention,
        points,
    })
}

/// Render the study as text tables (one policy table + one bank table per core count).
pub fn render(r: &ScalingStudyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Many-core scaling study ({} scale, {} banking)\n",
        r.scale,
        if r.contention {
            "cycle-accounted contended"
        } else {
            "flat latency-only"
        }
    ));
    for p in &r.points {
        out.push_str(&format!(
            "\n== {} cores, {} LLC banks, {} workloads",
            p.cores, p.banks, p.workloads
        ));
        if p.replay_wraps > 0 {
            out.push_str(&format!(", replay wraps {}", p.replay_wraps));
        }
        out.push_str(" ==\n");
        out.push_str(&render_table(
            &[
                "policy",
                "wt.speedup",
                "vs TA-DRRIP",
                "fairness",
                "bank-stall share",
            ],
            &p.rows
                .iter()
                .map(|row| {
                    vec![
                        row.policy.clone(),
                        format!("{:.4}", row.mean_weighted_speedup),
                        pct(row.speedup_over_baseline - 1.0),
                        format!("{:.4}", row.mean_fairness),
                        format!("{:.4}", row.mean_bank_stall_share),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str("\nPer-bank occupancy/stalls (TA-DRRIP runs):\n");
        out.push_str(&render_table(
            &[
                "bank",
                "requests",
                "busy share",
                "stall share",
                "peak waiting",
            ],
            &p.per_bank
                .iter()
                .map(|b| {
                    vec![
                        b.bank.to_string(),
                        b.requests.to_string(),
                        format!("{:.4}", b.busy_share),
                        format!("{:.4}", b.stall_share),
                        b.peak_waiting.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_reports_all_policies_and_banks() {
        let point = run_point(ExperimentScale::Smoke, StudyKind::Cores32, true, Some(1));
        assert_eq!(point.cores, 32);
        assert_eq!(point.rows.len(), scaling_lineup().len());
        assert_eq!(point.per_bank.len(), point.banks);
        assert_eq!(point.replay_wraps, 0, "synthetic runs never wrap");
        assert!(point.rows.iter().all(|r| r.mean_weighted_speedup > 0.0));
        assert!(point
            .rows
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.mean_fairness)));
        assert!(
            point.per_bank.iter().any(|b| b.requests > 0),
            "banks must see traffic"
        );
        // TA-DRRIP's speedup over itself is exactly 1.
        assert!((point.rows[0].speedup_over_baseline - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_includes_metrics_and_banks() {
        let r = run(ExperimentScale::Smoke, &[32], true, Some(1)).unwrap();
        let text = render(&r);
        assert!(text.contains("32 cores"));
        assert!(text.contains("bank-stall share"));
        assert!(text.contains("Per-bank occupancy/stalls"));
        assert!(text.contains("TA-DRRIP"));
    }

    #[test]
    fn unknown_core_count_is_an_error() {
        assert!(run(ExperimentScale::Smoke, &[12], true, Some(1)).is_err());
    }
}
