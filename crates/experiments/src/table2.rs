//! Table 2: hardware-cost comparison.
//!
//! Wraps `adapt_core::cost::table2_rows` for the paper's 16 MB / 16-way LLC shared by
//! 24 applications, and renders it in the same layout as the paper.

use adapt_core::{table2_rows, AdaptConfig, HardwareCostRow};
use serde::{Deserialize, Serialize};

use crate::report::render_table;
use crate::scale::ExperimentScale;
use workloads::StudyKind;

/// Table 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Number of applications (cores) the costs are computed for.
    pub num_apps: usize,
    /// Number of blocks in the LLC the costs are computed for.
    pub llc_blocks: usize,
    /// One row per compared policy.
    pub rows: Vec<HardwareCostRow>,
}

/// Regenerate Table 2 for the given scale's 24-core configuration (the paper's N = 24).
pub fn run(scale: ExperimentScale) -> Table2Result {
    let cfg = scale.system_config(StudyKind::Cores24);
    let llc_blocks = cfg.llc.geometry.num_blocks();
    let num_apps = cfg.num_cores;
    Table2Result {
        num_apps,
        llc_blocks,
        rows: table2_rows(&AdaptConfig::paper(), llc_blocks, num_apps),
    }
}

/// Regenerate Table 2 exactly as printed in the paper (16 MB LLC, 24 applications),
/// independent of the experiment scale.
pub fn run_paper_exact() -> Table2Result {
    let llc_blocks = 16 * 1024 * 1024 / 64;
    Table2Result {
        num_apps: 24,
        llc_blocks,
        rows: table2_rows(&AdaptConfig::paper(), llc_blocks, 24),
    }
}

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Render the table.
pub fn render(r: &Table2Result) -> String {
    let mut out = format!(
        "Table 2: hardware cost (LLC blocks = {}, N = {} applications)\n",
        r.llc_blocks, r.num_apps
    );
    out.push_str(&render_table(
        &["policy", "storage rule", "total"],
        &r.rows
            .iter()
            .map(|row| {
                vec![
                    row.policy.clone(),
                    row.storage_rule.clone(),
                    human_bytes(row.total_bytes),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exact_table_matches_published_numbers() {
        let r = run_paper_exact();
        assert_eq!(r.rows.len(), 4);
        let text = render(&r);
        assert!(text.contains("TA-DRRIP"));
        assert!(text.contains("48 B"));
        assert!(text.contains("256.00 KB"));
        assert!(text.contains("ADAPT"));
    }

    #[test]
    fn scaled_table_uses_the_scaled_llc() {
        let r = run(ExperimentScale::Scaled);
        assert_eq!(r.num_apps, 24);
        assert!(r.llc_blocks < 256 * 1024);
    }
}
