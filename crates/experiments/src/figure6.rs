//! Figure 6: impact of bypassing distant-priority insertions on each replacement policy.
//!
//! For TA-DRRIP, SHiP, EAF and ADAPT the paper compares the "insertion" flavour (distant
//! lines are installed at RRPV 3) with the "bypass" flavour (distant lines skip the LLC).
//! Bypassing helps TA-DRRIP and EAF, helps ADAPT the most, and slightly hurts SHiP (whose
//! few distant predictions are mostly wrong). LRU has no distant insertions, so it has no
//! bypass variant.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, render_table};
use crate::runner::{evaluate_policies_on_mixes, speedups_over_baseline};
use crate::scale::ExperimentScale;

/// Insertion-vs-bypass comparison for one policy family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BypassImpact {
    /// Policy family name (e.g. "ADAPT", "DRRIP").
    pub family: String,
    /// Mean weighted speedup over TA-DRRIP of the insertion flavour.
    pub insertion_speedup: f64,
    /// Mean weighted speedup over TA-DRRIP of the bypass flavour.
    pub bypass_speedup: f64,
}

/// Figure 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6Result {
    /// One insertion-vs-bypass comparison per policy family.
    pub impacts: Vec<BypassImpact>,
}

/// The (family, insertion flavour, bypass flavour) triples of Figure 6.
pub fn families() -> Vec<(&'static str, PolicyKind, PolicyKind)> {
    vec![
        ("TA-DRRIP", PolicyKind::TaDrrip, PolicyKind::TaDrripBypass),
        ("SHiP", PolicyKind::Ship, PolicyKind::ShipBypass),
        ("EAF", PolicyKind::Eaf, PolicyKind::EafBypass),
        ("ADAPT", PolicyKind::AdaptIns, PolicyKind::AdaptBp32),
    ]
}

/// Run the Figure 6 experiment on the 16-core study.
pub fn run(scale: ExperimentScale) -> Figure6Result {
    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let mut policies = vec![PolicyKind::TaDrrip];
    for (_, ins, byp) in families() {
        if !policies.contains(&ins) {
            policies.push(ins);
        }
        if !policies.contains(&byp) {
            policies.push(byp);
        }
    }
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );
    let impacts = families()
        .into_iter()
        .map(|(family, ins, byp)| BypassImpact {
            family: family.to_string(),
            insertion_speedup: amean(&speedups_over_baseline(&evals, ins, PolicyKind::TaDrrip)),
            bypass_speedup: amean(&speedups_over_baseline(&evals, byp, PolicyKind::TaDrrip)),
        })
        .collect();
    Figure6Result { impacts }
}

/// Render the figure as a table.
pub fn render(r: &Figure6Result) -> String {
    let mut out = String::from("Figure 6: weighted speedup over TA-DRRIP, insertion vs bypass\n");
    out.push_str(&render_table(
        &["policy", "insertion", "bypass", "bypass gain"],
        &r.impacts
            .iter()
            .map(|i| {
                vec![
                    i.family.clone(),
                    format!("{:.4}", i.insertion_speedup),
                    format!("{:.4}", i.bypass_speedup),
                    format!("{:+.2}%", (i.bypass_speedup - i.insertion_speedup) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_all_four_families() {
        let r = run(ExperimentScale::Smoke);
        assert_eq!(r.impacts.len(), 4);
        let names: Vec<&str> = r.impacts.iter().map(|i| i.family.as_str()).collect();
        assert_eq!(names, vec!["TA-DRRIP", "SHiP", "EAF", "ADAPT"]);
        for i in &r.impacts {
            assert!(i.insertion_speedup > 0.0);
            assert!(i.bypass_speedup > 0.0);
        }
        // The TA-DRRIP insertion flavour is the baseline itself.
        assert!((r.impacts[0].insertion_speedup - 1.0).abs() < 1e-9);
        assert!(render(&r).contains("Figure 6"));
    }
}
