//! Plain-text rendering helpers for experiment results.
//!
//! Every figure/table driver returns structured data; these helpers render the rows/series
//! the paper reports as aligned text tables or CSV so the output of `repro` can be eyeballed
//! against the paper and archived in EXPERIMENTS.md.

/// Render a table with a header row; columns are padded to the widest cell.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&render_row(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a named series (an s-curve) as CSV: `index,value` lines prefixed by a header.
pub fn render_series_csv(series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str("workload_index");
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let len = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..len {
        out.push_str(&(i + 1).to_string());
        for (_, values) in series {
            out.push(',');
            if let Some(v) = values.get(i) {
                out.push_str(&format!("{v:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Format a fraction as a signed percentage with two decimals ("+4.70%").
pub fn pct(value: f64) -> String {
    format!("{:+.2}%", value * 100.0)
}

/// Geometric mean of a slice (0 if empty) — convenience used by figure summaries.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0 if empty).
pub fn amean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let out = render_table(
            &["policy", "speedup"],
            &[
                vec!["ADAPT".into(), "1.047".into()],
                vec!["TA-DRRIP".into(), "1.000".into()],
            ],
        );
        assert!(out.contains("ADAPT"));
        assert!(out.contains("1.047"));
        assert_eq!(out.lines().count(), 4);
        // Header and separator align.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("--"));
    }

    #[test]
    fn series_csv_has_one_row_per_workload() {
        let csv = render_series_csv(&[("A".into(), vec![1.0, 1.1]), ("B".into(), vec![0.9, 1.0])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "workload_index,A,B");
        assert!(lines[1].starts_with("1,1.0000,0.9000"));
    }

    #[test]
    fn pct_and_means() {
        assert_eq!(pct(0.047), "+4.70%");
        assert_eq!(pct(-0.011), "-1.10%");
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((amean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
        assert_eq!(amean(&[]), 0.0);
    }
}
