//! Figure 8: scalability with respect to the number of applications.
//!
//! The paper repeats the Figure 3 comparison for 4-, 8-, 20- and 24-core workloads
//! (Table 6's studies) and reports per-workload s-curves. ADAPT outperforms the prior
//! policies at every scale: up to 20% / 4.8% on average at 4 cores, ~3.5% at 8 cores, and
//! 5.8% / 5.9% on average at 20 / 24 cores (which share the 16 MB, 16-way LLC, i.e. the
//! `#cores >= #ways` regime).

use serde::{Deserialize, Serialize};
use workloads::StudyKind;

use crate::figure3::{render as render_curves, run_study, SCurveResult};
use crate::scale::ExperimentScale;

/// Figure 8: one s-curve panel per study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure8Result {
    /// One s-curve panel per study (4/8/20/24 cores).
    pub panels: Vec<SCurveResult>,
}

/// The studies shown in Figure 8 (Figure 3 already covers 16 cores).
pub fn figure8_studies() -> Vec<StudyKind> {
    vec![
        StudyKind::Cores4,
        StudyKind::Cores8,
        StudyKind::Cores20,
        StudyKind::Cores24,
    ]
}

/// Run selected studies (used by tests/benches to bound runtime).
pub fn run_studies(scale: ExperimentScale, studies: &[StudyKind]) -> Figure8Result {
    Figure8Result {
        panels: studies.iter().map(|s| run_study(scale, *s)).collect(),
    }
}

/// Run the full Figure 8.
pub fn run(scale: ExperimentScale) -> Figure8Result {
    run_studies(scale, &figure8_studies())
}

/// Render every panel.
pub fn render(r: &Figure8Result) -> String {
    let mut out = String::new();
    for panel in &r.panels {
        out.push_str(&format!(
            "Figure 8 panel: {}-core workloads\n",
            panel.study_cores
        ));
        out.push_str(&render_curves(panel));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_panel_smoke_run() {
        let r = run_studies(ExperimentScale::Smoke, &[StudyKind::Cores4]);
        assert_eq!(r.panels.len(), 1);
        assert_eq!(r.panels[0].study_cores, 4);
        assert_eq!(r.panels[0].curves.len(), 5);
        assert!(render(&r).contains("4-core"));
    }

    #[test]
    fn figure8_covers_the_paper_studies() {
        let cores: Vec<usize> = figure8_studies().iter().map(|s| s.num_cores()).collect();
        assert_eq!(cores, vec![4, 8, 20, 24]);
    }
}
