//! Table 7: ADAPT's improvement under alternative multi-core metrics.
//!
//! For every study (4/8/16/20/24 cores) the paper reports ADAPT_bp32's improvement over
//! TA-DRRIP on weighted speedup, the harmonic mean of normalized IPCs, and the geometric /
//! harmonic / arithmetic means of raw IPCs.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, pct, render_table};
use crate::runner::{evaluate_policies_on_mixes, group_by_policy};
use crate::scale::ExperimentScale;

/// ADAPT-vs-TA-DRRIP improvements (fractions) for one study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyMetrics {
    /// Core count of the study.
    pub cores: usize,
    /// Improvement in weighted speedup.
    pub weighted_speedup: f64,
    /// Improvement in the harmonic mean of normalized IPCs (fairness).
    pub harmonic_mean_normalized: f64,
    /// Improvement in the geometric mean of raw IPCs.
    pub geometric_mean_ipc: f64,
    /// Improvement in the harmonic mean of raw IPCs.
    pub harmonic_mean_ipc: f64,
    /// Improvement in the arithmetic mean of raw IPCs.
    pub arithmetic_mean_ipc: f64,
}

/// Table 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Result {
    /// One row per study, in core-count order.
    pub studies: Vec<StudyMetrics>,
}

/// Compute one study's row.
pub fn run_study(scale: ExperimentScale, study: StudyKind) -> StudyMetrics {
    let config = scale.system_config(study);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );
    let grouped = group_by_policy(&evals, &policies);
    let (base, adapt) = (&grouped[0], &grouped[1]);

    let mean_improvement = |f: &dyn Fn(&crate::runner::MixEvaluation) -> f64| -> f64 {
        let per_mix: Vec<f64> = base
            .iter()
            .zip(adapt.iter())
            .map(|(b, a)| {
                let bv = f(b);
                if bv > 0.0 {
                    f(a) / bv - 1.0
                } else {
                    0.0
                }
            })
            .collect();
        amean(&per_mix)
    };

    StudyMetrics {
        cores: study.num_cores(),
        weighted_speedup: mean_improvement(&|e| e.metrics.weighted_speedup),
        harmonic_mean_normalized: mean_improvement(&|e| e.metrics.harmonic_mean_normalized),
        geometric_mean_ipc: mean_improvement(&|e| e.metrics.geometric_mean_ipc),
        harmonic_mean_ipc: mean_improvement(&|e| e.metrics.harmonic_mean_ipc),
        arithmetic_mean_ipc: mean_improvement(&|e| e.metrics.arithmetic_mean_ipc),
    }
}

/// Run all five of the paper's studies (the many-core scaling studies are reported by
/// `experiments::scaling`, not Table 7).
pub fn run(scale: ExperimentScale) -> Table7Result {
    Table7Result {
        studies: StudyKind::paper_studies()
            .iter()
            .map(|s| run_study(scale, *s))
            .collect(),
    }
}

/// Render the table in the paper's layout (metrics as rows, studies as columns).
pub fn render(r: &Table7Result) -> String {
    let mut out = String::from("Table 7: ADAPT improvement over TA-DRRIP under other metrics\n");
    let header: Vec<String> = std::iter::once("metric".to_string())
        .chain(r.studies.iter().map(|s| format!("{}-core", s.cores)))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    type MetricFn = Box<dyn Fn(&StudyMetrics) -> f64>;
    let metric_rows: Vec<(&str, MetricFn)> = vec![
        (
            "Wt.Speed-up",
            Box::new(|s: &StudyMetrics| s.weighted_speedup),
        ),
        (
            "Norm. HM",
            Box::new(|s: &StudyMetrics| s.harmonic_mean_normalized),
        ),
        (
            "GM of IPCs",
            Box::new(|s: &StudyMetrics| s.geometric_mean_ipc),
        ),
        (
            "HM of IPCs",
            Box::new(|s: &StudyMetrics| s.harmonic_mean_ipc),
        ),
        (
            "AM of IPCs",
            Box::new(|s: &StudyMetrics| s.arithmetic_mean_ipc),
        ),
    ];
    let rows: Vec<Vec<String>> = metric_rows
        .iter()
        .map(|(name, f)| {
            std::iter::once(name.to_string())
                .chain(r.studies.iter().map(|s| pct(f(s))))
                .collect()
        })
        .collect();
    out.push_str(&render_table(&header_refs, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_study_smoke_run_produces_finite_improvements() {
        let m = run_study(ExperimentScale::Smoke, StudyKind::Cores4);
        assert_eq!(m.cores, 4);
        for v in [
            m.weighted_speedup,
            m.harmonic_mean_normalized,
            m.geometric_mean_ipc,
            m.harmonic_mean_ipc,
            m.arithmetic_mean_ipc,
        ] {
            assert!(v.is_finite());
            assert!(v > -1.0 && v < 5.0, "improvement {v} outside sane bounds");
        }
    }

    #[test]
    fn render_places_metrics_in_rows() {
        let r = Table7Result {
            studies: vec![StudyMetrics {
                cores: 16,
                weighted_speedup: 0.047,
                harmonic_mean_normalized: 0.066,
                geometric_mean_ipc: 0.053,
                harmonic_mean_ipc: 0.054,
                arithmetic_mean_ipc: 0.048,
            }],
        };
        let text = render(&r);
        assert!(text.contains("Wt.Speed-up"));
        assert!(text.contains("16-core"));
        assert!(text.contains("+4.70%"));
    }
}
