//! Ablation sweeps over ADAPT's design parameters (DESIGN.md §6).
//!
//! The paper fixes several constants after internal sweeps: the monitoring interval (1M
//! LLC misses, chosen from {0.25M..4M}), 40 sampled sets, the Table 1 priority ranges
//! (chosen from 36 range combinations) and the 1/32 bypass ratio. These functions rerun
//! the corresponding sweeps on our substrate so the sensitivity of each choice can be
//! inspected; the `ablations` Criterion bench and `repro ablation` drive them.
//!
//! The sweeps run on the corpus engine: each mix's access streams are materialized once
//! and shared (zero-copy) across the TA-DRRIP baseline and every configuration variant,
//! which are evaluated in parallel. The seed behaviour regenerated every stream — and
//! re-ran the baseline — once *per variant*.

use std::collections::HashMap;

use adapt_core::{AdaptConfig, AdaptPolicy};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind, WorkloadMix};

use cache_sim::config::SystemConfig;

use crate::policies::PolicyKind;
use crate::report::render_table;
use crate::runner::{evaluate_prepared, warm_alone_cache, MixSource};
use crate::scale::ExperimentScale;

/// One ablation data point: a configuration label and its mean speedup over TA-DRRIP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable variant description (e.g. `"bypass 1/32"`).
    pub label: String,
    /// Mean (over mixes) weighted-speedup ratio of the variant to the TA-DRRIP baseline.
    pub speedup_over_tadrrip: f64,
}

/// Shared sweep machinery: evaluate a list of (label, AdaptConfig) variants against the
/// TA-DRRIP baseline on a common set of mixes and, optionally, configuration overrides.
///
/// Each mix is materialized once; the baseline is evaluated once per distinct
/// configuration override (not once per variant) and the variants fan out in parallel
/// over the shared streams.
fn sweep_adapt_variants(
    base_config: &SystemConfig,
    mixes: &[WorkloadMix],
    variants: &[(String, AdaptConfig, Option<u64>)],
    instructions: u64,
    seed: u64,
) -> Vec<AblationPoint> {
    warm_alone_cache(base_config, mixes, instructions, seed);
    let llc_sets = base_config.llc.geometry.num_sets();
    let config_for = |interval_override: &Option<u64>| {
        let mut cfg = base_config.clone();
        if let Some(interval) = interval_override {
            cfg.interval_misses = *interval;
        }
        cfg
    };
    let mut ratio_sums = vec![0.0f64; variants.len()];
    for mix in mixes {
        let prepared = MixSource::synthetic(mix.clone())
            .materialize(llc_sets, seed)
            .expect("synthetic mixes always materialize");
        // One baseline per distinct override: TA-DRRIP's result depends on the system
        // configuration, not on the ADAPT knobs, so identical overrides share it.
        let mut overrides: Vec<Option<u64>> = variants.iter().map(|v| v.2).collect();
        overrides.sort_unstable();
        overrides.dedup();
        let baselines: HashMap<Option<u64>, f64> = overrides
            .par_iter()
            .map(|ov| {
                let cfg = config_for(ov);
                let built = PolicyKind::TaDrrip.build(&cfg, &mix.thrashing_slots());
                let eval = evaluate_prepared(
                    &cfg,
                    &prepared,
                    PolicyKind::TaDrrip,
                    built,
                    instructions,
                    seed,
                );
                (*ov, eval.weighted_speedup())
            })
            .collect();
        let ratios: Vec<f64> = variants
            .par_iter()
            .map(|(_, adapt_cfg, interval_override)| {
                let cfg = config_for(interval_override);
                let policy = Box::new(AdaptPolicy::new(*adapt_cfg, &cfg.llc, cfg.num_cores));
                let adapt = evaluate_prepared(
                    &cfg,
                    &prepared,
                    PolicyKind::AdaptBp32,
                    policy,
                    instructions,
                    seed,
                );
                let b = baselines[interval_override];
                if b > 0.0 {
                    adapt.weighted_speedup() / b
                } else {
                    0.0
                }
            })
            .collect();
        for (sum, r) in ratio_sums.iter_mut().zip(&ratios) {
            *sum += r;
        }
    }
    variants
        .iter()
        .zip(&ratio_sums)
        .map(|((label, _, _), sum)| AblationPoint {
            label: label.clone(),
            speedup_over_tadrrip: *sum / mixes.len().max(1) as f64,
        })
        .collect()
}

fn setup(scale: ExperimentScale, mixes: usize) -> (SystemConfig, Vec<WorkloadMix>, u64, u64) {
    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let workloads = generate_mixes(
        study,
        mixes.min(scale.mixes_for(study)).max(1),
        scale.seed(),
    );
    (
        config,
        workloads,
        scale.instructions_per_core(),
        scale.seed(),
    )
}

/// Sweep the monitoring-interval length (fractions/multiples of the configured interval).
pub fn interval_sweep(scale: ExperimentScale, mixes: usize) -> Vec<AblationPoint> {
    let (config, workloads, instructions, seed) = setup(scale, mixes);
    let base = config.interval_misses;
    let variants: Vec<(String, AdaptConfig, Option<u64>)> = [0.25f64, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|mult| {
            (
                format!("interval x{mult}"),
                AdaptConfig::paper(),
                Some(((base as f64 * mult) as u64).max(1024)),
            )
        })
        .collect();
    sweep_adapt_variants(&config, &workloads, &variants, instructions, seed)
}

/// Sweep the number of sampled sets per application (the paper uses 40).
pub fn sampled_sets_sweep(scale: ExperimentScale, mixes: usize) -> Vec<AblationPoint> {
    let (config, workloads, instructions, seed) = setup(scale, mixes);
    let variants: Vec<(String, AdaptConfig, Option<u64>)> = [8usize, 16, 40, 64, 128]
        .iter()
        .map(|n| {
            (
                format!("{n} sampled sets"),
                AdaptConfig {
                    sampled_sets: *n,
                    ..AdaptConfig::paper()
                },
                None,
            )
        })
        .collect();
    sweep_adapt_variants(&config, &workloads, &variants, instructions, seed)
}

/// Sweep the bypass ratio of the Least-priority class (the paper installs 1 in 32).
pub fn bypass_ratio_sweep(scale: ExperimentScale, mixes: usize) -> Vec<AblationPoint> {
    let (config, workloads, instructions, seed) = setup(scale, mixes);
    let variants: Vec<(String, AdaptConfig, Option<u64>)> = [8u32, 16, 32, 64, 128]
        .iter()
        .map(|r| {
            (
                format!("bypass 1/{r}"),
                AdaptConfig {
                    bypass_ratio: *r,
                    ..AdaptConfig::paper()
                },
                None,
            )
        })
        .collect();
    sweep_adapt_variants(&config, &workloads, &variants, instructions, seed)
}

/// Sweep the High/Medium priority boundaries (the paper settles on `[0,3]` and `(3,12]`).
pub fn priority_range_sweep(scale: ExperimentScale, mixes: usize) -> Vec<AblationPoint> {
    let (config, workloads, instructions, seed) = setup(scale, mixes);
    let mut variants = Vec::new();
    for high_max in [2.0f64, 3.0, 5.0, 8.0] {
        for medium_max in [10.0f64, 12.0, 14.0] {
            if medium_max <= high_max {
                continue;
            }
            variants.push((
                format!("HP<= {high_max}, MP<= {medium_max}"),
                AdaptConfig {
                    high_max,
                    medium_max,
                    ..AdaptConfig::paper()
                },
                None,
            ));
        }
    }
    sweep_adapt_variants(&config, &workloads, &variants, instructions, seed)
}

/// Render an ablation sweep.
pub fn render(title: &str, points: &[AblationPoint]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&render_table(
        &["configuration", "speedup over TA-DRRIP"],
        &points
            .iter()
            .map(|p| vec![p.label.clone(), format!("{:.4}", p.speedup_over_tadrrip)])
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_ratio_sweep_produces_one_point_per_ratio() {
        let points = bypass_ratio_sweep(ExperimentScale::Smoke, 1);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert!(p.speedup_over_tadrrip > 0.0);
        }
        assert!(render("bypass", &points).contains("bypass 1/32"));
    }

    #[test]
    fn priority_range_sweep_excludes_degenerate_ranges() {
        let points = priority_range_sweep(ExperimentScale::Smoke, 1);
        assert!(points.iter().all(|p| !p.label.is_empty()));
        assert!(points.len() >= 9);
    }
}
