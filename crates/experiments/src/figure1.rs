//! Figure 1: forcing BRRIP on thrashing applications under TA-DRRIP.
//!
//! The paper's motivation experiment: on 16-core workloads, TA-DRRIP learns SRRIP for every
//! application — including the thrashing ones — and loses performance. Forcing BRRIP on the
//! applications whose working sets exceed the cache (Footprint-number >= 16) improves the
//! weighted speedup substantially (Figure 1a; the paper reports ~2.8x relative gain over
//! baseline TA-DRRIP on its speedup normalization), barely hurts the thrashing applications
//! themselves (Figure 1b) and strongly reduces the MPKI of the others (Figure 1c, up to 72%
//! for art). Figure 1a also shows the result is insensitive to the number of dueling sets
//! (SD = 64 vs 128).

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, render_table};
use crate::runner::{evaluate_policies_on_mixes, speedups_over_baseline, MixEvaluation};
use crate::scale::ExperimentScale;

/// Per-benchmark MPKI reduction (percent, positive = fewer misses) under forced BRRIP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpkiReduction {
    /// Benchmark name (Table 4 identifier).
    pub benchmark: String,
    /// Percent LLC-MPKI reduction relative to the baseline (positive = fewer misses).
    pub reduction_percent: f64,
}

/// Figure 1 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1Result {
    /// Mean weighted-speedup ratio over baseline TA-DRRIP with set-dueling over 64 sets.
    pub speedup_sd64: f64,
    /// Mean weighted-speedup ratio over baseline TA-DRRIP with set-dueling over 128 sets.
    pub speedup_sd128: f64,
    /// Mean weighted-speedup ratio when thrashing applications are forced to BRRIP.
    pub speedup_forced: f64,
    /// Figure 1b: thrashing applications.
    pub thrashing: Vec<MpkiReduction>,
    /// Figure 1c: non-thrashing applications.
    pub non_thrashing: Vec<MpkiReduction>,
}

/// Average per-benchmark LLC-MPKI reduction of `policy` relative to `baseline`.
pub(crate) fn mpki_reductions(
    evals: &[MixEvaluation],
    policy: PolicyKind,
    baseline: PolicyKind,
    thrashing: bool,
) -> Vec<MpkiReduction> {
    use std::collections::HashMap;
    // benchmark -> (sum of reductions, count)
    let mut acc: HashMap<String, (f64, u64)> = HashMap::new();
    for base_eval in evals.iter().filter(|e| e.policy == baseline) {
        if let Some(pol_eval) = evals
            .iter()
            .find(|e| e.policy == policy && e.mix_id == base_eval.mix_id)
        {
            for (b, p) in base_eval.per_app.iter().zip(&pol_eval.per_app) {
                if b.is_thrashing != thrashing {
                    continue;
                }
                if b.llc_mpki <= 0.0 {
                    continue;
                }
                let red = mc_metrics::mpki_reduction_percent(p.llc_mpki, b.llc_mpki);
                let e = acc.entry(b.name.clone()).or_insert((0.0, 0));
                e.0 += red;
                e.1 += 1;
            }
        }
    }
    let mut rows: Vec<MpkiReduction> = acc
        .into_iter()
        .map(|(benchmark, (sum, n))| MpkiReduction {
            benchmark,
            reduction_percent: sum / n as f64,
        })
        .collect();
    rows.sort_by(|a, b| a.benchmark.cmp(&b.benchmark));
    rows
}

/// Run the Figure 1 experiment.
pub fn run(scale: ExperimentScale) -> Figure1Result {
    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let policies = [
        PolicyKind::TaDrrip,
        PolicyKind::TaDrripSd(64),
        PolicyKind::TaDrripSd(128),
        PolicyKind::TaDrripForced,
    ];
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );

    let mean_ratio = |p: PolicyKind| amean(&speedups_over_baseline(&evals, p, PolicyKind::TaDrrip));
    Figure1Result {
        speedup_sd64: mean_ratio(PolicyKind::TaDrripSd(64)),
        speedup_sd128: mean_ratio(PolicyKind::TaDrripSd(128)),
        speedup_forced: mean_ratio(PolicyKind::TaDrripForced),
        thrashing: mpki_reductions(&evals, PolicyKind::TaDrripForced, PolicyKind::TaDrrip, true),
        non_thrashing: mpki_reductions(
            &evals,
            PolicyKind::TaDrripForced,
            PolicyKind::TaDrrip,
            false,
        ),
    }
}

/// Render the three panels of Figure 1 as text.
pub fn render(r: &Figure1Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 1a: speedup over TA-DRRIP (16-core workloads)\n");
    out.push_str(&render_table(
        &["configuration", "speedup over TA-DRRIP"],
        &[
            vec!["TA-DRRIP(SD=64)".into(), format!("{:.3}", r.speedup_sd64)],
            vec!["TA-DRRIP(SD=128)".into(), format!("{:.3}", r.speedup_sd128)],
            vec![
                "TA-DRRIP(forced)".into(),
                format!("{:.3}", r.speedup_forced),
            ],
        ],
    ));
    out.push_str("\nFigure 1b: % reduction in MPKI, thrashing applications\n");
    out.push_str(&render_table(
        &["benchmark", "reduction %"],
        &r.thrashing
            .iter()
            .map(|m| vec![m.benchmark.clone(), format!("{:.1}", m.reduction_percent)])
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nFigure 1c: % reduction in MPKI, non-thrashing applications\n");
    out.push_str(&render_table(
        &["benchmark", "reduction %"],
        &r.non_thrashing
            .iter()
            .map(|m| vec![m.benchmark.clone(), format!("{:.1}", m.reduction_percent)])
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_three_panels() {
        let r = run(ExperimentScale::Smoke);
        assert!(r.speedup_sd64 > 0.0);
        assert!(r.speedup_forced > 0.0);
        assert!(
            !r.thrashing.is_empty(),
            "16-core mixes always contain thrashing apps"
        );
        assert!(!r.non_thrashing.is_empty());
        let text = render(&r);
        assert!(text.contains("Figure 1a"));
        assert!(text.contains("TA-DRRIP(forced)"));
    }
}
