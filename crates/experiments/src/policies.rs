//! Unified policy naming and construction for the experiment drivers.
//!
//! [`PolicyKind`] spans the baselines (`llc-policies`), ADAPT (`adapt-core`), the bypass
//! ablation variants of Figure 6 and the forced-BRRIP TA-DRRIP variants of Figure 1, so
//! every experiment can be expressed as "run this list of [`PolicyKind`]s over these
//! workload mixes".

use adapt_core::{AdaptConfig, AdaptPolicy};
use cache_sim::config::SystemConfig;
use cache_sim::replacement::LlcReplacementPolicy;
use llc_policies::{
    build_baseline, build_baseline_any, AnyPolicy, BaselineKind, BypassDistant, EafPolicy,
    ShipPolicy, TaDrripPolicy,
};
use serde::{Deserialize, Serialize};

/// A policy an experiment can ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// True least-recently-used replacement.
    Lru,
    /// Static RRIP (long re-reference prediction on insert).
    Srrip,
    /// Bimodal RRIP (mostly distant insertions).
    Brrip,
    /// Dynamic RRIP (set-dueling between SRRIP and BRRIP).
    Drrip,
    /// The paper's baseline (thread-aware DRRIP with 32 dueling sets per policy).
    TaDrrip,
    /// TA-DRRIP with an explicit number of dueling sets (Figure 1a: 64 and 128).
    TaDrripSd(usize),
    /// TA-DRRIP with BRRIP forced for the mix's thrashing applications (Figure 1).
    TaDrripForced,
    /// Signature-based hit prediction (SHiP-PC).
    Ship,
    /// Evicted-address-filter insertion policy.
    Eaf,
    /// ADAPT with Least-priority insertion (no bypass).
    AdaptIns,
    /// ADAPT with Least-priority bypass, 1-in-32 installs (the paper's best variant).
    AdaptBp32,
    /// Figure 6 ablations: distant insertions of the baseline become bypasses.
    TaDrripBypass,
    /// Figure 6: SHiP with distant insertions turned into bypasses.
    ShipBypass,
    /// Figure 6: EAF with distant insertions turned into bypasses.
    EafBypass,
}

impl PolicyKind {
    /// Label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Srrip => "SRRIP".into(),
            PolicyKind::Brrip => "BRRIP".into(),
            PolicyKind::Drrip => "DRRIP".into(),
            PolicyKind::TaDrrip => "TA-DRRIP".into(),
            PolicyKind::TaDrripSd(n) => format!("TA-DRRIP(SD={n})"),
            PolicyKind::TaDrripForced => "TA-DRRIP(forced)".into(),
            PolicyKind::Ship => "SHiP".into(),
            PolicyKind::Eaf => "EAF".into(),
            PolicyKind::AdaptIns => "ADAPT_ins".into(),
            PolicyKind::AdaptBp32 => "ADAPT_bp32".into(),
            PolicyKind::TaDrripBypass => "TA-DRRIP+bypass".into(),
            PolicyKind::ShipBypass => "SHiP+bypass".into(),
            PolicyKind::EafBypass => "EAF+bypass".into(),
        }
    }

    /// Parse a figure-legend label back into its policy — the exact inverse of
    /// [`PolicyKind::label`] (`parse(kind.label()) == Some(kind)` for every variant),
    /// so external callers (the `sweepd` API, CLI flags) can name policies by the
    /// strings the reports print.
    pub fn parse(label: &str) -> Option<PolicyKind> {
        Some(match label {
            "LRU" => PolicyKind::Lru,
            "SRRIP" => PolicyKind::Srrip,
            "BRRIP" => PolicyKind::Brrip,
            "DRRIP" => PolicyKind::Drrip,
            "TA-DRRIP" => PolicyKind::TaDrrip,
            "TA-DRRIP(forced)" => PolicyKind::TaDrripForced,
            "SHiP" => PolicyKind::Ship,
            "EAF" => PolicyKind::Eaf,
            "ADAPT_ins" => PolicyKind::AdaptIns,
            "ADAPT_bp32" => PolicyKind::AdaptBp32,
            "TA-DRRIP+bypass" => PolicyKind::TaDrripBypass,
            "SHiP+bypass" => PolicyKind::ShipBypass,
            "EAF+bypass" => PolicyKind::EafBypass,
            other => {
                let n = other.strip_prefix("TA-DRRIP(SD=")?.strip_suffix(')')?;
                PolicyKind::TaDrripSd(n.parse().ok()?)
            }
        })
    }

    /// The lineup of the paper's Figure 3 / Figure 8 comparisons, in legend order.
    pub fn figure3_lineup() -> Vec<PolicyKind> {
        vec![
            PolicyKind::AdaptBp32,
            PolicyKind::Lru,
            PolicyKind::Ship,
            PolicyKind::Eaf,
            PolicyKind::AdaptIns,
        ]
    }

    /// Construct the policy for a system in the monomorphized enum-dispatched form the
    /// simulator hot path is instantiated with. `thrashing_slots` lists the cores running
    /// applications with Footprint-number >= 16 (needed only by `TaDrripForced`).
    ///
    /// Baselines map to dedicated [`AnyPolicy`] variants (direct calls in the LLC);
    /// ADAPT — which lives in `adapt-core`, outside the baseline crate — rides the
    /// retained [`AnyPolicy::Custom`] dynamic path, costing exactly what the old
    /// all-boxed design cost.
    pub fn build_dispatch(&self, config: &SystemConfig, thrashing_slots: &[usize]) -> AnyPolicy {
        let llc = &config.llc;
        let sets = llc.geometry.num_sets();
        let ways = llc.geometry.ways;
        let cores = config.num_cores;
        match self {
            PolicyKind::Lru => build_baseline_any(BaselineKind::Lru, llc, cores),
            PolicyKind::Srrip => build_baseline_any(BaselineKind::Srrip, llc, cores),
            PolicyKind::Brrip => build_baseline_any(BaselineKind::Brrip, llc, cores),
            PolicyKind::Drrip => build_baseline_any(BaselineKind::Drrip, llc, cores),
            PolicyKind::TaDrrip => build_baseline_any(BaselineKind::TaDrrip, llc, cores),
            PolicyKind::TaDrripSd(n) => {
                AnyPolicy::TaDrrip(TaDrripPolicy::with_dueling_sets(sets, ways, cores, *n))
            }
            PolicyKind::TaDrripForced => {
                let mut p = TaDrripPolicy::new(sets, ways, cores);
                p.force_brrip_for(thrashing_slots);
                AnyPolicy::TaDrrip(p)
            }
            PolicyKind::Ship => build_baseline_any(BaselineKind::Ship, llc, cores),
            PolicyKind::Eaf => build_baseline_any(BaselineKind::Eaf, llc, cores),
            PolicyKind::AdaptIns => AnyPolicy::custom(Box::new(AdaptPolicy::new(
                AdaptConfig::paper_insert_only(),
                llc,
                cores,
            ))),
            PolicyKind::AdaptBp32 => {
                AnyPolicy::custom(Box::new(AdaptPolicy::new(AdaptConfig::paper(), llc, cores)))
            }
            PolicyKind::TaDrripBypass => AnyPolicy::BypassDistant(BypassDistant::new(Box::new(
                TaDrripPolicy::new(sets, ways, cores),
            ))),
            PolicyKind::ShipBypass => AnyPolicy::BypassDistant(BypassDistant::new(Box::new(
                ShipPolicy::new(sets, ways, cores),
            ))),
            PolicyKind::EafBypass => {
                AnyPolicy::BypassDistant(BypassDistant::new(Box::new(EafPolicy::new(sets, ways))))
            }
        }
    }

    /// Construct the policy boxed behind the trait object — the historical signature,
    /// kept (constructing the concrete policy directly, not a boxed enum) so the
    /// reference engine's dynamic dispatch is exactly what the pre-refactor simulator
    /// paid, and for callers that need `dyn` flexibility.
    pub fn build(
        &self,
        config: &SystemConfig,
        thrashing_slots: &[usize],
    ) -> Box<dyn LlcReplacementPolicy> {
        let llc = &config.llc;
        let sets = llc.geometry.num_sets();
        let ways = llc.geometry.ways;
        let cores = config.num_cores;
        match self {
            PolicyKind::Lru => build_baseline(BaselineKind::Lru, llc, cores),
            PolicyKind::Srrip => build_baseline(BaselineKind::Srrip, llc, cores),
            PolicyKind::Brrip => build_baseline(BaselineKind::Brrip, llc, cores),
            PolicyKind::Drrip => build_baseline(BaselineKind::Drrip, llc, cores),
            PolicyKind::TaDrrip => build_baseline(BaselineKind::TaDrrip, llc, cores),
            PolicyKind::TaDrripSd(n) => {
                Box::new(TaDrripPolicy::with_dueling_sets(sets, ways, cores, *n))
            }
            PolicyKind::TaDrripForced => {
                let mut p = TaDrripPolicy::new(sets, ways, cores);
                p.force_brrip_for(thrashing_slots);
                Box::new(p)
            }
            PolicyKind::Ship => build_baseline(BaselineKind::Ship, llc, cores),
            PolicyKind::Eaf => build_baseline(BaselineKind::Eaf, llc, cores),
            PolicyKind::AdaptIns => Box::new(AdaptPolicy::new(
                AdaptConfig::paper_insert_only(),
                llc,
                cores,
            )),
            PolicyKind::AdaptBp32 => Box::new(AdaptPolicy::new(AdaptConfig::paper(), llc, cores)),
            PolicyKind::TaDrripBypass => Box::new(BypassDistant::new(Box::new(
                TaDrripPolicy::new(sets, ways, cores),
            ))),
            PolicyKind::ShipBypass => Box::new(BypassDistant::new(Box::new(ShipPolicy::new(
                sets, ways, cores,
            )))),
            PolicyKind::EafBypass => {
                Box::new(BypassDistant::new(Box::new(EafPolicy::new(sets, ways))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_labels() {
        let cfg = SystemConfig::tiny(4);
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Drrip,
            PolicyKind::TaDrrip,
            PolicyKind::TaDrripSd(64),
            PolicyKind::TaDrripForced,
            PolicyKind::Ship,
            PolicyKind::Eaf,
            PolicyKind::AdaptIns,
            PolicyKind::AdaptBp32,
            PolicyKind::TaDrripBypass,
            PolicyKind::ShipBypass,
            PolicyKind::EafBypass,
        ];
        for k in kinds {
            let p = k.build(&cfg, &[1, 3]);
            assert!(!p.name().is_empty());
            let d = k.build_dispatch(&cfg, &[1, 3]);
            assert_eq!(d.name(), p.name(), "{k:?}: dispatch form must agree");
            assert!(!k.label().is_empty());
            assert_eq!(
                PolicyKind::parse(&k.label()),
                Some(k),
                "parse must invert label for {k:?}"
            );
        }
        assert_eq!(
            PolicyKind::parse("TA-DRRIP(SD=128)"),
            Some(PolicyKind::TaDrripSd(128))
        );
        assert_eq!(PolicyKind::parse("NOPE"), None);
        assert_eq!(PolicyKind::parse("TA-DRRIP(SD=x)"), None);
    }

    #[test]
    fn forced_variant_reports_forced_name() {
        let cfg = SystemConfig::tiny(4);
        let p = PolicyKind::TaDrripForced.build(&cfg, &[0]);
        assert_eq!(p.name(), "TA-DRRIP(forced)");
    }

    #[test]
    fn figure3_lineup_matches_legend() {
        let labels: Vec<String> = PolicyKind::figure3_lineup()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            vec!["ADAPT_bp32", "LRU", "SHiP", "EAF", "ADAPT_ins"]
        );
    }
}
