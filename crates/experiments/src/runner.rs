//! Workload execution engine shared by every experiment.
//!
//! The runner turns (system configuration, workload mix, policy) triples into
//! [`MixEvaluation`]s: per-application IPC and MPKI plus the multi-programmed metrics of
//! `mc-metrics`, with the weighted speedup normalized by cached single-application
//! ("alone") runs exactly as the paper does.
//!
//! # The corpus-backed sweep engine
//!
//! A sweep evaluates P policies over M mixes. The naive path regenerates (or re-reads
//! and re-decodes) every mix's access streams P times, so sweep cost grows as P × M in
//! *stream production* as well as simulation. [`evaluate_policies_on_mixes`] instead
//! materializes each mix's streams exactly once — captured from the live generators into
//! shared in-memory buffers, or decoded once from a `.atrc` file — and fans the
//! (policy × mix) grid out across rayon workers, every policy replaying the same
//! [`SharedReplayTrace`] buffers zero-copy. Mixes are materialized in bounded windows so
//! peak memory stays at a few mixes regardless of sweep size, and results are emitted in
//! deterministic (mix, policy) order no matter how many workers run.
//!
//! Workloads come from two provenances, unified by [`MixSource`]: live synthetic
//! generators ([`MixSource::Synthetic`]) and captured binary traces replayed from disk
//! ([`MixSource::Replayed`], backed by `trace-io`); [`evaluate_policies_on_corpus`]
//! sweeps a whole materialized [`Corpus`]. Because capture is lossless and generators
//! reset exactly, both provenances of the same mix produce bit-identical
//! per-application IPC/MPKI — and the parallel grid produces bit-identical results to
//! the serial reference path [`evaluate_policies_serial`], which the runner's tests
//! enforce (also under the contended bank model — see `cache_sim::bank`). The one
//! caveat is a corpus whose capture budget is smaller than the run: its streams wrap
//! (the paper's re-execution semantics), which the engine counts
//! ([`MaterializedMixStreams::replay_wraps`]), returns in the structured
//! [`SweepOutcome::mix_wraps`] and echoes on stderr rather than letting the divergence
//! pass silently.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use rayon::prelude::*;

use cache_sim::config::SystemConfig;
use cache_sim::reference::reference_system;
use cache_sim::replacement::LlcReplacementPolicy;
use cache_sim::single::run_alone;
use cache_sim::stats::SystemResults;
use cache_sim::system::MultiCoreSystem;
use cache_sim::trace::{
    ArenaReplayTrace, BatchSource, LazySharedTrace, MemAccess, SharedReplayTrace, TraceSource,
};
use llc_policies::TaDrripPolicy;
use mc_metrics::MulticoreMetrics;
use trace_io::{Corpus, MappedStreamDecoder, MappedTrace, PrefetchingSource, TraceError};
use workloads::{benchmark_by_name, StudyKind, WorkloadMix};

use crate::policies::PolicyKind;

/// Outcome for one application inside one evaluated mix.
#[derive(Debug, Clone)]
pub struct PerAppOutcome {
    /// Benchmark name (Table 4 identifier).
    pub name: String,
    /// Core the application ran on.
    pub core_id: usize,
    /// Instructions per cycle achieved inside the mix.
    pub ipc: f64,
    /// IPC of the application running alone on the same hierarchy.
    pub ipc_alone: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Whether the application is classified as thrashing (Footprint-number >= 16).
    pub is_thrashing: bool,
}

impl PerAppOutcome {
    /// IPC normalized to the application's alone run.
    pub fn normalized_ipc(&self) -> f64 {
        if self.ipc_alone > 0.0 {
            self.ipc / self.ipc_alone
        } else {
            0.0
        }
    }
}

/// Result of running one policy on one workload mix.
#[derive(Debug, Clone)]
pub struct MixEvaluation {
    /// Id of the evaluated mix.
    pub mix_id: usize,
    /// Policy that was evaluated.
    pub policy: PolicyKind,
    /// Display name reported by the constructed policy instance.
    pub policy_label: String,
    /// One outcome per application, in core order.
    pub per_app: Vec<PerAppOutcome>,
    /// Multi-programmed metrics over the whole mix.
    pub metrics: MulticoreMetrics,
    /// Whole-LLC statistics of the shared run (MSHR stalls, bank queue cycles, ...).
    pub llc_global: cache_sim::llc::LlcGlobalStats,
    /// Per-bank LLC occupancy/stall statistics of the shared run, indexed by bank.
    pub llc_banks: Vec<cache_sim::bank::BankStats>,
    /// Per-core memory-system stall attribution (LLC bank queue/admission, MSHR,
    /// DRAM bank queue/admission), indexed by core.
    pub core_stalls: Vec<cache_sim::stats::CoreStallAttribution>,
    /// Cycle at which the last application reached its instruction target.
    pub final_cycle: u64,
}

impl MixEvaluation {
    /// Weighted speedup of this (mix, policy) pair.
    pub fn weighted_speedup(&self) -> f64 {
        self.metrics.weighted_speedup
    }

    /// Fairness (min/max normalized IPC) of this (mix, policy) pair.
    pub fn fairness(&self) -> f64 {
        self.metrics.fairness
    }

    /// Share of total LLC bank time requests spent stalled rather than in service
    /// (`stall / (stall + busy)` summed over banks; 0 with no LLC traffic).
    pub fn bank_stall_share(&self) -> f64 {
        cache_sim::bank::aggregate_stall_share(&self.llc_banks)
    }

    /// Total attributed memory-system stall cycles per core, indexed by core
    /// (LLC bank queue/admission + MSHR + DRAM bank queue/admission).
    pub fn core_stall_totals(&self) -> Vec<u64> {
        self.core_stalls.iter().map(|c| c.total()).collect()
    }

    /// Max/mean imbalance of the per-core attributed stall cycles
    /// ([`mc_metrics::stall_imbalance`]); 1.0 means perfectly balanced.
    pub fn stall_imbalance(&self) -> f64 {
        mc_metrics::stall_imbalance(&self.core_stall_totals())
    }

    /// Look up an application's outcome by benchmark name (first occurrence).
    pub fn app(&self, name: &str) -> Option<&PerAppOutcome> {
        self.per_app.iter().find(|a| a.name == name)
    }
}

/// How replayed (and spilled synthetic) streams are materialized: fully decoded into
/// shared buffers when they fit the arena budget, or zero-copy streamed in fixed-size
/// batches straight from the memory-mapped file when they do not.
///
/// The budget bounds *replay arena* memory for one simulated mix: a streamed mix holds
/// two rotating record buffers per core (consumer + prefetch) plus a decompression
/// scratch, sized so their sum stays at roughly half the budget. Both modes are
/// bit-identical — the corpus sweep tests and `tests/corpus_sweep.rs` enforce it — so
/// the config only trades memory against decode locality, never results.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Replay arena budget in bytes for one mix's streams (default 256 MiB). A replayed
    /// mix whose decoded size exceeds this streams from the mapping instead of being
    /// decoded up front, so sweeps run in constant memory on corpora far larger than
    /// RAM.
    pub arena_budget_bytes: u64,
    /// Decode the next batch on the background pool while the simulator consumes the
    /// current one (default on). Off means batches decode inline on first use;
    /// results are identical either way.
    pub prefetch: bool,
    /// When set (with a non-zero [`spill_capture_accesses`](Self::spill_capture_accesses)),
    /// synthetic mixes whose estimated materialized size exceeds the arena budget are
    /// captured to a `.atrc` file under this directory and zero-copy streamed back,
    /// instead of being memoized unboundedly in memory.
    pub spill_dir: Option<PathBuf>,
    /// Per-core accesses to capture when spilling a synthetic mix. Must cover the run
    /// (see [`synthetic_capture_budget`]) for the spilled replay to stay bit-identical
    /// to the live generators; 0 disables spilling.
    pub spill_capture_accesses: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            arena_budget_bytes: 256 << 20,
            prefetch: true,
            spill_dir: None,
            spill_capture_accesses: 0,
        }
    }
}

impl ReplayConfig {
    /// Defaults overridden by the `REPLAY_ARENA_BYTES`, `REPLAY_PREFETCH`
    /// (`0`/`false`/`off` disable), `REPLAY_SPILL_DIR` and `REPLAY_SPILL_ACCESSES`
    /// environment variables — the knobs `docs/repro-guide.md` documents.
    pub fn from_env() -> ReplayConfig {
        let mut cfg = ReplayConfig::default();
        if let Some(n) = std::env::var("REPLAY_ARENA_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.arena_budget_bytes = n;
        }
        if let Ok(v) = std::env::var("REPLAY_PREFETCH") {
            cfg.prefetch = !matches!(v.as_str(), "0" | "false" | "off");
        }
        if let Ok(v) = std::env::var("REPLAY_SPILL_DIR") {
            if !v.is_empty() {
                cfg.spill_dir = Some(PathBuf::from(v));
            }
        }
        if let Some(n) = std::env::var("REPLAY_SPILL_ACCESSES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.spill_capture_accesses = n;
        }
        cfg
    }

    /// Records per decode batch for a `cores`-wide streamed mix: two buffers per core
    /// rotate, so `cores × 2 × batch × 16B` — half the budget — is the steady-state
    /// arena footprint, leaving the other half for decompression scratch and slop.
    pub fn batch_records(&self, cores: usize) -> usize {
        let record = std::mem::size_of::<MemAccess>() as u64;
        let per_core = self.arena_budget_bytes / (cores.max(1) as u64 * 4 * record);
        per_core.clamp(1024, 1 << 22) as usize
    }

    /// Whether a decoded size of `bytes` fits the arena budget (and may therefore be
    /// materialized up front instead of streamed).
    fn fits_budget(&self, bytes: u64) -> bool {
        bytes <= self.arena_budget_bytes
    }
}

/// Where a mix's per-core access streams come from.
///
/// The runner itself is provenance-agnostic: [`MixSource::trace_sources`] yields one boxed
/// [`TraceSource`] per core either way, and everything downstream (system construction,
/// stats, metrics) is shared.
#[derive(Debug, Clone)]
pub enum MixSource {
    /// Live in-process generators, constructed per run (the seed behaviour).
    Synthetic(WorkloadMix),
    /// A captured `.atrc` corpus replayed from disk; `mix` is reconstructed from the
    /// file's per-core labels so alone-run normalization and reports keep working.
    Replayed {
        /// The trace file backing this mix.
        path: PathBuf,
        /// Mix identity reconstructed from the file (benchmark names per core).
        mix: WorkloadMix,
    },
}

impl MixSource {
    /// Wrap a live synthetic mix.
    pub fn synthetic(mix: WorkloadMix) -> Self {
        MixSource::Synthetic(mix)
    }

    /// Open a captured trace file as a mix source (mix id 0).
    ///
    /// The file's core labels must name Table 4 benchmarks (which `tracectl capture` and
    /// `workloads::capture_to_file` guarantee) and the core count must match one of the
    /// paper's studies, so that alone-run normalization has a generator to run.
    pub fn replayed(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::replayed_with_id(path, 0)
    }

    /// [`replayed`](MixSource::replayed) with an explicit mix id, preserved into
    /// [`MixEvaluation::mix_id`] — corpus sweeps use the manifest's ids so per-mix
    /// baselines line up across policies.
    pub fn replayed_with_id(path: impl AsRef<Path>, mix_id: usize) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let header = trace_io::read_header(&path)?;
        let cores = header.cores.len();
        let study = StudyKind::by_cores(cores).ok_or_else(|| {
            TraceError::Corrupt(format!(
                "trace has {cores} cores, which matches no study (4/8/16/20/24/32/48/64/128/256)"
            ))
        })?;
        for core in &header.cores {
            if benchmark_by_name(&core.label).is_none() {
                return Err(TraceError::Corrupt(format!(
                    "core label {:?} is not a Table 4 benchmark; cannot normalize",
                    core.label
                )));
            }
        }
        let mix = WorkloadMix {
            id: mix_id,
            study,
            benchmarks: header.cores.iter().map(|c| c.label.clone()).collect(),
        };
        Ok(MixSource::Replayed { path, mix })
    }

    /// The mix this source realizes (benchmark names per core).
    pub fn mix(&self) -> &WorkloadMix {
        match self {
            MixSource::Synthetic(mix) => mix,
            MixSource::Replayed { mix, .. } => mix,
        }
    }

    /// Provenance tag for reports.
    pub fn provenance(&self) -> String {
        match self {
            MixSource::Synthetic(_) => "synthetic".to_string(),
            MixSource::Replayed { path, .. } => format!("replayed:{}", path.display()),
        }
    }

    /// Build one trace source per core.
    ///
    /// For a replayed corpus this also validates the geometry recorded at capture time:
    /// a trace whose generators were sized for a different LLC set count would quietly
    /// realize a different workload, so a mismatch is an error rather than a footgun.
    pub fn trace_sources(
        &self,
        llc_sets: usize,
        seed: u64,
    ) -> Result<Vec<Box<dyn TraceSource>>, TraceError> {
        match self {
            MixSource::Synthetic(mix) => Ok(mix.trace_sources(llc_sets, seed)),
            MixSource::Replayed { path, .. } => {
                self.check_geometry(path, llc_sets)?;
                Ok(trace_io::open_all(path)?
                    .into_iter()
                    .map(|r| Box::new(r) as Box<dyn TraceSource>)
                    .collect())
            }
        }
    }

    fn check_geometry(&self, path: &Path, llc_sets: usize) -> Result<(), TraceError> {
        let header = trace_io::read_header(path)?;
        if header.llc_sets != 0 && header.llc_sets as usize != llc_sets {
            return Err(TraceError::Corrupt(format!(
                "corpus {} was captured for {} LLC sets but the system has {}",
                path.display(),
                header.llc_sets,
                llc_sets
            )));
        }
        Ok(())
    }

    /// Produce this mix's streams exactly once, shared across any number of policies.
    ///
    /// [`materialize_with`](MixSource::materialize_with) under the environment-derived
    /// [`ReplayConfig`].
    pub fn materialize(
        &self,
        llc_sets: usize,
        seed: u64,
    ) -> Result<MaterializedMixStreams, TraceError> {
        self.materialize_with(llc_sets, seed, &ReplayConfig::from_env())
    }

    /// Produce this mix's streams exactly once, shared across any number of policies.
    ///
    /// Synthetic mixes become [`LazySharedTrace`]s: accesses are generated on demand and
    /// memoized, so each record is produced exactly once across the whole sweep —
    /// unless `replay` requests spilling, in which case oversized synthetic mixes are
    /// captured to disk and streamed back zero-copy. Replayed mixes that fit the arena
    /// budget are batch-decoded from the mapping in one pass into shared buffers;
    /// larger ones stream in fixed-size batches so memory stays constant however big
    /// the corpus is.
    pub fn materialize_with(
        &self,
        llc_sets: usize,
        seed: u64,
        replay: &ReplayConfig,
    ) -> Result<MaterializedMixStreams, TraceError> {
        let _ctx = if sim_obs::enabled() {
            Some(sim_obs::push_context(&format!("mix{}", self.mix().id)))
        } else {
            None
        };
        let _span = sim_obs::span("sweep", "materialize");
        let streams = match self {
            MixSource::Synthetic(mix) => {
                let record = std::mem::size_of::<MemAccess>() as u64;
                let estimated =
                    replay.spill_capture_accesses * mix.benchmarks.len() as u64 * record;
                match &replay.spill_dir {
                    Some(dir)
                        if replay.spill_capture_accesses > 0 && !replay.fits_budget(estimated) =>
                    {
                        let path = spill_mix(dir, mix, llc_sets, seed, replay)?;
                        streamed_streams(&path, &mix.benchmarks, llc_sets, replay)?
                    }
                    _ => mix
                        .trace_sources(llc_sets, seed)
                        .into_iter()
                        .map(|source| MaterializedStream::Lazy(LazySharedTrace::new(source)))
                        .collect(),
                }
            }
            MixSource::Replayed { path, mix } => {
                self.check_geometry(path, llc_sets)?;
                let header = trace_io::read_header(path)?;
                let decoded_bytes =
                    header.total_records() * std::mem::size_of::<MemAccess>() as u64;
                if replay.fits_budget(decoded_bytes) {
                    let decoded = {
                        let _span = sim_obs::span("sweep", "decode");
                        trace_io::decode_all_mapped(path)?
                    };
                    decoded
                        .into_iter()
                        .zip(&mix.benchmarks)
                        .map(|(records, name)| MaterializedStream::Decoded {
                            records: Arc::new(records),
                            label: name.clone(),
                            wraps: Arc::new(AtomicU64::new(0)),
                        })
                        .collect()
                } else {
                    streamed_streams(path, &mix.benchmarks, llc_sets, replay)?
                }
            }
        };
        Ok(MaterializedMixStreams {
            mix: self.mix().clone(),
            streams,
        })
    }
}

/// Capture `mix` to a spill file under `dir` (reproducibly named by mix id, seed and
/// geometry) and return its path. An existing spill file with the same name is reused:
/// capture is deterministic, so the bytes would come out identical anyway.
fn spill_mix(
    dir: &Path,
    mix: &WorkloadMix,
    llc_sets: usize,
    seed: u64,
    replay: &ReplayConfig,
) -> Result<PathBuf, TraceError> {
    std::fs::create_dir_all(dir).map_err(TraceError::Io)?;
    let path = dir.join(format!(
        "spill_mix{}_sets{}_seed{}_n{}.atrc",
        mix.id, llc_sets, seed, replay.spill_capture_accesses
    ));
    if !path.exists() {
        let _span = sim_obs::span("sweep", "spill_capture");
        workloads::capture_to_file::<trace_io::TraceWriter>(
            &path,
            mix,
            llc_sets,
            seed,
            replay.spill_capture_accesses,
        )
        .map_err(TraceError::Io)?;
    }
    Ok(path)
}

/// Open `path` as a shared mapping and build one [`MaterializedStream::Streamed`] per
/// core, validating every stream eagerly so `sources()` cannot fail later.
fn streamed_streams(
    path: &Path,
    benchmarks: &[String],
    llc_sets: usize,
    replay: &ReplayConfig,
) -> Result<Vec<MaterializedStream>, TraceError> {
    let trace = Arc::new(MappedTrace::open(path)?);
    if trace.header().llc_sets != 0 && trace.header().llc_sets as usize != llc_sets {
        return Err(TraceError::Corrupt(format!(
            "corpus {} was captured for {} LLC sets but the system has {llc_sets}",
            path.display(),
            trace.header().llc_sets,
        )));
    }
    let batch_records = replay.batch_records(benchmarks.len());
    benchmarks
        .iter()
        .enumerate()
        .map(|(core, name)| {
            // Constructing (and dropping) a cursor validates core index and non-empty
            // stream up front, keeping `sources()` infallible like the decoded path.
            MappedStreamDecoder::new(trace.clone(), core, batch_records)?;
            Ok(MaterializedStream::Streamed {
                trace: trace.clone(),
                core,
                label: name.clone(),
                wraps: Arc::new(AtomicU64::new(0)),
                batch_records,
                prefetch: replay.prefetch,
            })
        })
        .collect()
}

/// One core's materialized stream (see [`MixSource::materialize`]).
enum MaterializedStream {
    /// Generated on demand and memoized (synthetic provenance; never wraps).
    Lazy(LazySharedTrace),
    /// Fully decoded from a corpus file (wraps at the end like `TraceReader`).
    Decoded {
        records: Arc<Vec<MemAccess>>,
        label: String,
        /// Wraps observed across every cursor handed out for this stream. A non-zero
        /// count means some simulation outran the captured budget, i.e. the replay
        /// followed the paper's re-execution methodology instead of being bit-identical
        /// to an infinite generator.
        wraps: Arc<AtomicU64>,
    },
    /// Zero-copy streamed from a shared memory-mapped corpus file in fixed-size
    /// batches — the constant-memory path for mixes larger than the arena budget.
    /// Bit-identical to [`MaterializedStream::Decoded`] (wraps eagerly the same way).
    Streamed {
        trace: Arc<MappedTrace>,
        core: usize,
        label: String,
        /// Same wrap accounting as the decoded variant.
        wraps: Arc<AtomicU64>,
        batch_records: usize,
        prefetch: bool,
    },
}

/// [`TraceSource`] adapter that mirrors a [`SharedReplayTrace`] cursor's wrap count into
/// the stream's shared counter, so the sweep engine can report budget exhaustion.
struct WrapReporting {
    inner: SharedReplayTrace,
    wraps: Arc<AtomicU64>,
    reported: u64,
}

impl TraceSource for WrapReporting {
    fn next_access(&mut self) -> MemAccess {
        let access = self.inner.next_access();
        let wraps = self.inner.wraps();
        if wraps != self.reported {
            self.wraps
                .fetch_add(wraps - self.reported, Ordering::Relaxed);
            self.reported = wraps;
        }
        access
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.reported = 0;
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

/// [`WrapReporting`] for the zero-copy streamed path: an [`ArenaReplayTrace`] cursor
/// whose wrap count is mirrored into the stream's shared counter. The label is the
/// mix's benchmark name (not the file's core label), matching the decoded variant.
struct ArenaWrapReporting {
    inner: ArenaReplayTrace,
    label: String,
    wraps: Arc<AtomicU64>,
    reported: u64,
}

impl TraceSource for ArenaWrapReporting {
    fn next_access(&mut self) -> MemAccess {
        let access = self.inner.next_access();
        let wraps = self.inner.wraps();
        if wraps != self.reported {
            self.wraps
                .fetch_add(wraps - self.reported, Ordering::Relaxed);
            self.reported = wraps;
        }
        access
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.reported = 0;
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// One mix's access streams, produced exactly once and shared across every policy of a
/// sweep (see [`MixSource::materialize`]).
pub struct MaterializedMixStreams {
    mix: WorkloadMix,
    streams: Vec<MaterializedStream>,
}

impl MaterializedMixStreams {
    /// The mix these streams realize.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// Records materialized per core so far: the decoded length for replayed streams,
    /// the generated-and-memoized high-water mark for synthetic ones.
    pub fn records_per_core(&self) -> Vec<usize> {
        self.streams
            .iter()
            .map(|s| match s {
                MaterializedStream::Lazy(t) => t.records_generated(),
                MaterializedStream::Decoded { records, .. } => records.len(),
                MaterializedStream::Streamed { trace, core, .. } => {
                    trace.header().cores[*core].records as usize
                }
            })
            .collect()
    }

    /// Total wraps observed across every cursor of every decoded stream. Zero means no
    /// simulation ever outran the captured budget, i.e. the replay was bit-identical to
    /// an infinite-generator run; non-zero means the paper's re-execution semantics
    /// kicked in. Synthetic (lazy) streams never wrap.
    pub fn replay_wraps(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| match s {
                MaterializedStream::Lazy(_) => 0,
                MaterializedStream::Decoded { wraps, .. }
                | MaterializedStream::Streamed { wraps, .. } => wraps.load(Ordering::Relaxed),
            })
            .sum()
    }

    /// Build a fresh cursor per core over the shared streams.
    pub fn sources(&self) -> Vec<Box<dyn TraceSource>> {
        self.streams
            .iter()
            .map(|stream| match stream {
                MaterializedStream::Lazy(t) => Box::new(t.cursor()) as Box<dyn TraceSource>,
                MaterializedStream::Decoded {
                    records,
                    label,
                    wraps,
                } => Box::new(WrapReporting {
                    inner: SharedReplayTrace::new(label.clone(), records.clone()),
                    wraps: wraps.clone(),
                    reported: 0,
                }) as Box<dyn TraceSource>,
                MaterializedStream::Streamed {
                    trace,
                    core,
                    label,
                    wraps,
                    batch_records,
                    prefetch,
                } => {
                    let decoder = MappedStreamDecoder::new(trace.clone(), *core, *batch_records)
                        .expect("stream was validated when materialized");
                    let source: Box<dyn BatchSource> = if *prefetch {
                        Box::new(PrefetchingSource::new(decoder))
                    } else {
                        Box::new(decoder)
                    };
                    Box::new(ArenaWrapReporting {
                        inner: ArenaReplayTrace::new(source),
                        label: label.clone(),
                        wraps: wraps.clone(),
                        reported: 0,
                    }) as Box<dyn TraceSource>
                }
            })
            .collect()
    }
}

/// Accesses to capture per core so that a corpus written to disk covers a run of
/// `instructions` instructions per core without wrapping.
///
/// Every access retires at least one instruction, and a core keeps contending on the
/// shared LLC after reaching its own target until the slowest co-runner finishes, so the
/// budget is 2× the instruction target — the same slack the capture↔replay equivalence
/// tests use. Within that budget a replayed corpus is bit-identical to live generators;
/// a corpus captured shorter wraps like the paper's re-execution methodology instead.
pub fn synthetic_capture_budget(instructions: u64) -> u64 {
    instructions.saturating_mul(2)
}

/// How many mixes to keep materialized at once: enough that the (mix, policy) grid can
/// occupy every worker (`window × policies >= threads`), few enough that peak memory
/// stays bounded at a handful of mixes. The cap of 8 only costs occupancy on hosts with
/// more than 8× as many threads as swept policies — rare for the 4-6 policy lineups the
/// figures use — while one materialized 16-core mix can run to hundreds of MB.
fn sweep_window(num_policies: usize) -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    threads.div_ceil(num_policies.max(1)).clamp(1, 8)
}

type AloneKey = (String, u64, usize, u64);

fn alone_cache() -> &'static Mutex<HashMap<AloneKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<AloneKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// IPC of a benchmark running alone on `config`'s hierarchy (single core, whole LLC),
/// memoized process-wide. The paper uses the same single-run normalization for its
/// weighted-speedup and fairness metrics.
pub fn alone_ipc(config: &SystemConfig, benchmark: &str, instructions: u64, seed: u64) -> f64 {
    let key: AloneKey = (
        benchmark.to_string(),
        config.llc.geometry.size_bytes,
        config.llc.geometry.ways,
        instructions,
    );
    if let Some(v) = alone_cache().lock().get(&key) {
        return *v;
    }
    let _ctx = if sim_obs::enabled() {
        Some(sim_obs::push_context(&format!("alone/{benchmark}")))
    } else {
        None
    };
    let _span = sim_obs::span("sweep", "alone_run");
    let spec = benchmark_by_name(benchmark).expect("known benchmark");
    let llc_sets = config.llc.geometry.num_sets();
    let trace = Box::new(spec.trace(0, llc_sets, seed));
    let policy = TaDrripPolicy::new(llc_sets, config.llc.geometry.ways, 1);
    let stats = run_alone(config, trace, policy, instructions);
    let ipc = stats.ipc();
    alone_cache().lock().insert(key, ipc);
    ipc
}

/// Pre-compute alone-run IPCs for every distinct benchmark in `mixes`, in parallel.
pub fn warm_alone_cache(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    instructions: u64,
    seed: u64,
) {
    let mut names: Vec<String> = mixes.iter().flat_map(|m| m.benchmarks.clone()).collect();
    names.sort();
    names.dedup();
    names.par_iter().for_each(|name| {
        let _ = alone_ipc(config, name, instructions, seed);
    });
}

/// Run one policy on one mix and summarize.
pub fn evaluate_mix(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let thrashing = mix.thrashing_slots();
    let built = policy.build_dispatch(config, &thrashing);
    evaluate_mix_with(config, mix, policy, built, instructions, seed)
}

/// [`evaluate_mix`] on the frozen pre-refactor hot path (`cache_sim::reference`): the
/// array-of-structs LLC and private caches with dynamic policy dispatch. Exists so the
/// `sim_perf` benchmark can measure the data-oriented rewrite against an honest
/// baseline and so tests can assert the two paths are bit-identical.
pub fn evaluate_mix_reference(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let thrashing = mix.thrashing_slots();
    let built = policy.build(config, &thrashing);
    let policy_label = built.name();
    let llc_sets = config.llc.geometry.num_sets();
    let traces = mix.trace_sources(llc_sets, seed);
    let mut system = reference_system(config.clone(), traces, built);
    let results = system.run(instructions);
    summarize(
        config,
        mix,
        policy,
        policy_label,
        results,
        instructions,
        seed,
    )
}

/// Run one policy on one [`MixSource`] (synthetic or replayed) and summarize.
///
/// The only fallible step is opening a replayed corpus; the simulation itself is shared
/// with [`evaluate_mix`].
pub fn evaluate_mix_source(
    config: &SystemConfig,
    source: &MixSource,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> Result<MixEvaluation, TraceError> {
    let mix = source.mix();
    let thrashing = mix.thrashing_slots();
    let built = policy.build_dispatch(config, &thrashing);
    let llc_sets = config.llc.geometry.num_sets();
    let traces = source.trace_sources(llc_sets, seed)?;
    Ok(evaluate_traces(
        config,
        mix,
        policy,
        built,
        traces,
        instructions,
        seed,
    ))
}

/// Run an explicitly constructed policy on one mix (used by ablation sweeps that need
/// non-standard policy configurations). Accepts any policy value — enum dispatched,
/// concrete, or the historical `Box<dyn ...>`.
pub fn evaluate_mix_with<P: LlcReplacementPolicy>(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    built: P,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let llc_sets = config.llc.geometry.num_sets();
    let traces = mix.trace_sources(llc_sets, seed);
    evaluate_traces(config, mix, policy, built, traces, instructions, seed)
}

/// Run an explicitly constructed policy over already-materialized streams — the
/// inner step of the corpus sweep engine, also used by the ablation sweeps so every
/// configuration variant shares one capture of each mix.
pub fn evaluate_prepared<P: LlcReplacementPolicy>(
    config: &SystemConfig,
    prepared: &MaterializedMixStreams,
    policy: PolicyKind,
    built: P,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    evaluate_traces(
        config,
        &prepared.mix,
        policy,
        built,
        prepared.sources(),
        instructions,
        seed,
    )
}

/// Shared tail of every evaluation: simulate `traces` under `built` and summarize against
/// the alone-run cache. `traces` may come from live generators, replayed corpora, or
/// shared in-memory buffers. Monomorphized per policy type, so enum-dispatched sweeps
/// never touch a vtable on the per-access path.
fn evaluate_traces<P: LlcReplacementPolicy>(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    built: P,
    traces: Vec<Box<dyn cache_sim::trace::TraceSource>>,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let policy_label = built.name();
    let mut system = MultiCoreSystem::new(config.clone(), traces, built);
    let results: SystemResults = system.run(instructions);
    summarize(
        config,
        mix,
        policy,
        policy_label,
        results,
        instructions,
        seed,
    )
}

/// Turn a finished simulation into a [`MixEvaluation`] by normalizing against the
/// memoized alone runs (shared by the fast and reference engines).
fn summarize(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    policy_label: String,
    results: SystemResults,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let specs = mix.specs();
    let per_app: Vec<PerAppOutcome> = results
        .per_core
        .iter()
        .zip(specs.iter())
        .map(|(core, spec)| PerAppOutcome {
            name: spec.name.to_string(),
            core_id: core.core_id,
            ipc: core.ipc(),
            ipc_alone: alone_ipc(config, spec.name, instructions, seed),
            l2_mpki: core.l2_mpki(),
            llc_mpki: core.llc_mpki(),
            is_thrashing: spec.is_thrashing(),
        })
        .collect();

    let shared: Vec<f64> = per_app.iter().map(|a| a.ipc).collect();
    let alone: Vec<f64> = per_app.iter().map(|a| a.ipc_alone).collect();
    let metrics = MulticoreMetrics::compute(&shared, &alone);

    MixEvaluation {
        mix_id: mix.id,
        policy,
        policy_label,
        per_app,
        metrics,
        llc_global: results.llc_global,
        llc_banks: results.llc_banks,
        core_stalls: results.core_stalls,
        final_cycle: results.final_cycle,
    }
}

/// Evaluate each policy on each mix with the corpus-backed parallel grid. Results are
/// ordered by (mix, policy) so callers can index deterministically.
///
/// Each mix's streams are materialized exactly once (shared in-memory capture) and every
/// policy replays them zero-copy; the (policy × mix) grid is fanned out across rayon
/// workers in bounded windows of mixes. Output is bit-identical to
/// [`evaluate_policies_serial`] regardless of worker count.
pub fn evaluate_policies_on_mixes(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Vec<MixEvaluation> {
    let sources: Vec<MixSource> = mixes
        .iter()
        .map(|m| MixSource::Synthetic(m.clone()))
        .collect();
    evaluate_policies_on_sources(config, &sources, policies, instructions, seed)
        .expect("synthetic sweeps cannot fail to materialize")
}

/// Replay wraps observed for one mix during a sweep (see [`SweepOutcome::mix_wraps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MixReplayWraps {
    /// The mix the wraps were observed on.
    pub mix_id: usize,
    /// Total wraps across every policy's replay of this mix's streams. Zero means the
    /// capture budget covered every simulation; non-zero means the paper's
    /// re-execution semantics kicked in (see `MaterializedMixStreams::replay_wraps`).
    pub wraps: u64,
}

/// Everything a sweep produced: the evaluation grid plus the replay-wrap counts, so
/// budget exhaustion lands in structured report output instead of only on stderr.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One evaluation per (mix, policy) pair, in deterministic (mix, policy) order.
    pub evaluations: Vec<MixEvaluation>,
    /// Replay wraps per mix, in sweep order (all-zero for synthetic sweeps).
    pub mix_wraps: Vec<MixReplayWraps>,
}

impl SweepOutcome {
    /// Total replay wraps across every mix of the sweep.
    pub fn total_replay_wraps(&self) -> u64 {
        self.mix_wraps.iter().map(|w| w.wraps).sum()
    }
}

/// [`evaluate_policies_on_mixes`] over arbitrary [`MixSource`]s (the corpus engine's
/// general form). Fails only when a replayed source cannot be decoded or its recorded
/// geometry mismatches `config`.
pub fn evaluate_policies_on_sources(
    config: &SystemConfig,
    sources: &[MixSource],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Result<Vec<MixEvaluation>, TraceError> {
    sweep_policies_on_sources(config, sources, policies, instructions, seed)
        .map(|outcome| outcome.evaluations)
}

/// The full corpus sweep engine: like [`evaluate_policies_on_sources`] but also
/// returning the per-mix replay-wrap counts in the [`SweepOutcome`], so callers can put
/// budget exhaustion into their structured reports (wraps are additionally echoed on
/// stderr for interactive runs).
pub fn sweep_policies_on_sources(
    config: &SystemConfig,
    sources: &[MixSource],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Result<SweepOutcome, TraceError> {
    sweep_policies_on_sources_with(
        config,
        sources,
        policies,
        instructions,
        seed,
        &ReplayConfig::from_env(),
    )
}

/// [`sweep_policies_on_sources`] with an explicit [`ReplayConfig`], so callers (and the
/// constant-memory tests) control the arena budget, prefetching and spilling instead of
/// inheriting the environment.
pub fn sweep_policies_on_sources_with(
    config: &SystemConfig,
    sources: &[MixSource],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
    replay: &ReplayConfig,
) -> Result<SweepOutcome, TraceError> {
    let mixes: Vec<WorkloadMix> = sources.iter().map(|s| s.mix().clone()).collect();
    warm_alone_cache(config, &mixes, instructions, seed);
    let llc_sets = config.llc.geometry.num_sets();
    let window = sweep_window(policies.len());
    let mut out = Vec::with_capacity(sources.len() * policies.len());
    let mut mix_wraps = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(window) {
        // Materialize this window's mixes once each, in parallel.
        let prepared: Vec<MaterializedMixStreams> = chunk
            .par_iter()
            .map(|source| source.materialize_with(llc_sets, seed, replay))
            .collect::<Vec<Result<_, _>>>()
            .into_iter()
            .collect::<Result<_, _>>()?;
        // Fan the (mix, policy) grid out; order-preserving collect keeps the result
        // deterministic whatever the worker count.
        let pairs: Vec<(usize, usize)> = (0..prepared.len())
            .flat_map(|m| (0..policies.len()).map(move |p| (m, p)))
            .collect();
        let evals: Vec<MixEvaluation> = pairs
            .par_iter()
            .map(|&(m, p)| {
                let mat = &prepared[m];
                let _ctx = if sim_obs::enabled() {
                    Some(sim_obs::push_context(&format!(
                        "mix{}/{}",
                        mat.mix().id,
                        policies[p].label()
                    )))
                } else {
                    None
                };
                let _span = sim_obs::span("sweep", "simulate");
                let built = policies[p].build_dispatch(config, &mat.mix().thrashing_slots());
                evaluate_prepared(config, mat, policies[p], built, instructions, seed)
            })
            .collect();
        out.extend(evals);
        // A wrapped replay is the paper's re-execution semantics, not an error — but it
        // does mean the corpus was captured with too small a budget to be bit-identical
        // to live generators, so it goes into the structured outcome (and is echoed
        // loudly on stderr for interactive runs).
        for mat in &prepared {
            let wraps = mat.replay_wraps();
            mix_wraps.push(MixReplayWraps {
                mix_id: mat.mix().id,
                wraps,
            });
            if wraps > 0 {
                sim_obs::obs_warn!(
                    "runner",
                    "corpus replay of mix {} wrapped {wraps} time(s): the \
                     capture budget is smaller than the run; results follow re-execution \
                     semantics and may differ from a live-generator sweep",
                    mat.mix().id
                );
            }
        }
    }
    Ok(SweepOutcome {
        evaluations: out,
        mix_wraps,
    })
}

/// Sweep every policy over a materialized [`Corpus`]: validate the corpus geometry
/// against `config`, open each entry as a replayed mix (preserving manifest mix ids),
/// decode it once, and run the parallel grid.
///
/// The seed is taken from the corpus manifest, not from the caller: the alone-run
/// normalization must run the *same* generators the corpus was captured from, so a
/// caller-supplied seed could silently normalize every result against the wrong alone
/// IPCs.
pub fn evaluate_policies_on_corpus(
    config: &SystemConfig,
    corpus: &Corpus,
    policies: &[PolicyKind],
    instructions: u64,
) -> Result<Vec<MixEvaluation>, TraceError> {
    sweep_policies_on_corpus(config, corpus, policies, instructions)
        .map(|outcome| outcome.evaluations)
}

/// [`evaluate_policies_on_corpus`] returning the full [`SweepOutcome`], including the
/// per-mix replay-wrap counts for structured reporting.
pub fn sweep_policies_on_corpus(
    config: &SystemConfig,
    corpus: &Corpus,
    policies: &[PolicyKind],
    instructions: u64,
) -> Result<SweepOutcome, TraceError> {
    sweep_policies_on_corpus_with(
        config,
        corpus,
        policies,
        instructions,
        &ReplayConfig::from_env(),
    )
}

/// [`sweep_policies_on_corpus`] with an explicit [`ReplayConfig`] (arena budget,
/// prefetching, spilling).
pub fn sweep_policies_on_corpus_with(
    config: &SystemConfig,
    corpus: &Corpus,
    policies: &[PolicyKind],
    instructions: u64,
    replay: &ReplayConfig,
) -> Result<SweepOutcome, TraceError> {
    corpus.validate_geometry(config.llc.geometry.num_sets())?;
    let sources: Vec<MixSource> = corpus
        .entries()
        .iter()
        .map(|e| MixSource::replayed_with_id(corpus.path_for(e), e.mix_id))
        .collect::<Result<_, _>>()?;
    sweep_policies_on_sources_with(
        config,
        &sources,
        policies,
        instructions,
        corpus.meta().seed,
        replay,
    )
}

/// The serial reference sweep: regenerate every mix for every policy, one evaluation at
/// a time, in (mix, policy) order.
///
/// This is the seed behaviour the corpus engine is measured against (see the
/// `policy_sweep` benchmark in `adapt-bench`) and the ground truth the parallel grid
/// must reproduce bit-for-bit.
pub fn evaluate_policies_serial(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Vec<MixEvaluation> {
    let mut out = Vec::with_capacity(mixes.len() * policies.len());
    for mix in mixes {
        for &policy in policies {
            out.push(evaluate_mix(config, mix, policy, instructions, seed));
        }
    }
    out
}

/// [`evaluate_policies_serial`] on the frozen pre-refactor hot path (see
/// [`evaluate_mix_reference`]): the "before" engine the `sim_perf` benchmark times the
/// data-oriented rewrite against, and the oracle the bit-identity tests compare with.
pub fn evaluate_policies_serial_reference(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Vec<MixEvaluation> {
    let mut out = Vec::with_capacity(mixes.len() * policies.len());
    for mix in mixes {
        for &policy in policies {
            out.push(evaluate_mix_reference(
                config,
                mix,
                policy,
                instructions,
                seed,
            ));
        }
    }
    out
}

/// Group evaluations by policy, preserving mix order: `result[policy_index][mix_index]`.
pub fn group_by_policy(
    evals: &[MixEvaluation],
    policies: &[PolicyKind],
) -> Vec<Vec<MixEvaluation>> {
    policies
        .iter()
        .map(|p| evals.iter().filter(|e| e.policy == *p).cloned().collect())
        .collect()
}

/// Per-mix speedup of `policy` over `baseline` on the weighted-speedup metric.
pub fn speedups_over_baseline(
    evals: &[MixEvaluation],
    policy: PolicyKind,
    baseline: PolicyKind,
) -> Vec<f64> {
    let base: HashMap<usize, f64> = evals
        .iter()
        .filter(|e| e.policy == baseline)
        .map(|e| (e.mix_id, e.weighted_speedup()))
        .collect();
    let mut with_ids: Vec<(usize, f64)> = evals
        .iter()
        .filter(|e| e.policy == policy)
        .map(|e| {
            let b = base.get(&e.mix_id).copied().unwrap_or(0.0);
            (
                e.mix_id,
                if b > 0.0 {
                    e.weighted_speedup() / b
                } else {
                    0.0
                },
            )
        })
        .collect();
    with_ids.sort_by_key(|(id, _)| *id);
    with_ids.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use workloads::{generate_mixes, StudyKind};

    fn smoke_setup() -> (SystemConfig, Vec<WorkloadMix>) {
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
        (cfg, mixes)
    }

    fn assert_identical(a: &[MixEvaluation], b: &[MixEvaluation]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.mix_id, y.mix_id);
            assert_eq!(x.policy, y.policy);
            assert_eq!(
                x.weighted_speedup(),
                y.weighted_speedup(),
                "weighted speedup differs for mix {} policy {:?}",
                x.mix_id,
                x.policy
            );
            for (p, q) in x.per_app.iter().zip(&y.per_app) {
                assert_eq!(p.name, q.name);
                assert_eq!(p.ipc, q.ipc, "{}: IPC differs", p.name);
                assert_eq!(p.llc_mpki, q.llc_mpki, "{}: MPKI differs", p.name);
                assert_eq!(p.l2_mpki, q.l2_mpki);
            }
            assert_eq!(x.llc_global, y.llc_global, "LLC global stats differ");
            assert_eq!(x.llc_banks, y.llc_banks, "per-bank stats differ");
            assert_eq!(
                x.core_stalls, y.core_stalls,
                "per-core stall attribution differs"
            );
            assert_eq!(x.final_cycle, y.final_cycle);
        }
    }

    #[test]
    fn evaluate_mix_produces_per_app_outcomes() {
        let (cfg, mixes) = smoke_setup();
        let eval = evaluate_mix(&cfg, &mixes[0], PolicyKind::TaDrrip, 20_000, 1);
        assert_eq!(eval.per_app.len(), 4);
        assert!(eval.weighted_speedup() > 0.0);
        for app in &eval.per_app {
            assert!(app.ipc > 0.0, "{} ipc", app.name);
            assert!(app.ipc_alone > 0.0);
            assert!(
                app.normalized_ipc() <= 1.5,
                "sharing should not wildly exceed alone IPC"
            );
        }
    }

    #[test]
    fn alone_cache_is_memoized() {
        let (cfg, mixes) = smoke_setup();
        let name = &mixes[0].benchmarks[0];
        let a = alone_ipc(&cfg, name, 10_000, 1);
        let b = alone_ipc(&cfg, name, 10_000, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_covers_every_pair_in_order() {
        let (cfg, mixes) = smoke_setup();
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
        let evals = evaluate_policies_on_mixes(&cfg, &mixes, &policies, 20_000, 1);
        assert_eq!(evals.len(), mixes.len() * policies.len());
        assert_eq!(evals[0].policy, PolicyKind::TaDrrip);
        assert_eq!(evals[1].policy, PolicyKind::AdaptBp32);
        let grouped = group_by_policy(&evals, &policies);
        assert_eq!(grouped[0].len(), mixes.len());
        let speedups = speedups_over_baseline(&evals, PolicyKind::AdaptBp32, PolicyKind::TaDrrip);
        assert_eq!(speedups.len(), mixes.len());
        assert!(speedups[0] > 0.0);
    }

    #[test]
    fn fast_path_is_bit_identical_to_the_reference_engine() {
        // The acceptance bar for the data-oriented hot-path rewrite: the SoA LLC +
        // private caches with enum policy dispatch must reproduce the retained
        // pre-refactor engine exactly — per-app IPC/MPKI, LLC global stats (including
        // interval counts), per-bank stats and final cycle.
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
        let policies = [
            PolicyKind::TaDrrip,
            PolicyKind::AdaptBp32,
            PolicyKind::Eaf,
            PolicyKind::Ship,
        ];
        let reference = evaluate_policies_serial_reference(&cfg, &mixes, &policies, 20_000, 1);
        let fast = evaluate_policies_serial(&cfg, &mixes, &policies, 20_000, 1);
        assert_identical(&reference, &fast);
        assert!(reference
            .iter()
            .all(|e| e.llc_global.intervals_completed > 0 || e.llc_global.total_demand_misses > 0));
    }

    #[test]
    fn corpus_engine_is_bit_identical_to_the_serial_path() {
        // The acceptance bar for the sweep engine: materialize-once + parallel grid must
        // reproduce the serial regenerate-per-pair reference exactly, in the same order.
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let mixes = generate_mixes(StudyKind::Cores4, 3, scale.seed());
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32, PolicyKind::Eaf];
        let serial = evaluate_policies_serial(&cfg, &mixes, &policies, 20_000, 1);
        let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, 20_000, 1);
        assert_identical(&serial, &grid);
    }

    #[test]
    fn corpus_file_sweep_is_bit_identical_to_the_serial_path() {
        // Same bar, with the grid fed from a materialized on-disk corpus.
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let llc_sets = cfg.llc.geometry.num_sets();
        let instructions = 20_000u64;
        let seed = 1u64;
        let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];

        let dir = std::env::temp_dir().join("runner_corpus_sweep");
        std::fs::remove_dir_all(&dir).ok();
        let corpus = Corpus::materialize(
            &dir,
            "test",
            &mixes,
            llc_sets,
            seed,
            synthetic_capture_budget(instructions),
        )
        .unwrap();

        let serial = evaluate_policies_serial(&cfg, &mixes, &policies, instructions, seed);
        let from_corpus =
            evaluate_policies_on_corpus(&cfg, &corpus, &policies, instructions).unwrap();
        assert_identical(&serial, &from_corpus);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undersized_corpus_wraps_and_is_counted() {
        // A corpus captured with too small a budget replays with wrap (re-execution)
        // semantics; the engine must count that instead of diverging silently.
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let instructions = 20_000u64;
        let path = std::env::temp_dir().join("runner_undersized_corpus.atrc");
        // Far fewer accesses than the run consumes.
        workloads::capture_to_file::<trace_io::TraceWriter>(&path, &mixes[0], llc_sets, 1, 64)
            .unwrap();
        let source = MixSource::replayed(&path).unwrap();
        let prepared = source.materialize(llc_sets, 1).unwrap();
        assert_eq!(prepared.replay_wraps(), 0);
        let built = PolicyKind::TaDrrip.build(&cfg, &prepared.mix().thrashing_slots());
        let eval = evaluate_prepared(&cfg, &prepared, PolicyKind::TaDrrip, built, instructions, 1);
        assert!(
            eval.weighted_speedup() > 0.0,
            "wrapped replay still evaluates"
        );
        assert!(
            prepared.replay_wraps() > 0,
            "outrunning the captured budget must be observable"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn contended_banks_keep_serial_parallel_bit_identity() {
        // The acceptance bar extends to the cycle-accounted contention model: with
        // finite ports/queues and MSHR back-pressure enabled, the parallel grid must
        // still reproduce the serial reference exactly, per-bank stats included.
        let scale = ExperimentScale::Smoke;
        let mut cfg = scale.system_config(StudyKind::Cores4);
        cfg.llc.contention = cache_sim::config::BankContentionConfig::contended(2, 4);
        cfg.dram.contention = cache_sim::config::BankContentionConfig::contended(2, 4);
        let mixes = generate_mixes(StudyKind::Cores4, 2, scale.seed());
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
        let serial = evaluate_policies_serial(&cfg, &mixes, &policies, 20_000, 1);
        let grid = evaluate_policies_on_mixes(&cfg, &mixes, &policies, 20_000, 1);
        assert_identical(&serial, &grid);
        // The contended model actually produced per-bank statistics.
        assert!(grid
            .iter()
            .all(|e| e.llc_banks.iter().any(|b| b.requests > 0)));
    }

    #[test]
    fn sweep_outcome_reports_wraps_per_mix() {
        // An undersized corpus must surface its wrap count in the structured outcome,
        // not only on stderr; synthetic sweeps report zero wraps for every mix.
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let path = std::env::temp_dir().join("runner_sweep_outcome_wraps.atrc");
        workloads::capture_to_file::<trace_io::TraceWriter>(&path, &mixes[0], llc_sets, 1, 64)
            .unwrap();
        let sources = vec![MixSource::replayed(&path).unwrap()];
        let outcome =
            sweep_policies_on_sources(&cfg, &sources, &[PolicyKind::TaDrrip], 20_000, 1).unwrap();
        assert_eq!(outcome.mix_wraps.len(), 1);
        assert_eq!(outcome.mix_wraps[0].mix_id, 0);
        assert!(
            outcome.mix_wraps[0].wraps > 0,
            "undersized corpus must wrap"
        );
        assert_eq!(outcome.total_replay_wraps(), outcome.mix_wraps[0].wraps);
        assert_eq!(outcome.evaluations.len(), 1);
        std::fs::remove_file(path).ok();

        let synthetic = vec![MixSource::synthetic(mixes[0].clone())];
        let outcome =
            sweep_policies_on_sources(&cfg, &synthetic, &[PolicyKind::TaDrrip], 20_000, 1).unwrap();
        assert_eq!(outcome.total_replay_wraps(), 0);
    }

    #[test]
    fn corpus_sweep_rejects_geometry_mismatch() {
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let llc_sets = cfg.llc.geometry.num_sets();
        let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
        let dir = std::env::temp_dir().join("runner_corpus_geometry");
        std::fs::remove_dir_all(&dir).ok();
        // Captured for twice the set count the system has.
        let corpus = Corpus::materialize(&dir, "test", &mixes, llc_sets * 2, 1, 500).unwrap();
        let err =
            evaluate_policies_on_corpus(&cfg, &corpus, &[PolicyKind::TaDrrip], 10_000).unwrap_err();
        assert!(err.to_string().contains("LLC sets"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayed_mix_source_reproduces_the_synthetic_evaluation() {
        let (cfg, mixes) = smoke_setup();
        let mix = mixes[0].clone();
        let llc_sets = cfg.llc.geometry.num_sets();
        let seed = 1u64;
        let instructions = 20_000u64;
        // Capture enough accesses that no core wraps before the live run finishes: every
        // access is at least one instruction, so 2x the instruction budget is ample slack
        // for the simulator's end-of-run overshoot.
        let path = std::env::temp_dir().join("runner_replay_equivalence.atrc");
        workloads::capture_to_file::<trace_io::TraceWriter>(
            &path,
            &mix,
            llc_sets,
            seed,
            2 * instructions,
        )
        .unwrap();

        let live = evaluate_mix(&cfg, &mix, PolicyKind::TaDrrip, instructions, seed);
        let source = MixSource::replayed(&path).unwrap();
        assert_eq!(source.mix().benchmarks, mix.benchmarks);
        let replayed =
            evaluate_mix_source(&cfg, &source, PolicyKind::TaDrrip, instructions, seed).unwrap();

        for (a, b) in live.per_app.iter().zip(&replayed.per_app) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ipc, b.ipc, "{}: replayed IPC differs", a.name);
            assert_eq!(a.llc_mpki, b.llc_mpki, "{}: replayed MPKI differs", a.name);
        }
        assert_eq!(live.weighted_speedup(), replayed.weighted_speedup());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn materialized_streams_match_live_generators() {
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let source = MixSource::synthetic(mixes[0].clone());
        let prepared = source.materialize(llc_sets, 7).unwrap();
        // Two cursor sets over the same materialization: generation happens once.
        for sources in [prepared.sources(), prepared.sources()] {
            let mut fresh = mixes[0].trace_sources(llc_sets, 7);
            for (mut shared, live) in sources.into_iter().zip(fresh.iter_mut()) {
                assert_eq!(shared.label(), live.label());
                for _ in 0..250 {
                    assert_eq!(shared.next_access(), live.next_access());
                }
            }
        }
        // Nothing beyond the consumed prefix (rounded up to a chunk) was generated.
        for records in prepared.records_per_core() {
            assert!((250..=8192).contains(&records), "generated {records}");
        }
    }

    #[test]
    fn replayed_mix_source_rejects_geometry_mismatch() {
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let path = std::env::temp_dir().join("runner_replay_geometry.atrc");
        // Capture at a deliberately different set count than the system uses.
        workloads::capture_to_file::<trace_io::TraceWriter>(&path, &mixes[0], llc_sets * 2, 1, 100)
            .unwrap();
        let source = MixSource::replayed(&path).unwrap();
        let err = match source.trace_sources(llc_sets, 1) {
            Err(e) => e,
            Ok(_) => panic!("geometry mismatch must be rejected"),
        };
        assert!(err.to_string().contains("LLC sets"), "got: {err}");
        // materialize() enforces the same check.
        assert!(source.materialize(llc_sets, 1).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replayed_mix_source_rejects_garbage_files() {
        let path = std::env::temp_dir().join("runner_replay_garbage.atrc");
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(MixSource::replayed(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streamed_replay_is_bit_identical_to_decoded_replay() {
        // The zero-copy acceptance bar inside the runner: forcing a corpus onto the
        // streamed path (tiny arena budget), with and without prefetching, must
        // reproduce the fully-decoded sweep exactly — results and wrap counts.
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let instructions = 20_000u64;
        let path = std::env::temp_dir().join("runner_streamed_identity.atrc");
        workloads::capture_to_file::<trace_io::TraceWriter>(
            &path,
            &mixes[0],
            llc_sets,
            1,
            synthetic_capture_budget(instructions),
        )
        .unwrap();
        let sources = vec![MixSource::replayed(&path).unwrap()];
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];

        let decoded = ReplayConfig::default();
        assert!(decoded.fits_budget(std::fs::metadata(&path).unwrap().len()));
        let tiny = ReplayConfig {
            arena_budget_bytes: 64 << 10,
            ..ReplayConfig::default()
        };
        let tiny_no_prefetch = ReplayConfig {
            prefetch: false,
            ..tiny.clone()
        };

        let baseline =
            sweep_policies_on_sources_with(&cfg, &sources, &policies, instructions, 1, &decoded)
                .unwrap();
        for replay in [&tiny, &tiny_no_prefetch] {
            let streamed =
                sweep_policies_on_sources_with(&cfg, &sources, &policies, instructions, 1, replay)
                    .unwrap();
            assert_identical(&baseline.evaluations, &streamed.evaluations);
            assert_eq!(baseline.mix_wraps, streamed.mix_wraps);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spilled_synthetic_mix_matches_the_lazy_path() {
        // Spilling a synthetic mix to disk and zero-copy streaming it back must be
        // invisible in the results, provided the capture budget covers the run.
        let (cfg, mixes) = smoke_setup();
        let instructions = 20_000u64;
        let policies = [PolicyKind::TaDrrip];
        let sources = vec![MixSource::synthetic(mixes[0].clone())];
        let dir = std::env::temp_dir().join("runner_spill_test");
        std::fs::remove_dir_all(&dir).ok();

        let lazy = sweep_policies_on_sources_with(
            &cfg,
            &sources,
            &policies,
            instructions,
            1,
            &ReplayConfig::default(),
        )
        .unwrap();
        let spilling = ReplayConfig {
            arena_budget_bytes: 64 << 10,
            spill_dir: Some(dir.clone()),
            spill_capture_accesses: synthetic_capture_budget(instructions),
            ..ReplayConfig::default()
        };
        let spilled =
            sweep_policies_on_sources_with(&cfg, &sources, &policies, instructions, 1, &spilling)
                .unwrap();
        assert_identical(&lazy.evaluations, &spilled.evaluations);
        assert_eq!(spilled.total_replay_wraps(), 0, "budget must cover the run");
        assert!(
            std::fs::read_dir(&dir).unwrap().count() == 1,
            "the mix must actually have been spilled to disk"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (cfg, mixes) = smoke_setup();
        let a = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        let b = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        assert_eq!(a.weighted_speedup(), b.weighted_speedup());
        assert_eq!(a.per_app.len(), b.per_app.len());
        for (x, y) in a.per_app.iter().zip(&b.per_app) {
            assert_eq!(x.ipc, y.ipc);
            assert_eq!(x.llc_mpki, y.llc_mpki);
        }
    }
}
