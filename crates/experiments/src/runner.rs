//! Workload execution engine shared by every experiment.
//!
//! The runner turns (system configuration, workload mix, policy) triples into
//! [`MixEvaluation`]s: per-application IPC and MPKI plus the multi-programmed metrics of
//! `mc-metrics`, with the weighted speedup normalized by cached single-application
//! ("alone") runs exactly as the paper does. Independent (mix, policy) pairs are evaluated
//! in parallel with rayon — they share nothing except the read-only configuration and the
//! alone-run cache.

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::Mutex;
use rayon::prelude::*;

use cache_sim::config::SystemConfig;
use cache_sim::single::run_alone;
use cache_sim::stats::SystemResults;
use cache_sim::system::MultiCoreSystem;
use llc_policies::TaDrripPolicy;
use mc_metrics::MulticoreMetrics;
use workloads::{benchmark_by_name, WorkloadMix};

use crate::policies::PolicyKind;

/// Outcome for one application inside one evaluated mix.
#[derive(Debug, Clone)]
pub struct PerAppOutcome {
    pub name: String,
    pub core_id: usize,
    pub ipc: f64,
    pub ipc_alone: f64,
    pub l2_mpki: f64,
    pub llc_mpki: f64,
    pub is_thrashing: bool,
}

impl PerAppOutcome {
    /// IPC normalized to the application's alone run.
    pub fn normalized_ipc(&self) -> f64 {
        if self.ipc_alone > 0.0 {
            self.ipc / self.ipc_alone
        } else {
            0.0
        }
    }
}

/// Result of running one policy on one workload mix.
#[derive(Debug, Clone)]
pub struct MixEvaluation {
    pub mix_id: usize,
    pub policy: PolicyKind,
    pub policy_label: String,
    pub per_app: Vec<PerAppOutcome>,
    pub metrics: MulticoreMetrics,
}

impl MixEvaluation {
    /// Weighted speedup of this (mix, policy) pair.
    pub fn weighted_speedup(&self) -> f64 {
        self.metrics.weighted_speedup
    }

    /// Look up an application's outcome by benchmark name (first occurrence).
    pub fn app(&self, name: &str) -> Option<&PerAppOutcome> {
        self.per_app.iter().find(|a| a.name == name)
    }
}

type AloneKey = (String, u64, usize, u64);

fn alone_cache() -> &'static Mutex<HashMap<AloneKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<AloneKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// IPC of a benchmark running alone on `config`'s hierarchy (single core, whole LLC),
/// memoized process-wide. The paper uses the same single-run normalization for its
/// weighted-speedup and fairness metrics.
pub fn alone_ipc(config: &SystemConfig, benchmark: &str, instructions: u64, seed: u64) -> f64 {
    let key: AloneKey = (
        benchmark.to_string(),
        config.llc.geometry.size_bytes,
        config.llc.geometry.ways,
        instructions,
    );
    if let Some(v) = alone_cache().lock().get(&key) {
        return *v;
    }
    let spec = benchmark_by_name(benchmark).expect("known benchmark");
    let llc_sets = config.llc.geometry.num_sets();
    let trace = Box::new(spec.trace(0, llc_sets, seed));
    let policy = Box::new(TaDrripPolicy::new(llc_sets, config.llc.geometry.ways, 1));
    let stats = run_alone(config, trace, policy, instructions);
    let ipc = stats.ipc();
    alone_cache().lock().insert(key, ipc);
    ipc
}

/// Pre-compute alone-run IPCs for every distinct benchmark in `mixes`, in parallel.
pub fn warm_alone_cache(config: &SystemConfig, mixes: &[WorkloadMix], instructions: u64, seed: u64) {
    let mut names: Vec<String> = mixes.iter().flat_map(|m| m.benchmarks.clone()).collect();
    names.sort();
    names.dedup();
    names
        .par_iter()
        .for_each(|name| {
            let _ = alone_ipc(config, name, instructions, seed);
        });
}

/// Run one policy on one mix and summarize.
pub fn evaluate_mix(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let thrashing = mix.thrashing_slots();
    let built = policy.build(config, &thrashing);
    evaluate_mix_with(config, mix, policy, built, instructions, seed)
}

/// Run an explicitly constructed policy on one mix (used by ablation sweeps that need
/// non-standard policy configurations).
pub fn evaluate_mix_with(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    built: Box<dyn cache_sim::replacement::LlcReplacementPolicy>,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let llc_sets = config.llc.geometry.num_sets();
    let traces = mix.trace_sources(llc_sets, seed);
    let policy_label = built.name();
    let mut system = MultiCoreSystem::new(config.clone(), traces, built);
    let results: SystemResults = system.run(instructions);

    let specs = mix.specs();
    let per_app: Vec<PerAppOutcome> = results
        .per_core
        .iter()
        .zip(specs.iter())
        .map(|(core, spec)| PerAppOutcome {
            name: spec.name.to_string(),
            core_id: core.core_id,
            ipc: core.ipc(),
            ipc_alone: alone_ipc(config, spec.name, instructions, seed),
            l2_mpki: core.l2_mpki(),
            llc_mpki: core.llc_mpki(),
            is_thrashing: spec.is_thrashing(),
        })
        .collect();

    let shared: Vec<f64> = per_app.iter().map(|a| a.ipc).collect();
    let alone: Vec<f64> = per_app.iter().map(|a| a.ipc_alone).collect();
    let metrics = MulticoreMetrics::compute(&shared, &alone);

    MixEvaluation { mix_id: mix.id, policy, policy_label, per_app, metrics }
}

/// Evaluate each policy on each mix, in parallel. Results are ordered by (mix, policy) so
/// callers can index deterministically.
pub fn evaluate_policies_on_mixes(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Vec<MixEvaluation> {
    warm_alone_cache(config, mixes, instructions, seed);
    let pairs: Vec<(usize, usize)> = (0..mixes.len())
        .flat_map(|m| (0..policies.len()).map(move |p| (m, p)))
        .collect();
    let mut evals: Vec<(usize, MixEvaluation)> = pairs
        .par_iter()
        .map(|&(m, p)| {
            let eval = evaluate_mix(config, &mixes[m], policies[p], instructions, seed);
            (m * policies.len() + p, eval)
        })
        .collect();
    evals.sort_by_key(|(i, _)| *i);
    evals.into_iter().map(|(_, e)| e).collect()
}

/// Group evaluations by policy, preserving mix order: `result[policy_index][mix_index]`.
pub fn group_by_policy(
    evals: &[MixEvaluation],
    policies: &[PolicyKind],
) -> Vec<Vec<MixEvaluation>> {
    policies
        .iter()
        .map(|p| evals.iter().filter(|e| e.policy == *p).cloned().collect())
        .collect()
}

/// Per-mix speedup of `policy` over `baseline` on the weighted-speedup metric.
pub fn speedups_over_baseline(
    evals: &[MixEvaluation],
    policy: PolicyKind,
    baseline: PolicyKind,
) -> Vec<f64> {
    let base: HashMap<usize, f64> = evals
        .iter()
        .filter(|e| e.policy == baseline)
        .map(|e| (e.mix_id, e.weighted_speedup()))
        .collect();
    let mut with_ids: Vec<(usize, f64)> = evals
        .iter()
        .filter(|e| e.policy == policy)
        .map(|e| {
            let b = base.get(&e.mix_id).copied().unwrap_or(0.0);
            (e.mix_id, if b > 0.0 { e.weighted_speedup() / b } else { 0.0 })
        })
        .collect();
    with_ids.sort_by_key(|(id, _)| *id);
    with_ids.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use workloads::{generate_mixes, StudyKind};

    fn smoke_setup() -> (SystemConfig, Vec<WorkloadMix>) {
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
        (cfg, mixes)
    }

    #[test]
    fn evaluate_mix_produces_per_app_outcomes() {
        let (cfg, mixes) = smoke_setup();
        let eval = evaluate_mix(&cfg, &mixes[0], PolicyKind::TaDrrip, 20_000, 1);
        assert_eq!(eval.per_app.len(), 4);
        assert!(eval.weighted_speedup() > 0.0);
        for app in &eval.per_app {
            assert!(app.ipc > 0.0, "{} ipc", app.name);
            assert!(app.ipc_alone > 0.0);
            assert!(app.normalized_ipc() <= 1.5, "sharing should not wildly exceed alone IPC");
        }
    }

    #[test]
    fn alone_cache_is_memoized() {
        let (cfg, mixes) = smoke_setup();
        let name = &mixes[0].benchmarks[0];
        let a = alone_ipc(&cfg, name, 10_000, 1);
        let b = alone_ipc(&cfg, name, 10_000, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_covers_every_pair_in_order() {
        let (cfg, mixes) = smoke_setup();
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
        let evals = evaluate_policies_on_mixes(&cfg, &mixes, &policies, 20_000, 1);
        assert_eq!(evals.len(), mixes.len() * policies.len());
        assert_eq!(evals[0].policy, PolicyKind::TaDrrip);
        assert_eq!(evals[1].policy, PolicyKind::AdaptBp32);
        let grouped = group_by_policy(&evals, &policies);
        assert_eq!(grouped[0].len(), mixes.len());
        let speedups = speedups_over_baseline(&evals, PolicyKind::AdaptBp32, PolicyKind::TaDrrip);
        assert_eq!(speedups.len(), mixes.len());
        assert!(speedups[0] > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (cfg, mixes) = smoke_setup();
        let a = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        let b = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        assert_eq!(a.weighted_speedup(), b.weighted_speedup());
        assert_eq!(a.per_app.len(), b.per_app.len());
        for (x, y) in a.per_app.iter().zip(&b.per_app) {
            assert_eq!(x.ipc, y.ipc);
            assert_eq!(x.llc_mpki, y.llc_mpki);
        }
    }
}
