//! Workload execution engine shared by every experiment.
//!
//! The runner turns (system configuration, workload mix, policy) triples into
//! [`MixEvaluation`]s: per-application IPC and MPKI plus the multi-programmed metrics of
//! `mc-metrics`, with the weighted speedup normalized by cached single-application
//! ("alone") runs exactly as the paper does. Independent (mix, policy) pairs are evaluated
//! in parallel with rayon — they share nothing except the read-only configuration and the
//! alone-run cache.
//!
//! Workloads come from two provenances, unified by [`MixSource`]: live synthetic
//! generators ([`MixSource::Synthetic`]) and captured binary traces replayed from disk
//! ([`MixSource::Replayed`], backed by `trace-io`). Because capture is lossless and
//! generators reset exactly, both provenances of the same mix produce bit-identical
//! per-application IPC/MPKI.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use parking_lot::Mutex;
use rayon::prelude::*;

use cache_sim::config::SystemConfig;
use cache_sim::single::run_alone;
use cache_sim::stats::SystemResults;
use cache_sim::system::MultiCoreSystem;
use cache_sim::trace::TraceSource;
use llc_policies::TaDrripPolicy;
use mc_metrics::MulticoreMetrics;
use trace_io::TraceError;
use workloads::{benchmark_by_name, StudyKind, WorkloadMix};

use crate::policies::PolicyKind;

/// Outcome for one application inside one evaluated mix.
#[derive(Debug, Clone)]
pub struct PerAppOutcome {
    pub name: String,
    pub core_id: usize,
    pub ipc: f64,
    pub ipc_alone: f64,
    pub l2_mpki: f64,
    pub llc_mpki: f64,
    pub is_thrashing: bool,
}

impl PerAppOutcome {
    /// IPC normalized to the application's alone run.
    pub fn normalized_ipc(&self) -> f64 {
        if self.ipc_alone > 0.0 {
            self.ipc / self.ipc_alone
        } else {
            0.0
        }
    }
}

/// Result of running one policy on one workload mix.
#[derive(Debug, Clone)]
pub struct MixEvaluation {
    pub mix_id: usize,
    pub policy: PolicyKind,
    pub policy_label: String,
    pub per_app: Vec<PerAppOutcome>,
    pub metrics: MulticoreMetrics,
}

impl MixEvaluation {
    /// Weighted speedup of this (mix, policy) pair.
    pub fn weighted_speedup(&self) -> f64 {
        self.metrics.weighted_speedup
    }

    /// Look up an application's outcome by benchmark name (first occurrence).
    pub fn app(&self, name: &str) -> Option<&PerAppOutcome> {
        self.per_app.iter().find(|a| a.name == name)
    }
}

/// Where a mix's per-core access streams come from.
///
/// The runner itself is provenance-agnostic: [`MixSource::trace_sources`] yields one boxed
/// [`TraceSource`] per core either way, and everything downstream (system construction,
/// stats, metrics) is shared.
#[derive(Debug, Clone)]
pub enum MixSource {
    /// Live in-process generators, constructed per run (the seed behaviour).
    Synthetic(WorkloadMix),
    /// A captured `.atrc` corpus replayed from disk; `mix` is reconstructed from the
    /// file's per-core labels so alone-run normalization and reports keep working.
    Replayed { path: PathBuf, mix: WorkloadMix },
}

impl MixSource {
    /// Wrap a live synthetic mix.
    pub fn synthetic(mix: WorkloadMix) -> Self {
        MixSource::Synthetic(mix)
    }

    /// Open a captured trace file as a mix source.
    ///
    /// The file's core labels must name Table 4 benchmarks (which `tracectl capture` and
    /// `workloads::capture_to_file` guarantee) and the core count must match one of the
    /// paper's studies, so that alone-run normalization has a generator to run.
    pub fn replayed(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let header = trace_io::read_header(&path)?;
        let cores = header.cores.len();
        let study = StudyKind::all()
            .into_iter()
            .find(|s| s.num_cores() == cores)
            .ok_or_else(|| {
                TraceError::Corrupt(format!(
                    "trace has {cores} cores, which matches no study (4/8/16/20/24)"
                ))
            })?;
        for core in &header.cores {
            if benchmark_by_name(&core.label).is_none() {
                return Err(TraceError::Corrupt(format!(
                    "core label {:?} is not a Table 4 benchmark; cannot normalize",
                    core.label
                )));
            }
        }
        let mix = WorkloadMix {
            id: 0,
            study,
            benchmarks: header.cores.iter().map(|c| c.label.clone()).collect(),
        };
        Ok(MixSource::Replayed { path, mix })
    }

    /// The mix this source realizes (benchmark names per core).
    pub fn mix(&self) -> &WorkloadMix {
        match self {
            MixSource::Synthetic(mix) => mix,
            MixSource::Replayed { mix, .. } => mix,
        }
    }

    /// Provenance tag for reports.
    pub fn provenance(&self) -> String {
        match self {
            MixSource::Synthetic(_) => "synthetic".to_string(),
            MixSource::Replayed { path, .. } => format!("replayed:{}", path.display()),
        }
    }

    /// Build one trace source per core.
    ///
    /// For a replayed corpus this also validates the geometry recorded at capture time:
    /// a trace whose generators were sized for a different LLC set count would quietly
    /// realize a different workload, so a mismatch is an error rather than a footgun.
    pub fn trace_sources(
        &self,
        llc_sets: usize,
        seed: u64,
    ) -> Result<Vec<Box<dyn TraceSource>>, TraceError> {
        match self {
            MixSource::Synthetic(mix) => Ok(mix.trace_sources(llc_sets, seed)),
            MixSource::Replayed { path, .. } => {
                let header = trace_io::read_header(path)?;
                if header.llc_sets != 0 && header.llc_sets as usize != llc_sets {
                    return Err(TraceError::Corrupt(format!(
                        "corpus {} was captured for {} LLC sets but the system has {}",
                        path.display(),
                        header.llc_sets,
                        llc_sets
                    )));
                }
                Ok(trace_io::open_all(path)?
                    .into_iter()
                    .map(|r| Box::new(r) as Box<dyn TraceSource>)
                    .collect())
            }
        }
    }
}

type AloneKey = (String, u64, usize, u64);

fn alone_cache() -> &'static Mutex<HashMap<AloneKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<AloneKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// IPC of a benchmark running alone on `config`'s hierarchy (single core, whole LLC),
/// memoized process-wide. The paper uses the same single-run normalization for its
/// weighted-speedup and fairness metrics.
pub fn alone_ipc(config: &SystemConfig, benchmark: &str, instructions: u64, seed: u64) -> f64 {
    let key: AloneKey = (
        benchmark.to_string(),
        config.llc.geometry.size_bytes,
        config.llc.geometry.ways,
        instructions,
    );
    if let Some(v) = alone_cache().lock().get(&key) {
        return *v;
    }
    let spec = benchmark_by_name(benchmark).expect("known benchmark");
    let llc_sets = config.llc.geometry.num_sets();
    let trace = Box::new(spec.trace(0, llc_sets, seed));
    let policy = Box::new(TaDrripPolicy::new(llc_sets, config.llc.geometry.ways, 1));
    let stats = run_alone(config, trace, policy, instructions);
    let ipc = stats.ipc();
    alone_cache().lock().insert(key, ipc);
    ipc
}

/// Pre-compute alone-run IPCs for every distinct benchmark in `mixes`, in parallel.
pub fn warm_alone_cache(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    instructions: u64,
    seed: u64,
) {
    let mut names: Vec<String> = mixes.iter().flat_map(|m| m.benchmarks.clone()).collect();
    names.sort();
    names.dedup();
    names.par_iter().for_each(|name| {
        let _ = alone_ipc(config, name, instructions, seed);
    });
}

/// Run one policy on one mix and summarize.
pub fn evaluate_mix(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let thrashing = mix.thrashing_slots();
    let built = policy.build(config, &thrashing);
    evaluate_mix_with(config, mix, policy, built, instructions, seed)
}

/// Run one policy on one [`MixSource`] (synthetic or replayed) and summarize.
///
/// The only fallible step is opening a replayed corpus; the simulation itself is shared
/// with [`evaluate_mix`].
pub fn evaluate_mix_source(
    config: &SystemConfig,
    source: &MixSource,
    policy: PolicyKind,
    instructions: u64,
    seed: u64,
) -> Result<MixEvaluation, TraceError> {
    let mix = source.mix();
    let thrashing = mix.thrashing_slots();
    let built = policy.build(config, &thrashing);
    let llc_sets = config.llc.geometry.num_sets();
    let traces = source.trace_sources(llc_sets, seed)?;
    Ok(evaluate_traces(
        config,
        mix,
        policy,
        built,
        traces,
        instructions,
        seed,
    ))
}

/// Run an explicitly constructed policy on one mix (used by ablation sweeps that need
/// non-standard policy configurations).
pub fn evaluate_mix_with(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    built: Box<dyn cache_sim::replacement::LlcReplacementPolicy>,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let llc_sets = config.llc.geometry.num_sets();
    let traces = mix.trace_sources(llc_sets, seed);
    evaluate_traces(config, mix, policy, built, traces, instructions, seed)
}

/// Shared tail of every evaluation: simulate `traces` under `built` and summarize against
/// the alone-run cache. `traces` may come from live generators or replayed corpora.
fn evaluate_traces(
    config: &SystemConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    built: Box<dyn cache_sim::replacement::LlcReplacementPolicy>,
    traces: Vec<Box<dyn cache_sim::trace::TraceSource>>,
    instructions: u64,
    seed: u64,
) -> MixEvaluation {
    let policy_label = built.name();
    let mut system = MultiCoreSystem::new(config.clone(), traces, built);
    let results: SystemResults = system.run(instructions);

    let specs = mix.specs();
    let per_app: Vec<PerAppOutcome> = results
        .per_core
        .iter()
        .zip(specs.iter())
        .map(|(core, spec)| PerAppOutcome {
            name: spec.name.to_string(),
            core_id: core.core_id,
            ipc: core.ipc(),
            ipc_alone: alone_ipc(config, spec.name, instructions, seed),
            l2_mpki: core.l2_mpki(),
            llc_mpki: core.llc_mpki(),
            is_thrashing: spec.is_thrashing(),
        })
        .collect();

    let shared: Vec<f64> = per_app.iter().map(|a| a.ipc).collect();
    let alone: Vec<f64> = per_app.iter().map(|a| a.ipc_alone).collect();
    let metrics = MulticoreMetrics::compute(&shared, &alone);

    MixEvaluation {
        mix_id: mix.id,
        policy,
        policy_label,
        per_app,
        metrics,
    }
}

/// Evaluate each policy on each mix, in parallel. Results are ordered by (mix, policy) so
/// callers can index deterministically.
pub fn evaluate_policies_on_mixes(
    config: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[PolicyKind],
    instructions: u64,
    seed: u64,
) -> Vec<MixEvaluation> {
    warm_alone_cache(config, mixes, instructions, seed);
    let pairs: Vec<(usize, usize)> = (0..mixes.len())
        .flat_map(|m| (0..policies.len()).map(move |p| (m, p)))
        .collect();
    let mut evals: Vec<(usize, MixEvaluation)> = pairs
        .par_iter()
        .map(|&(m, p)| {
            let eval = evaluate_mix(config, &mixes[m], policies[p], instructions, seed);
            (m * policies.len() + p, eval)
        })
        .collect();
    evals.sort_by_key(|(i, _)| *i);
    evals.into_iter().map(|(_, e)| e).collect()
}

/// Group evaluations by policy, preserving mix order: `result[policy_index][mix_index]`.
pub fn group_by_policy(
    evals: &[MixEvaluation],
    policies: &[PolicyKind],
) -> Vec<Vec<MixEvaluation>> {
    policies
        .iter()
        .map(|p| evals.iter().filter(|e| e.policy == *p).cloned().collect())
        .collect()
}

/// Per-mix speedup of `policy` over `baseline` on the weighted-speedup metric.
pub fn speedups_over_baseline(
    evals: &[MixEvaluation],
    policy: PolicyKind,
    baseline: PolicyKind,
) -> Vec<f64> {
    let base: HashMap<usize, f64> = evals
        .iter()
        .filter(|e| e.policy == baseline)
        .map(|e| (e.mix_id, e.weighted_speedup()))
        .collect();
    let mut with_ids: Vec<(usize, f64)> = evals
        .iter()
        .filter(|e| e.policy == policy)
        .map(|e| {
            let b = base.get(&e.mix_id).copied().unwrap_or(0.0);
            (
                e.mix_id,
                if b > 0.0 {
                    e.weighted_speedup() / b
                } else {
                    0.0
                },
            )
        })
        .collect();
    with_ids.sort_by_key(|(id, _)| *id);
    with_ids.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use workloads::{generate_mixes, StudyKind};

    fn smoke_setup() -> (SystemConfig, Vec<WorkloadMix>) {
        let scale = ExperimentScale::Smoke;
        let cfg = scale.system_config(StudyKind::Cores4);
        let mixes = generate_mixes(StudyKind::Cores4, 1, scale.seed());
        (cfg, mixes)
    }

    #[test]
    fn evaluate_mix_produces_per_app_outcomes() {
        let (cfg, mixes) = smoke_setup();
        let eval = evaluate_mix(&cfg, &mixes[0], PolicyKind::TaDrrip, 20_000, 1);
        assert_eq!(eval.per_app.len(), 4);
        assert!(eval.weighted_speedup() > 0.0);
        for app in &eval.per_app {
            assert!(app.ipc > 0.0, "{} ipc", app.name);
            assert!(app.ipc_alone > 0.0);
            assert!(
                app.normalized_ipc() <= 1.5,
                "sharing should not wildly exceed alone IPC"
            );
        }
    }

    #[test]
    fn alone_cache_is_memoized() {
        let (cfg, mixes) = smoke_setup();
        let name = &mixes[0].benchmarks[0];
        let a = alone_ipc(&cfg, name, 10_000, 1);
        let b = alone_ipc(&cfg, name, 10_000, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_covers_every_pair_in_order() {
        let (cfg, mixes) = smoke_setup();
        let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
        let evals = evaluate_policies_on_mixes(&cfg, &mixes, &policies, 20_000, 1);
        assert_eq!(evals.len(), mixes.len() * policies.len());
        assert_eq!(evals[0].policy, PolicyKind::TaDrrip);
        assert_eq!(evals[1].policy, PolicyKind::AdaptBp32);
        let grouped = group_by_policy(&evals, &policies);
        assert_eq!(grouped[0].len(), mixes.len());
        let speedups = speedups_over_baseline(&evals, PolicyKind::AdaptBp32, PolicyKind::TaDrrip);
        assert_eq!(speedups.len(), mixes.len());
        assert!(speedups[0] > 0.0);
    }

    #[test]
    fn replayed_mix_source_reproduces_the_synthetic_evaluation() {
        let (cfg, mixes) = smoke_setup();
        let mix = mixes[0].clone();
        let llc_sets = cfg.llc.geometry.num_sets();
        let seed = 1u64;
        let instructions = 20_000u64;
        // Capture enough accesses that no core wraps before the live run finishes: every
        // access is at least one instruction, so 2x the instruction budget is ample slack
        // for the simulator's end-of-run overshoot.
        let path = std::env::temp_dir().join("runner_replay_equivalence.atrc");
        workloads::capture_to_file::<trace_io::TraceWriter>(
            &path,
            &mix,
            llc_sets,
            seed,
            2 * instructions,
        )
        .unwrap();

        let live = evaluate_mix(&cfg, &mix, PolicyKind::TaDrrip, instructions, seed);
        let source = MixSource::replayed(&path).unwrap();
        assert_eq!(source.mix().benchmarks, mix.benchmarks);
        let replayed =
            evaluate_mix_source(&cfg, &source, PolicyKind::TaDrrip, instructions, seed).unwrap();

        for (a, b) in live.per_app.iter().zip(&replayed.per_app) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ipc, b.ipc, "{}: replayed IPC differs", a.name);
            assert_eq!(a.llc_mpki, b.llc_mpki, "{}: replayed MPKI differs", a.name);
        }
        assert_eq!(live.weighted_speedup(), replayed.weighted_speedup());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replayed_mix_source_rejects_geometry_mismatch() {
        let (cfg, mixes) = smoke_setup();
        let llc_sets = cfg.llc.geometry.num_sets();
        let path = std::env::temp_dir().join("runner_replay_geometry.atrc");
        // Capture at a deliberately different set count than the system uses.
        workloads::capture_to_file::<trace_io::TraceWriter>(&path, &mixes[0], llc_sets * 2, 1, 100)
            .unwrap();
        let source = MixSource::replayed(&path).unwrap();
        let err = match source.trace_sources(llc_sets, 1) {
            Err(e) => e,
            Ok(_) => panic!("geometry mismatch must be rejected"),
        };
        assert!(err.to_string().contains("LLC sets"), "got: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replayed_mix_source_rejects_garbage_files() {
        let path = std::env::temp_dir().join("runner_replay_garbage.atrc");
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(MixSource::replayed(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (cfg, mixes) = smoke_setup();
        let a = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        let b = evaluate_mix(&cfg, &mixes[0], PolicyKind::Eaf, 15_000, 9);
        assert_eq!(a.weighted_speedup(), b.weighted_speedup());
        assert_eq!(a.per_app.len(), b.per_app.len());
        for (x, y) in a.per_app.iter().zip(&b.per_app) {
            assert_eq!(x.ipc, y.ipc);
            assert_eq!(x.llc_mpki, y.llc_mpki);
        }
    }
}
