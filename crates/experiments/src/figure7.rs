//! Figure 7: sensitivity to larger last-level caches.
//!
//! The paper grows the LLC from 16 MB/16-way to 24 MB/24-way and 32 MB/32-way (keeping the
//! set count constant) for the 16-, 20- and 24-core studies and shows ADAPT still improves
//! the weighted speedup — certain applications keep thrashing even with the larger caches,
//! so the Footprint-number based priority assignment designed for 16-way caches carries
//! over to higher associativities.

use serde::{Deserialize, Serialize};
use workloads::{generate_mixes, StudyKind};

use crate::policies::PolicyKind;
use crate::report::{amean, pct, render_table};
use crate::runner::{evaluate_policies_on_mixes, speedups_over_baseline};
use crate::scale::ExperimentScale;

/// One bar of Figure 7: a (core count, LLC configuration) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LargeCachePoint {
    /// Core count of the study.
    pub cores: usize,
    /// LLC configuration label (e.g. "24MB/24-way").
    pub llc_label: String,
    /// Mean weighted speedup of ADAPT_bp32 over TA-DRRIP.
    pub adapt_speedup: f64,
}

/// Figure 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7Result {
    /// One bar per (core count, LLC configuration) pair.
    pub points: Vec<LargeCachePoint>,
}

/// The LLC configurations of Figure 7 (paper sizes; scaled proportionally by the scale).
pub fn llc_variants() -> Vec<(&'static str, u64, usize)> {
    vec![
        ("24MB/24-way", 24 * 1024 * 1024, 24),
        ("32MB/32-way", 32 * 1024 * 1024, 32),
    ]
}

/// Run the Figure 7 experiment.
pub fn run(scale: ExperimentScale) -> Figure7Result {
    let studies = [StudyKind::Cores16, StudyKind::Cores20, StudyKind::Cores24];
    let mut points = Vec::new();
    for study in studies {
        for (label, bytes, ways) in llc_variants() {
            let config = scale.system_config_with_llc(study, bytes, ways);
            let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
            let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
            let evals = evaluate_policies_on_mixes(
                &config,
                &mixes,
                &policies,
                scale.instructions_per_core(),
                scale.seed(),
            );
            let speedup = amean(&speedups_over_baseline(
                &evals,
                PolicyKind::AdaptBp32,
                PolicyKind::TaDrrip,
            ));
            points.push(LargeCachePoint {
                cores: study.num_cores(),
                llc_label: label.to_string(),
                adapt_speedup: speedup,
            });
        }
    }
    Figure7Result { points }
}

/// Render Figure 7.
pub fn render(r: &Figure7Result) -> String {
    let mut out =
        String::from("Figure 7: ADAPT weighted speedup over TA-DRRIP with larger caches\n");
    out.push_str(&render_table(
        &["cores", "LLC", "speedup", "gain"],
        &r.points
            .iter()
            .map(|p| {
                vec![
                    p.cores.to_string(),
                    p.llc_label.clone(),
                    format!("{:.4}", p.adapt_speedup),
                    pct(p.adapt_speedup - 1.0),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

/// A cheaper single-point variant used by benches and tests.
pub fn run_point(
    scale: ExperimentScale,
    study: StudyKind,
    llc_bytes: u64,
    ways: usize,
) -> LargeCachePoint {
    let config = scale.system_config_with_llc(study, llc_bytes, ways);
    let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
    let policies = [PolicyKind::TaDrrip, PolicyKind::AdaptBp32];
    let evals = evaluate_policies_on_mixes(
        &config,
        &mixes,
        &policies,
        scale.instructions_per_core(),
        scale.seed(),
    );
    LargeCachePoint {
        cores: study.num_cores(),
        llc_label: format!("{}B/{}-way", llc_bytes, ways),
        adapt_speedup: amean(&speedups_over_baseline(
            &evals,
            PolicyKind::AdaptBp32,
            PolicyKind::TaDrrip,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_smoke_run_works() {
        let p = run_point(
            ExperimentScale::Smoke,
            StudyKind::Cores16,
            24 * 1024 * 1024,
            24,
        );
        assert_eq!(p.cores, 16);
        assert!(p.adapt_speedup > 0.0);
    }

    #[test]
    fn render_lists_every_point() {
        let r = Figure7Result {
            points: vec![
                LargeCachePoint {
                    cores: 16,
                    llc_label: "24MB/24-way".into(),
                    adapt_speedup: 1.03,
                },
                LargeCachePoint {
                    cores: 24,
                    llc_label: "32MB/32-way".into(),
                    adapt_speedup: 1.05,
                },
            ],
        };
        let text = render(&r);
        assert!(text.contains("24MB/24-way"));
        assert!(text.contains("+5.00%"));
    }
}
