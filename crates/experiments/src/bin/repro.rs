//! `repro` — regenerate the ADAPT paper's figures and tables from the command line.
//!
//! ```text
//! repro <experiment> [--paper-scale | --smoke]
//!
//! experiments:
//!   fig1     Figure 1  : forced BRRIP motivation experiment
//!   fig3     Figure 3  : 16-core weighted-speedup s-curves
//!   fig45    Figures 4 & 5 : per-application MPKI / IPC impact
//!   fig6     Figure 6  : insertion vs bypass ablation
//!   fig7     Figure 7  : larger caches (24 MB / 32 MB)
//!   fig8     Figure 8  : 4/8/20/24-core scalability s-curves
//!   table2   Table 2   : hardware cost comparison
//!   table4   Table 4   : benchmark classification, paper vs measured
//!   table7   Table 7   : alternative multi-core metrics
//!   ablation Design-parameter sweeps (interval, sampled sets, bypass ratio, ranges)
//!   mixes    Print the generated workload mixes (Table 6)
//!   diag     Per-application TA-DRRIP vs ADAPT diagnostic on one 16-core mix
//!   all      Everything above, in order
//! ```
//!
//! The default scale is `scaled` (minutes); `--paper-scale` selects the paper's full
//! parameters (hours); `--smoke` is a seconds-long sanity run.

use std::env;
use std::process::ExitCode;

use experiments::{ablation, figure1, figure3, figure45, figure6, figure7, figure8};
use experiments::{table2, table4, table7, ExperimentScale};
use workloads::{generate_mixes, StudyKind};

fn usage() -> String {
    "usage: repro <fig1|fig3|fig45|fig6|fig7|fig8|table2|table4|table7|ablation|mixes|diag|all> \
     [--paper-scale|--smoke]"
        .to_string()
}

fn print_mixes(scale: ExperimentScale) {
    for study in StudyKind::all() {
        let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
        println!(
            "# {}-core study: {} mixes (paper uses {})",
            study.num_cores(),
            mixes.len(),
            study.paper_workload_count()
        );
        for m in &mixes {
            println!("mix {:>3}: {}", m.id, m.benchmarks.join(", "));
        }
        println!();
    }
}

/// Diagnostic: run one 16-core mix under TA-DRRIP and ADAPT and print each application's
/// view (accesses, misses, bypasses, IPC) side by side, plus interval statistics.
fn diag(scale: ExperimentScale) {
    use experiments::{evaluate_mix, PolicyKind};

    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let mix = generate_mixes(study, 1, scale.seed()).remove(0);
    let instructions = scale.instructions_per_core();
    let base = evaluate_mix(
        &config,
        &mix,
        PolicyKind::TaDrrip,
        instructions,
        scale.seed(),
    );
    let adapt = evaluate_mix(
        &config,
        &mix,
        PolicyKind::AdaptBp32,
        instructions,
        scale.seed(),
    );
    println!(
        "weighted speedup: TA-DRRIP {:.4}  ADAPT_bp32 {:.4}  ratio {:.4}",
        base.weighted_speedup(),
        adapt.weighted_speedup(),
        adapt.weighted_speedup() / base.weighted_speedup()
    );
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "app", "thrash", "mpki_base", "mpki_adpt", "ipc_base", "ipc_adpt", "norm_base", "norm_adpt"
    );
    for (b, a) in base.per_app.iter().zip(&adapt.per_app) {
        println!(
            "{:<8} {:>6} {:>10.2} {:>10.2} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            b.name,
            if b.is_thrashing { "yes" } else { "" },
            b.llc_mpki,
            a.llc_mpki,
            b.ipc,
            a.ipc,
            b.normalized_ipc(),
            a.normalized_ipc()
        );
    }
}

fn run_one(name: &str, scale: ExperimentScale) -> Result<(), String> {
    match name {
        "fig1" => print!("{}", figure1::render(&figure1::run(scale))),
        "fig3" => print!("{}", figure3::render(&figure3::run(scale))),
        "fig45" => print!("{}", figure45::render(&figure45::run(scale))),
        "fig6" => print!("{}", figure6::render(&figure6::run(scale))),
        "fig7" => print!("{}", figure7::render(&figure7::run(scale))),
        "fig8" => print!("{}", figure8::render(&figure8::run(scale))),
        "table2" => {
            print!("{}", table2::render(&table2::run_paper_exact()));
            print!("{}", table2::render(&table2::run(scale)));
        }
        "table4" => print!("{}", table4::render(&table4::run(scale))),
        "table7" => print!("{}", table7::render(&table7::run(scale))),
        "ablation" => {
            let mixes = 4;
            print!(
                "{}",
                ablation::render(
                    "Interval-length sweep",
                    &ablation::interval_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Sampled-sets sweep",
                    &ablation::sampled_sets_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Bypass-ratio sweep",
                    &ablation::bypass_ratio_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Priority-range sweep",
                    &ablation::priority_range_sweep(scale, mixes)
                )
            );
        }
        "mixes" => print_mixes(scale),
        "diag" => diag(scale),
        "all" => {
            for exp in [
                "table2", "table4", "fig1", "fig3", "fig45", "fig6", "fig7", "fig8", "table7",
                "ablation",
            ] {
                println!("==== {exp} ====");
                run_one(exp, scale)?;
                println!();
            }
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let mut scale = ExperimentScale::Scaled;
    let mut experiment = None;
    for a in &args {
        match a.as_str() {
            "--paper-scale" => scale = ExperimentScale::Paper,
            "--smoke" => scale = ExperimentScale::Smoke,
            "--scaled" => scale = ExperimentScale::Scaled,
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => experiment = Some(name.to_string()),
            other => {
                eprintln!("unknown flag '{other}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    eprintln!("[repro] running '{experiment}' at {} scale", scale.label());
    match run_one(&experiment, scale) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
