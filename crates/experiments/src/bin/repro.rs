//! `repro` — regenerate the ADAPT paper's figures and tables from the command line.
//!
//! ```text
//! repro <experiment> [--paper-scale | --smoke]
//!
//! experiments:
//!   fig1     Figure 1  : forced BRRIP motivation experiment
//!   fig3     Figure 3  : 16-core weighted-speedup s-curves
//!   fig45    Figures 4 & 5 : per-application MPKI / IPC impact
//!   fig6     Figure 6  : insertion vs bypass ablation
//!   fig7     Figure 7  : larger caches (24 MB / 32 MB)
//!   fig8     Figure 8  : 4/8/20/24-core scalability s-curves
//!   table2   Table 2   : hardware cost comparison
//!   table4   Table 4   : benchmark classification, paper vs measured
//!   table7   Table 7   : alternative multi-core metrics
//!   ablation Design-parameter sweeps (interval, sampled sets, bypass ratio, ranges)
//!   mixes    Print the generated workload mixes (Table 6)
//!   diag     Per-application TA-DRRIP vs ADAPT diagnostic on one 16-core mix
//!   all      Everything above, in order
//!
//! corpus mode:
//!   corpus --dir DIR [--study 4|8|...|64] [--mixes N] [--compress]
//!            Materialize the study's workload mixes as a trace corpus: one .atrc per
//!            mix (captured exactly once) plus a manifest recording geometry and seed.
//!            --compress writes .atrc v3 with LZ4-compressed blocks (smaller on disk,
//!            bit-identical sweep results; `tracectl inspect` reports the ratio).
//!   sweep  --dir DIR
//!            Run the Figure 3 policy lineup over a materialized corpus: each trace is
//!            decoded once and the (policy x mix) grid fans out in parallel. The report
//!            includes the replay-wrap count (non-zero when the capture budget was
//!            smaller than the run).
//!
//! scaling study:
//!   scale  [--cores 32,48,64,128,256] [--mixes N] [--flat] [--memsys]
//!            Many-core scaling study beyond the paper's 24 cores, run under the
//!            cycle-accounted bank contention model (finite ports, bounded per-bank
//!            queues, MSHR back-pressure): per-policy throughput, fairness and
//!            bank-stall share plus per-bank occupancy/stall tables. --flat reruns
//!            the same geometry with the seed's latency-only banking.
//! ```
//!
//! The default scale is `scaled` (minutes); `--paper-scale` selects the paper's full
//! parameters (hours); `--smoke` is a seconds-long sanity run. Corpus mode must load a
//! corpus materialized at the same scale (the manifest's geometry is validated).
//!
//! # Profiling and logging
//!
//! `--profile [DIR]` (or `REPRO_PROFILE=1`, directory `profile/`) turns on the sim-obs
//! flight recorder for the run and exports `trace.json` (Chrome trace-event format —
//! load it in Perfetto), `intervals.csv` (per-interval core/bank/LLC time-series) and
//! `summary.txt` into DIR. Profiling never changes simulation results: the recorder
//! samples at interval rollovers the simulator already performs.
//!
//! `--log-level error|warn|info|debug|trace|off` (or `REPRO_LOG`) filters the
//! structured stderr diagnostics; the repro default is `info`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use experiments::runner::{sweep_policies_on_corpus_with, synthetic_capture_budget, ReplayConfig};
use experiments::{ablation, figure1, figure3, figure45, figure6, figure7, figure8, scaling};
use experiments::{table2, table4, table7, ExperimentScale, PolicyKind};
use trace_io::Corpus;
use workloads::{generate_mixes, StudyKind};

fn usage() -> String {
    "usage: repro <fig1|fig3|fig45|fig6|fig7|fig8|table2|table4|table7|ablation|mixes|diag|all> \
     [--paper-scale|--smoke]\n       repro corpus --dir DIR [--study 4|8|...|64] [--mixes N] \
     [--compress] [--paper-scale|--smoke]\n       repro sweep --dir DIR [--paper-scale|--smoke]\n         \
     [--arena-bytes N] [--prefetch on|off] [--spill-dir DIR] [--spill-accesses N]\n       \
     repro scale [--cores 32,48,64,128,256] [--mixes N] [--flat] [--memsys] \
     [--paper-scale|--smoke]\n\n\
     sweep replay knobs (flags win over the REPLAY_ARENA_BYTES / REPLAY_PREFETCH /\n\
     REPLAY_SPILL_DIR / REPLAY_SPILL_ACCESSES environment variables):\n\
       --arena-bytes N     replay arena budget per mix in bytes (default 256 MiB)\n\
       --prefetch on|off   background batch decode during replay (default on)\n\
       --spill-dir DIR     spill oversized synthetic mixes to .atrc files under DIR\n\
       --spill-accesses N  per-core accesses to capture when spilling (0 disables)\n\n\
     scale: many-core scaling study under the cycle-accounted bank contention model\n\
     (throughput / fairness / bank-stall share / per-core stall attribution per policy;\n\
     --flat reruns the same geometry with the latency-only seed banking; --memsys runs\n\
     the flat vs FCFS vs FR-FCFS+NUCA memory-system head-to-head instead)\n\n\
     global: --profile [DIR]   record a sim-obs profile and export trace.json /\n\
                               intervals.csv / summary.txt into DIR (default 'profile';\n\
                               REPRO_PROFILE=1 does the same)\n\
             --log-level LVL   error|warn|info|debug|trace|off (default info; REPRO_LOG)"
        .to_string()
}

fn parse_study(cores: &str) -> Result<StudyKind, String> {
    cores
        .parse::<usize>()
        .ok()
        .and_then(StudyKind::by_cores)
        .ok_or_else(|| {
            format!("--study must be one of 4|8|16|20|24|32|48|64|128|256, got {cores:?}")
        })
}

fn parse_cores_list(list: &str) -> Result<Vec<usize>, String> {
    list.split(',')
        .map(|c| {
            c.trim()
                .parse::<usize>()
                .map_err(|e| format!("--cores: {c:?}: {e}"))
        })
        .collect()
}

/// Materialize a study's mixes as an on-disk corpus at this scale.
fn corpus_cmd(
    scale: ExperimentScale,
    dir: &PathBuf,
    study: StudyKind,
    mixes_override: Option<usize>,
    compress: bool,
) -> Result<(), String> {
    let config = scale.system_config(study);
    let llc_sets = config.llc.geometry.num_sets();
    let count = mixes_override
        .unwrap_or_else(|| scale.mixes_for(study))
        .max(1);
    let mixes = generate_mixes(study, count, scale.seed());
    let accesses = synthetic_capture_budget(scale.instructions_per_core());
    let label = format!("{}-core {} corpus", study.num_cores(), scale.label());
    let corpus = if compress {
        Corpus::materialize_compressed(dir, &label, &mixes, llc_sets, scale.seed(), accesses)
    } else {
        Corpus::materialize(dir, &label, &mixes, llc_sets, scale.seed(), accesses)
    }
    .map_err(|e| format!("materializing corpus: {e}"))?;
    println!(
        "materialized {} mixes ({} cores, {} accesses/core, llc_sets {}{}) into {}",
        corpus.entries().len(),
        study.num_cores(),
        accesses,
        llc_sets,
        if compress { ", compressed v3" } else { "" },
        dir.display()
    );
    Ok(())
}

/// Run the Figure 3 policy lineup over a materialized corpus.
fn sweep_cmd(scale: ExperimentScale, dir: &PathBuf, replay: &ReplayConfig) -> Result<(), String> {
    let corpus = Corpus::load(dir).map_err(|e| format!("loading corpus: {e}"))?;
    let first = corpus
        .entries()
        .first()
        .ok_or_else(|| "corpus has no mixes".to_string())?;
    let cores = first.benchmarks.len();
    let study = StudyKind::all()
        .into_iter()
        .find(|s| s.num_cores() == cores)
        .ok_or_else(|| format!("corpus mixes have {cores} cores, matching no study"))?;
    let config = scale.system_config(study);
    let mut policies = vec![PolicyKind::TaDrrip];
    policies.extend(PolicyKind::figure3_lineup());
    sim_obs::obs_info!(
        "repro",
        "corpus sweep: {} policies x {} mixes from {}",
        policies.len(),
        corpus.entries().len(),
        dir.display()
    );
    // The sweep seed comes from the corpus manifest, so the alone-run normalization
    // matches the generators the traces were captured from.
    let outcome = sweep_policies_on_corpus_with(
        &config,
        &corpus,
        &policies,
        scale.instructions_per_core(),
        replay,
    )
    .map_err(|e| format!("corpus sweep: {e}"))?;
    let result = figure3::SCurveResult {
        study_cores: study.num_cores(),
        workloads: corpus.entries().len(),
        replay_wraps: outcome.total_replay_wraps(),
        curves: figure3::build_curves(&outcome.evaluations),
    };
    print!("{}", figure3::render(&result));
    Ok(())
}

/// Run the many-core scaling study (see `experiments::scaling`). With `memsys` the
/// flat vs FCFS-contended vs FR-FCFS+NUCA head-to-head replaces the single-model study.
fn scale_cmd(
    scale: ExperimentScale,
    cores: &[usize],
    contention: bool,
    memsys: bool,
    mixes_override: Option<usize>,
) -> Result<(), String> {
    if memsys {
        sim_obs::obs_info!("repro", "memory-system head-to-head over {cores:?} cores");
        let result = scaling::run_memsys(scale, cores, mixes_override)?;
        print!("{}", scaling::render_memsys(&result));
        return Ok(());
    }
    sim_obs::obs_info!(
        "repro",
        "scaling study over {cores:?} cores ({} banking)",
        if contention { "contended" } else { "flat" }
    );
    let result = scaling::run(scale, cores, contention, mixes_override)?;
    print!("{}", scaling::render(&result));
    Ok(())
}

fn print_mixes(scale: ExperimentScale) {
    for study in StudyKind::paper_studies() {
        let mixes = generate_mixes(study, scale.mixes_for(study), scale.seed());
        println!(
            "# {}-core study: {} mixes (paper uses {})",
            study.num_cores(),
            mixes.len(),
            study.paper_workload_count()
        );
        for m in &mixes {
            println!("mix {:>3}: {}", m.id, m.benchmarks.join(", "));
        }
        println!();
    }
}

/// Diagnostic: run one 16-core mix under TA-DRRIP and ADAPT and print each application's
/// view (accesses, misses, bypasses, IPC) side by side, plus interval statistics.
fn diag(scale: ExperimentScale) {
    use experiments::{evaluate_mix, PolicyKind};

    let study = StudyKind::Cores16;
    let config = scale.system_config(study);
    let mix = generate_mixes(study, 1, scale.seed()).remove(0);
    let instructions = scale.instructions_per_core();
    let base = evaluate_mix(
        &config,
        &mix,
        PolicyKind::TaDrrip,
        instructions,
        scale.seed(),
    );
    let adapt = evaluate_mix(
        &config,
        &mix,
        PolicyKind::AdaptBp32,
        instructions,
        scale.seed(),
    );
    println!(
        "weighted speedup: TA-DRRIP {:.4}  ADAPT_bp32 {:.4}  ratio {:.4}",
        base.weighted_speedup(),
        adapt.weighted_speedup(),
        adapt.weighted_speedup() / base.weighted_speedup()
    );
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "app", "thrash", "mpki_base", "mpki_adpt", "ipc_base", "ipc_adpt", "norm_base", "norm_adpt"
    );
    for (b, a) in base.per_app.iter().zip(&adapt.per_app) {
        println!(
            "{:<8} {:>6} {:>10.2} {:>10.2} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            b.name,
            if b.is_thrashing { "yes" } else { "" },
            b.llc_mpki,
            a.llc_mpki,
            b.ipc,
            a.ipc,
            b.normalized_ipc(),
            a.normalized_ipc()
        );
    }
}

fn run_one(name: &str, scale: ExperimentScale) -> Result<(), String> {
    match name {
        "fig1" => print!("{}", figure1::render(&figure1::run(scale))),
        "fig3" => print!("{}", figure3::render(&figure3::run(scale))),
        "fig45" => print!("{}", figure45::render(&figure45::run(scale))),
        "fig6" => print!("{}", figure6::render(&figure6::run(scale))),
        "fig7" => print!("{}", figure7::render(&figure7::run(scale))),
        "fig8" => print!("{}", figure8::render(&figure8::run(scale))),
        "table2" => {
            print!("{}", table2::render(&table2::run_paper_exact()));
            print!("{}", table2::render(&table2::run(scale)));
        }
        "table4" => print!("{}", table4::render(&table4::run(scale))),
        "table7" => print!("{}", table7::render(&table7::run(scale))),
        "ablation" => {
            let mixes = 4;
            print!(
                "{}",
                ablation::render(
                    "Interval-length sweep",
                    &ablation::interval_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Sampled-sets sweep",
                    &ablation::sampled_sets_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Bypass-ratio sweep",
                    &ablation::bypass_ratio_sweep(scale, mixes)
                )
            );
            print!(
                "{}",
                ablation::render(
                    "Priority-range sweep",
                    &ablation::priority_range_sweep(scale, mixes)
                )
            );
        }
        "mixes" => print_mixes(scale),
        "diag" => diag(scale),
        "all" => {
            for exp in [
                "table2", "table4", "fig1", "fig3", "fig45", "fig6", "fig7", "fig8", "table7",
                "ablation",
            ] {
                println!("==== {exp} ====");
                run_one(exp, scale)?;
                println!();
            }
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

/// Subcommand names, used to disambiguate `--profile`'s optional DIR operand from the
/// positional experiment name.
const EXPERIMENTS: &[&str] = &[
    "fig1", "fig3", "fig45", "fig6", "fig7", "fig8", "table2", "table4", "table7", "ablation",
    "mixes", "diag", "all", "corpus", "sweep", "scale",
];

/// Resolve the profile directory: the `--profile` flag wins, then `REPRO_PROFILE`
/// (`1`/`true` mean the default `profile/` directory, anything else is the directory).
fn profile_dir(flag: Option<PathBuf>) -> Option<PathBuf> {
    if flag.is_some() {
        return flag;
    }
    match env::var("REPRO_PROFILE").ok().as_deref() {
        None | Some("") | Some("0") => None,
        Some("1") | Some("true") => Some(PathBuf::from("profile")),
        Some(dir) => Some(PathBuf::from(dir)),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    // Global flags, extracted up front so they work in any position.
    let mut profile_flag: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        args.remove(pos);
        // Optional DIR operand: consume the next token unless it is a flag or the
        // experiment name itself.
        let dir = match args.get(pos) {
            Some(next) if !next.starts_with('-') && !EXPERIMENTS.contains(&next.as_str()) => {
                PathBuf::from(args.remove(pos))
            }
            _ => PathBuf::from("profile"),
        };
        profile_flag = Some(dir);
    }
    // Default to `info` so the progress lines stay; an explicit --log-level wins over
    // REPRO_LOG, which wins over the default (left to the library's lazy init).
    let mut log_setting = Some(Some(sim_obs::Level::Info));
    if let Some(pos) = args.iter().position(|a| a == "--log-level") {
        if pos + 1 >= args.len() {
            eprintln!("--log-level needs a value\n{}", usage());
            return ExitCode::FAILURE;
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        match sim_obs::Level::parse(&value) {
            Some(setting) => log_setting = Some(setting),
            None => {
                eprintln!("--log-level: unknown level {value:?}");
                return ExitCode::FAILURE;
            }
        }
    } else if env::var_os("REPRO_LOG").is_some() {
        log_setting = None;
    }
    if let Some(setting) = log_setting {
        sim_obs::set_log_level(setting);
    }
    let mut scale = ExperimentScale::Scaled;
    let mut experiment = None;
    let mut dir: Option<PathBuf> = None;
    let mut study = StudyKind::Cores16;
    let mut mixes_override: Option<usize> = None;
    let mut cores_list: Vec<usize> = vec![32, 48, 64];
    let mut flat = false;
    let mut memsys = false;
    let mut compress = false;
    // Replay knobs: environment first (the documented REPLAY_* variables), explicit
    // flags win.
    let mut replay = ReplayConfig::from_env();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} needs a value\n{}", usage()))
        };
        let parsed = match a.as_str() {
            "--paper-scale" => {
                scale = ExperimentScale::Paper;
                Ok(())
            }
            "--smoke" => {
                scale = ExperimentScale::Smoke;
                Ok(())
            }
            "--scaled" => {
                scale = ExperimentScale::Scaled;
                Ok(())
            }
            "--dir" => value("--dir").map(|v| dir = Some(PathBuf::from(v))),
            "--study" => value("--study").and_then(|v| parse_study(v).map(|s| study = s)),
            "--cores" => value("--cores").and_then(|v| parse_cores_list(v).map(|c| cores_list = c)),
            "--flat" => {
                flat = true;
                Ok(())
            }
            "--memsys" => {
                memsys = true;
                Ok(())
            }
            "--compress" => {
                compress = true;
                Ok(())
            }
            "--mixes" => value("--mixes").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| mixes_override = Some(n))
                    .map_err(|e| format!("--mixes: {e}"))
            }),
            "--arena-bytes" => value("--arena-bytes").and_then(|v| {
                v.parse::<u64>()
                    .map(|n| replay.arena_budget_bytes = n)
                    .map_err(|e| format!("--arena-bytes: {e}"))
            }),
            "--prefetch" => value("--prefetch").and_then(|v| match v {
                "on" | "1" | "true" => {
                    replay.prefetch = true;
                    Ok(())
                }
                "off" | "0" | "false" => {
                    replay.prefetch = false;
                    Ok(())
                }
                other => Err(format!("--prefetch must be on|off, got {other:?}")),
            }),
            "--spill-dir" => {
                value("--spill-dir").map(|v| replay.spill_dir = Some(PathBuf::from(v)))
            }
            "--spill-accesses" => value("--spill-accesses").and_then(|v| {
                v.parse::<u64>()
                    .map(|n| replay.spill_capture_accesses = n)
                    .map_err(|e| format!("--spill-accesses: {e}"))
            }),
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => {
                experiment = Some(name.to_string());
                Ok(())
            }
            other => Err(format!("unknown flag '{other}'\n{}", usage())),
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(experiment) = experiment else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let profile = profile_dir(profile_flag);
    if let Some(dir) = &profile {
        sim_obs::enable();
        sim_obs::set_thread_name("main");
        sim_obs::obs_info!("repro", "profiling to {}", dir.display());
    }
    sim_obs::obs_info!("repro", "running '{experiment}' at {} scale", scale.label());
    let outcome = match experiment.as_str() {
        "corpus" | "sweep" => {
            let Some(dir) = dir else {
                eprintln!("'{experiment}' requires --dir DIR\n{}", usage());
                return ExitCode::FAILURE;
            };
            if experiment == "corpus" {
                corpus_cmd(scale, &dir, study, mixes_override, compress)
            } else {
                sweep_cmd(scale, &dir, &replay)
            }
        }
        "scale" => scale_cmd(scale, &cores_list, !flat, memsys, mixes_override),
        name => run_one(name, scale),
    };
    // Export the profile even when the experiment failed: the partial timeline is
    // usually exactly what explains the failure.
    let mut export_failed = false;
    if let Some(dir) = &profile {
        match sim_obs::export_profile(dir) {
            Ok(report) => sim_obs::obs_info!(
                "repro",
                "profile: {} events ({} dropped) -> {} (trace.json {} events, \
                 intervals.csv {} rows)",
                report.events,
                report.dropped,
                dir.display(),
                report.trace_events,
                report.csv_rows
            ),
            Err(e) => {
                sim_obs::obs_error!("repro", "profile export to {} failed: {e}", dir.display());
                export_failed = true;
            }
        }
    }
    match outcome {
        Ok(()) if !export_failed => ExitCode::SUCCESS,
        Ok(()) => ExitCode::FAILURE,
        Err(e) => {
            sim_obs::obs_error!("repro", "{e}");
            ExitCode::FAILURE
        }
    }
}
