//! Deterministic, dependency-free fault injection for the ADAPT stack.
//!
//! A seeded [`FaultPlan`] maps named *sites* (call points such as `atrc.write` or
//! `serve.worker`) to fault schedules. Every decision is a pure function of
//! `(plan seed, site name, rule index, per-site hit counter)`, so a given plan
//! fires the exact same faults on every run — the chaos walls rely on this to
//! assert that a faulted run either fails with a typed error or is bit-identical
//! to the fault-free reference.
//!
//! When no plan is installed the layer is a single relaxed atomic load and a
//! predictable branch per site (the same fast-path discipline as `sim-obs`);
//! `sim_perf` asserts the disabled overhead stays within 1%.
//!
//! # Sites
//!
//! | site             | where it fires                                          |
//! |------------------|---------------------------------------------------------|
//! | `atrc.write`     | trace capture, per chunk (supports torn writes)         |
//! | `atrc.sync`      | trace capture, before the final `sync_all`              |
//! | `atrc.read`      | buffered trace decode, per block                        |
//! | `mmap.open`      | opening a trace for zero-copy replay                    |
//! | `replay.decode`  | zero-copy chunk decode (surfaces as corruption)         |
//! | `progress.open`  | opening `sweep.progress` at corpus load                 |
//! | `progress.write` | per-cell progress append (supports torn writes)         |
//! | `progress.sync`  | per-cell progress `sync_all`                            |
//! | `serve.worker`   | sweepd worker, per job (supports stall/panic)           |
//! | `bank.schedule`  | DRAM bank scheduling, per access (stall keeps results   |
//! |                  | bit-identical; any other kind panics → typed error)     |
//! | `serve.conn.close` | sweepd connection, before writing a response          |
//! | `bench.access`   | `sim_perf` only — measures the disabled-mode overhead   |
//!
//! # Plan specs
//!
//! Plans parse from a compact spec (also read from `SIM_FAULT_PLAN` by sweepd):
//!
//! ```text
//! seed=42;progress.write=torn@250;serve.worker=stall:5@200#10
//! ```
//!
//! Grammar per `;`-separated part: `seed=N` or `SITE=KIND[:ARG][@PERMILLE][#MAX_FIRES]`
//! with kinds `io`, `short`, `torn`, `full`, `panic`, `stall:MS`, `close`.
//! `@PERMILLE` defaults to 1000 (always fire); `#MAX_FIRES` defaults to unlimited.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed site does when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (`io::Error`).
    Io,
    /// A read that returns fewer bytes than asked for (surfaced as an I/O error).
    ShortRead,
    /// A write that persists only a prefix of the intended bytes, then errors.
    TornWrite,
    /// `ENOSPC`-style failure: the device is full.
    DiskFull,
    /// A panic at the fault site (worker crash).
    Panic,
    /// A stall of the given number of milliseconds (latency only, never data).
    Stall(u64),
    /// The connection (or stream) is dropped on the floor.
    Close,
}

impl FaultKind {
    /// Short lowercase label used in injected error messages and specs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::ShortRead => "short",
            FaultKind::TornWrite => "torn",
            FaultKind::DiskFull => "full",
            FaultKind::Panic => "panic",
            FaultKind::Stall(_) => "stall",
            FaultKind::Close => "close",
        }
    }
}

/// One site's schedule inside a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct SiteRule {
    /// The site this rule arms.
    pub site: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Fire probability per hit, in permille (1000 = every hit).
    pub prob_permille: u16,
    /// Cap on total fires at this site; 0 means unlimited.
    pub max_fires: u64,
}

/// A seeded set of [`SiteRule`]s. Installing a plan arms the layer; the same plan
/// fires the same faults at the same per-site hit indices on every run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed mixed into every fire decision.
    pub seed: u64,
    /// Site schedules, evaluated in order; the first rule that fires wins.
    pub rules: Vec<SiteRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a rule that fires on every hit of `site`, with no fire cap.
    pub fn always(self, site: &str, kind: FaultKind) -> FaultPlan {
        self.rule(site, kind, 1000, 0)
    }

    /// Add a rule with explicit probability (permille) and fire cap (0 = unlimited).
    pub fn rule(
        mut self,
        site: &str,
        kind: FaultKind,
        prob_permille: u16,
        max_fires: u64,
    ) -> FaultPlan {
        self.rules.push(SiteRule {
            site: site.to_string(),
            kind,
            prob_permille: prob_permille.min(1000),
            max_fires,
        });
        self
    }

    /// Parse a plan spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec part {part:?} is missing '='"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault spec seed {value:?} is not a u64"))?;
                continue;
            }
            let (value, max_fires) = match value.split_once('#') {
                Some((v, m)) => (
                    v,
                    m.parse::<u64>()
                        .map_err(|_| format!("fault spec max-fires {m:?} is not a u64"))?,
                ),
                None => (value, 0),
            };
            let (value, prob) = match value.split_once('@') {
                Some((v, p)) => (
                    v,
                    p.parse::<u16>()
                        .map_err(|_| format!("fault spec permille {p:?} is not a u16"))?,
                ),
                None => (value, 1000),
            };
            let (kind_name, arg) = match value.split_once(':') {
                Some((k, a)) => (k, Some(a)),
                None => (value, None),
            };
            let kind = match (kind_name, arg) {
                ("io", None) => FaultKind::Io,
                ("short", None) => FaultKind::ShortRead,
                ("torn", None) => FaultKind::TornWrite,
                ("full", None) => FaultKind::DiskFull,
                ("panic", None) => FaultKind::Panic,
                ("close", None) => FaultKind::Close,
                ("stall", Some(ms)) => FaultKind::Stall(
                    ms.parse()
                        .map_err(|_| format!("fault spec stall arg {ms:?} is not milliseconds"))?,
                ),
                _ => return Err(format!("fault spec kind {value:?} is not recognised")),
            };
            plan = plan.rule(key, kind, prob, max_fires);
        }
        Ok(plan)
    }
}

/// Installed plan plus per-site counters. Counters reset on install, so
/// re-installing the same plan replays the same fault schedule.
struct Active {
    plan: FaultPlan,
    counters: Mutex<HashMap<String, SiteCounters>>,
}

#[derive(Default, Clone, Copy)]
struct SiteCounters {
    hits: u64,
    fired: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn active_cell() -> &'static Mutex<Option<Arc<Active>>> {
    static CELL: OnceLock<Mutex<Option<Arc<Active>>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Injected panics can poison these locks by design; the data is counters only.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The pure fire decision: FNV-1a over (seed, site, rule index, hit index).
fn decides(seed: u64, site: &str, rule_idx: usize, hit: u64, prob_permille: u16) -> bool {
    if prob_permille >= 1000 {
        return true;
    }
    if prob_permille == 0 {
        return false;
    }
    let mut h = fnv_bytes(FNV_OFFSET, &seed.to_le_bytes());
    h = fnv_bytes(h, site.as_bytes());
    h = fnv_bytes(h, &(rule_idx as u64).to_le_bytes());
    h = fnv_bytes(h, &hit.to_le_bytes());
    (h % 1000) < prob_permille as u64
}

/// Ask whether `site` faults on this hit. Returns `None` unless a plan is
/// installed *and* one of its rules for this site fires. The disabled path is a
/// single relaxed atomic load and a branch.
#[inline]
pub fn fire(site: &str) -> Option<FaultKind> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    fire_enabled(site)
}

#[cold]
fn fire_enabled(site: &str) -> Option<FaultKind> {
    let active = lock_ignore_poison(active_cell()).clone()?;
    let mut counters = lock_ignore_poison(&active.counters);
    let entry = counters.entry(site.to_string()).or_default();
    let hit = entry.hits;
    entry.hits += 1;
    for (idx, rule) in active.plan.rules.iter().enumerate() {
        if rule.site != site {
            continue;
        }
        if rule.max_fires != 0 && entry.fired >= rule.max_fires {
            continue;
        }
        if decides(active.plan.seed, site, idx, hit, rule.prob_permille) {
            entry.fired += 1;
            return Some(rule.kind);
        }
    }
    None
}

/// The `io::Error` an injected fault reports; the message always carries the
/// site and the word "injected" so logs and tests can recognise it.
pub fn injected_io_error(kind: FaultKind, site: &str) -> io::Error {
    let message = match kind {
        FaultKind::DiskFull => format!("injected fault at {site}: no space left on device"),
        k => format!("injected fault at {site}: {}", k.label()),
    };
    io::Error::other(message)
}

/// Act on a fired fault at an I/O site: stalls sleep and succeed, panics panic,
/// everything else becomes an [`injected_io_error`].
pub fn apply_io(kind: FaultKind, site: &str) -> io::Result<()> {
    match kind {
        FaultKind::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        FaultKind::Panic => panic!("injected fault at {site}: panic"),
        k => Err(injected_io_error(k, site)),
    }
}

/// [`fire`] + [`apply_io`] in one call — the one-liner for plain I/O sites.
#[inline]
pub fn fail_io(site: &str) -> io::Result<()> {
    match fire(site) {
        None => Ok(()),
        Some(kind) => apply_io(kind, site),
    }
}

/// Install `plan` and arm the layer. Per-site counters start from zero.
pub fn install(plan: FaultPlan) {
    let mut slot = lock_ignore_poison(active_cell());
    *slot = Some(Arc::new(Active {
        plan,
        counters: Mutex::new(HashMap::new()),
    }));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove any installed plan and disarm the layer.
pub fn clear() {
    let mut slot = lock_ignore_poison(active_cell());
    *slot = None;
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether a plan is currently installed.
pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// How many times `site` has fired under the current plan.
pub fn fired_count(site: &str) -> u64 {
    let Some(active) = lock_ignore_poison(active_cell()).clone() else {
        return 0;
    };
    let counters = lock_ignore_poison(&active.counters);
    counters.get(site).map(|c| c.fired).unwrap_or(0)
}

/// Total fires across all sites under the current plan.
pub fn total_fired() -> u64 {
    let Some(active) = lock_ignore_poison(active_cell()).clone() else {
        return 0;
    };
    let counters = lock_ignore_poison(&active.counters);
    counters.values().map(|c| c.fired).sum()
}

/// Install a plan from the `SIM_FAULT_PLAN` environment variable, once per
/// process. Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset/empty, and `Err` if the spec does not parse.
pub fn init_from_env() -> Result<bool, String> {
    static INIT: OnceLock<Result<bool, String>> = OnceLock::new();
    INIT.get_or_init(|| match std::env::var("SIM_FAULT_PLAN") {
        Err(_) => Ok(false),
        Ok(spec) if spec.trim().is_empty() => Ok(false),
        Ok(spec) => {
            let plan = FaultPlan::parse(&spec)?;
            install(plan);
            Ok(true)
        }
    })
    .clone()
}

/// RAII guard serialising fault-installing tests. The plan store is process
/// global, so tests that install plans must (a) live in dedicated integration
/// test binaries and (b) hold this guard for their whole body — including any
/// server they spawn. Acquiring and dropping the guard both [`clear`] the plan.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Acquire the process-global fault-test lock; see [`FaultGuard`].
pub fn exclusive() -> FaultGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    FaultGuard { _lock: guard }
}

impl FaultGuard {
    /// Install a plan under the guard.
    pub fn install(&self, plan: FaultPlan) {
        install(plan);
    }

    /// Clear the plan without releasing the guard.
    pub fn clear(&self) {
        clear();
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_layer_never_fires() {
        let guard = exclusive();
        assert!(!is_active());
        assert_eq!(fire("atrc.write"), None);
        assert!(fail_io("atrc.write").is_ok());
        drop(guard);
    }

    #[test]
    fn always_rules_fire_every_hit_and_respect_max_fires() {
        let guard = exclusive();
        guard.install(FaultPlan::new(1).rule("progress.write", FaultKind::TornWrite, 1000, 2));
        assert_eq!(fire("progress.write"), Some(FaultKind::TornWrite));
        assert_eq!(fire("progress.write"), Some(FaultKind::TornWrite));
        assert_eq!(fire("progress.write"), None, "max_fires caps the schedule");
        assert_eq!(fire("atrc.read"), None, "unarmed sites never fire");
        assert_eq!(fired_count("progress.write"), 2);
        assert_eq!(total_fired(), 2);
        drop(guard);
    }

    #[test]
    fn probabilistic_schedules_are_deterministic_across_reinstalls() {
        let guard = exclusive();
        let plan = FaultPlan::new(42).rule("atrc.read", FaultKind::Io, 300, 0);
        let run = |plan: &FaultPlan| {
            install(plan.clone());
            let fires: Vec<bool> = (0..200).map(|_| fire("atrc.read").is_some()).collect();
            let count = fired_count("atrc.read");
            (fires, count)
        };
        let (a, count_a) = run(&plan);
        let (b, count_b) = run(&plan);
        assert_eq!(a, b, "same plan must replay the same schedule");
        assert_eq!(count_a, count_b);
        assert!(
            count_a > 20 && count_a < 120,
            "300 permille over 200 hits, got {count_a}"
        );
        let other = FaultPlan::new(43).rule("atrc.read", FaultKind::Io, 300, 0);
        let (c, _) = run(&other);
        assert_ne!(a, c, "a different seed must produce a different schedule");
        drop(guard);
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let plan = FaultPlan::parse(
            "seed=42; progress.write=torn@250 ; serve.worker=stall:5@200#10; mmap.open=full",
        )
        .expect("parse");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, "progress.write");
        assert_eq!(plan.rules[0].kind, FaultKind::TornWrite);
        assert_eq!(plan.rules[0].prob_permille, 250);
        assert_eq!(plan.rules[0].max_fires, 0);
        assert_eq!(plan.rules[1].kind, FaultKind::Stall(5));
        assert_eq!(plan.rules[1].prob_permille, 200);
        assert_eq!(plan.rules[1].max_fires, 10);
        assert_eq!(plan.rules[2].kind, FaultKind::DiskFull);
        assert_eq!(plan.rules[2].prob_permille, 1000);
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("site=warp").is_err());
        assert!(FaultPlan::parse("site").is_err());
        assert!(
            FaultPlan::parse("serve.worker=stall").is_err(),
            "stall needs milliseconds"
        );
    }

    #[test]
    fn two_rules_on_one_site_decide_independently() {
        let guard = exclusive();
        guard.install(
            FaultPlan::new(7)
                .rule("atrc.write", FaultKind::TornWrite, 100, 0)
                .rule("atrc.write", FaultKind::DiskFull, 100, 0),
        );
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(k) = fire("atrc.write") {
                kinds.insert(k.label());
            }
        }
        assert!(
            kinds.contains("torn") && kinds.contains("full"),
            "both rules fire: {kinds:?}"
        );
        drop(guard);
    }

    #[test]
    fn injected_errors_name_the_site() {
        let err = injected_io_error(FaultKind::DiskFull, "progress.write");
        let text = err.to_string();
        assert!(
            text.contains("injected") && text.contains("progress.write"),
            "{text}"
        );
    }
}
