//! # cache-sim
//!
//! Trace-driven multi-core cache-hierarchy and memory simulator substrate used by the
//! ADAPT reproduction (Sridharan & Seznec, "Discrete Cache Insertion Policies for Shared
//! Last Level Cache Management on Large Multicores").
//!
//! The paper evaluates on BADCO, a proprietary cycle-accurate out-of-order x86 CMP
//! simulator. This crate provides the closest open substitute that preserves the
//! quantities the paper reasons about:
//!
//! * per-core private L1D and L2 caches plus a next-line L1 prefetcher,
//! * a shared, banked last-level cache (LLC) with a pluggable replacement policy
//!   ([`replacement::LlcReplacementPolicy`]) so that baseline policies and ADAPT can be
//!   swapped without touching the cache model,
//! * MSHR and write-back buffer occupancy models,
//! * a DDR-style DRAM model with open rows, bank conflicts and permutation-based
//!   (XOR-mapped) page interleaving (paper Table 3),
//! * an approximate out-of-order core timing model that overlaps independent misses,
//! * a global-time-ordered multi-core driver so that contention at the shared LLC and
//!   DRAM is observed in the same relative order a cycle-accurate simulator would produce.
//!
//! The crate is deterministic: given the same configuration, trace sources and seeds, a
//! simulation produces bit-identical statistics. All randomness used by policies is
//! seeded explicitly.
//!
//! The hot path (LLC, private caches, driver) is written data-oriented —
//! structure-of-arrays tag storage, packed valid/dirty bitmasks, monomorphized policy
//! dispatch; the pre-refactor implementation is retained frozen in the `reference`
//! module as the bit-identity oracle and benchmark baseline.
//!
//! ## Quick example
//!
//! ```
//! use cache_sim::config::SystemConfig;
//! use cache_sim::system::MultiCoreSystem;
//! use cache_sim::trace::{StridedTrace, TraceSource};
//!
//! // Two cores streaming over small arrays, tiny cache configuration.
//! let config = SystemConfig::tiny(2);
//! let traces: Vec<Box<dyn TraceSource>> = vec![
//!     Box::new(StridedTrace::new(0x1000_0000, 64, 4096, 3)),
//!     Box::new(StridedTrace::new(0x2000_0000, 64, 4096, 3)),
//! ];
//! let mut system = MultiCoreSystem::with_default_policy(config, traces);
//! let results = system.run(10_000);
//! assert_eq!(results.per_core.len(), 2);
//! assert!(results.per_core[0].instructions >= 10_000);
//! ```

pub mod addr;
pub mod bank;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod llc;
pub mod mshr;
pub mod prefetch;
pub mod private_cache;
pub mod reference;
pub mod replacement;
pub mod single;
pub mod stats;
pub mod system;
pub mod trace;

pub use addr::{block_of, BlockAddr, BLOCK_BYTES, BLOCK_SHIFT};
pub use bank::{BankModel, BankStats, CoreBankStalls, RowClass};
pub use config::{
    BankContentionConfig, CacheGeometry, CoreConfig, DramConfig, LlcConfig, NucaConfig,
    RowModelConfig, SystemConfig,
};
pub use replacement::{AccessContext, InsertionDecision, LineView, LlcReplacementPolicy};
pub use stats::{CoreStallAttribution, CoreStats, LlcStats, SystemResults};
pub use system::MultiCoreSystem;
pub use trace::{capture_into, MemAccess, TraceSink, TraceSource};
