//! Private per-core cache levels (L1D, L2).
//!
//! These levels are not the object of study in the paper, so they use compact built-in
//! replacement policies (LRU, SRRIP or single-set-dueling DRRIP per Table 3) rather than the
//! pluggable trait used by the shared LLC. The hierarchy is non-inclusive and write-back
//! (paper §4.1).

use crate::addr::BlockAddr;
use crate::config::{PrivateCacheConfig, PrivatePolicyKind};
use crate::replacement::{RrpvArray, RRPV_MAX};

/// Result of a tag lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    Hit,
    Miss,
}

/// A line evicted by a fill, to be written back if dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    pub block: BlockAddr,
    pub dirty: bool,
}

/// Statistics for a private cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivateCacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub prefetch_fills: u64,
}

impl PrivateCacheStats {
    /// Miss ratio over all accesses (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// DRRIP set-dueling state for a private cache (single thread, so one PSEL counter).
#[derive(Debug, Clone)]
struct DuelState {
    /// 10-bit policy-selection counter; >= 512 selects BRRIP, otherwise SRRIP (paper §2).
    psel: u16,
    /// Bimodal throttle counter for BRRIP insertions (1/32 inserted at long re-reference).
    brip_ctr: u32,
    num_sets: usize,
}

impl DuelState {
    const PSEL_MAX: u16 = 1023;
    const PSEL_THRESHOLD: u16 = 512;
    /// 32 leader sets per policy, selected by a static hash of the set index (the paper
    /// cites the observation that 32 sets per policy suffice).
    const LEADER_PERIOD: usize = 32;

    fn new(num_sets: usize) -> Self {
        DuelState {
            psel: Self::PSEL_THRESHOLD,
            brip_ctr: 0,
            num_sets,
        }
    }

    /// Leader-set classification: every `num_sets / 32`-th set leads SRRIP, the set right
    /// after it leads BRRIP. Follower sets follow PSEL.
    fn leader(&self, set: usize) -> Option<bool> {
        let period = (self.num_sets / Self::LEADER_PERIOD).max(2);
        match set % period {
            0 => Some(true),  // SRRIP leader
            1 => Some(false), // BRRIP leader
            _ => None,
        }
    }

    fn on_miss(&mut self, set: usize) {
        match self.leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(Self::PSEL_MAX),
            Some(false) => self.psel = self.psel.saturating_sub(1),
            None => {}
        }
    }

    /// Insertion RRPV for this set under DRRIP.
    fn insertion_rrpv(&mut self, set: usize) -> u8 {
        let use_srrip = match self.leader(set) {
            Some(true) => true,
            Some(false) => false,
            None => self.psel < Self::PSEL_THRESHOLD,
        };
        if use_srrip {
            RRPV_MAX - 1
        } else {
            // BRRIP: mostly distant, 1/32 long.
            self.brip_ctr = self.brip_ctr.wrapping_add(1);
            if self.brip_ctr.is_multiple_of(32) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        }
    }
}

/// Common interface over the production and reference private-cache implementations.
///
/// Implemented by the structure-of-arrays [`PrivateCache`] and the frozen pre-refactor
/// [`crate::reference::ReferencePrivateCache`] so bit-identity property tests and
/// benchmarks can drive either uniformly (the multi-core driver itself uses the
/// concrete types directly).
pub trait PrivateCacheModel {
    /// Hit latency of this level in cycles.
    fn latency(&self) -> u64;
    /// Statistics accumulated so far.
    fn stats(&self) -> &PrivateCacheStats;
    /// Look up a block; on a hit, update recency and (for writes) the dirty bit.
    fn access(&mut self, block: BlockAddr, is_write: bool) -> Lookup;
    /// Probe without updating any state.
    fn probe(&self, block: BlockAddr) -> bool;
    /// Fill a block, possibly evicting a line.
    fn fill(&mut self, block: BlockAddr, dirty: bool, prefetch: bool) -> Option<EvictedLine>;
    /// A write-back arriving from the level above; true if absorbed.
    fn writeback(&mut self, block: BlockAddr) -> bool;
}

/// A private, set-associative, write-back cache level.
///
/// Like the shared LLC, line metadata is structure-of-arrays: a contiguous per-set tag
/// array plus packed valid/dirty bitmasks, so the per-access tag scan touches one short
/// `u64` slice instead of striding over line structs. Associativity is bounded by
/// [`crate::llc::MAX_WAYS`].
#[derive(Debug, Clone)]
pub struct PrivateCache {
    config: PrivateCacheConfig,
    num_sets: usize,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    tags: Vec<u64>,
    /// Per-set valid bitmask (bit `w` = way `w` holds a line).
    valid: Vec<u64>,
    /// Per-set dirty bitmask.
    dirty: Vec<u64>,
    /// Per-set way of the last hit/fill (way prediction). Valid tags are unique within
    /// a set, so confirming the hinted tag yields the same way the full scan would —
    /// a pure shortcut, invisible to results.
    hint: Vec<u8>,
    /// LRU timestamps (monotonic counter per access).
    stamps: Vec<u64>,
    stamp_clock: u64,
    rrpv: RrpvArray,
    duel: Option<DuelState>,
    stats: PrivateCacheStats,
}

impl PrivateCache {
    /// Build an empty cache from its configuration.
    pub fn new(config: PrivateCacheConfig) -> Self {
        let num_sets = config.geometry.num_sets();
        let ways = config.geometry.ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(
            (1..=crate::llc::MAX_WAYS).contains(&ways),
            "associativity must be in 1..={}",
            crate::llc::MAX_WAYS
        );
        let duel = match config.policy {
            PrivatePolicyKind::Drrip => Some(DuelState::new(num_sets)),
            _ => None,
        };
        PrivateCache {
            config,
            num_sets,
            ways,
            set_mask: num_sets as u64 - 1,
            set_shift: num_sets.trailing_zeros(),
            tags: vec![0; num_sets * ways],
            valid: vec![0; num_sets],
            dirty: vec![0; num_sets],
            hint: vec![0; num_sets],
            stamps: vec![0; num_sets * ways],
            stamp_clock: 0,
            rrpv: RrpvArray::new(num_sets, ways),
            duel,
            stats: PrivateCacheStats::default(),
        }
    }

    /// Hit latency of this level in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PrivateCacheStats {
        &self.stats
    }

    /// Split a block address into (set, tag) with the precomputed shifts.
    #[inline]
    fn decompose(&self, block: BlockAddr) -> (usize, u64) {
        (
            (block.0 & self.set_mask) as usize,
            block.0 >> self.set_shift,
        )
    }

    /// Branch-light way lookup over the set's contiguous tag slice (lowest way wins).
    #[inline]
    fn scan_ways(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let mut matches = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            matches |= u64::from(t == tag) << w;
        }
        matches &= self.valid[set];
        if matches != 0 {
            Some(matches.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// [`PrivateCache::scan_ways`] with the way-prediction shortcut: check the set's
    /// last hit/fill way first. Tags are unique among a set's valid ways, so a hint
    /// confirmation returns exactly what the scan would.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let hint = self.hint[set] as usize;
        let base = set * self.ways;
        if (self.valid[set] >> hint) & 1 == 1 && self.tags[base + hint] == tag {
            return Some(hint);
        }
        self.scan_ways(set, tag)
    }

    /// Look up a block; on a hit, update recency and (for writes) the dirty bit.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> Lookup {
        self.stats.accesses += 1;
        let (set, tag) = self.decompose(block);
        if let Some(way) = self.find_way(set, tag) {
            self.stats.hits += 1;
            self.hint[set] = way as u8;
            self.stamp_clock += 1;
            self.stamps[set * self.ways + way] = self.stamp_clock;
            self.rrpv.promote(set, way);
            if is_write {
                self.dirty[set] |= 1 << way;
            }
            return Lookup::Hit;
        }
        self.stats.misses += 1;
        if let Some(duel) = &mut self.duel {
            duel.on_miss(set);
        }
        Lookup::Miss
    }

    /// Probe without updating any state (used by prefetch issue checks and tests).
    pub fn probe(&self, block: BlockAddr) -> bool {
        let (set, tag) = self.decompose(block);
        self.find_way(set, tag).is_some()
    }

    /// Fill a block (after a miss was resolved below), possibly evicting a line.
    ///
    /// `dirty` marks the fill as modified (write-allocate). `prefetch` fills are inserted at
    /// distant priority under RRIP policies so that useless prefetches leave quickly.
    pub fn fill(&mut self, block: BlockAddr, dirty: bool, prefetch: bool) -> Option<EvictedLine> {
        let (set, tag) = self.decompose(block);
        let base = set * self.ways;

        // Already present (e.g. a racing prefetch filled it): just update state.
        if let Some(way) = self.find_way(set, tag) {
            if dirty {
                self.dirty[set] |= 1 << way;
            }
            return None;
        }

        if prefetch {
            self.stats.prefetch_fills += 1;
        }

        // Prefer the lowest invalid way, matching the original first-invalid scan.
        let invalid = !self.valid[set] & crate::llc::way_mask(self.ways);
        let (way, evicted) = if invalid != 0 {
            (invalid.trailing_zeros() as usize, None)
        } else {
            let way = match self.config.policy {
                PrivatePolicyKind::Lru => {
                    let mut victim = 0;
                    let mut oldest = u64::MAX;
                    for w in 0..self.ways {
                        if self.stamps[base + w] < oldest {
                            oldest = self.stamps[base + w];
                            victim = w;
                        }
                    }
                    victim
                }
                PrivatePolicyKind::Srrip | PrivatePolicyKind::Drrip => self.rrpv.find_victim(set),
            };
            let line_dirty = (self.dirty[set] >> way) & 1 == 1;
            self.stats.evictions += 1;
            if line_dirty {
                self.stats.writebacks += 1;
            }
            let evicted_block = BlockAddr((self.tags[base + way] << self.set_shift) | set as u64);
            (
                way,
                Some(EvictedLine {
                    block: evicted_block,
                    dirty: line_dirty,
                }),
            )
        };

        self.tags[base + way] = tag;
        self.valid[set] |= 1 << way;
        self.hint[set] = way as u8;
        if dirty {
            self.dirty[set] |= 1 << way;
        } else {
            self.dirty[set] &= !(1 << way);
        }
        self.stamp_clock += 1;
        self.stamps[base + way] = self.stamp_clock;
        let insert_rrpv = match self.config.policy {
            PrivatePolicyKind::Lru => 0,
            PrivatePolicyKind::Srrip => {
                if prefetch {
                    RRPV_MAX
                } else {
                    RRPV_MAX - 1
                }
            }
            PrivatePolicyKind::Drrip => {
                if prefetch {
                    RRPV_MAX
                } else {
                    self.duel.as_mut().expect("drrip state").insertion_rrpv(set)
                }
            }
        };
        self.rrpv.set(set, way, insert_rrpv);
        evicted
    }

    /// A write-back arriving from the level above: set the dirty bit if the block is
    /// present. Returns true if absorbed; the caller forwards it further down otherwise.
    pub fn writeback(&mut self, block: BlockAddr) -> bool {
        let (set, tag) = self.decompose(block);
        if let Some(way) = self.find_way(set, tag) {
            self.dirty[set] |= 1 << way;
            true
        } else {
            false
        }
    }

    /// Number of valid lines currently held (used by tests and occupancy reports).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.ways
    }
}

impl PrivateCacheModel for PrivateCache {
    fn latency(&self) -> u64 {
        PrivateCache::latency(self)
    }

    fn stats(&self) -> &PrivateCacheStats {
        PrivateCache::stats(self)
    }

    fn access(&mut self, block: BlockAddr, is_write: bool) -> Lookup {
        PrivateCache::access(self, block, is_write)
    }

    fn probe(&self, block: BlockAddr) -> bool {
        PrivateCache::probe(self, block)
    }

    fn fill(&mut self, block: BlockAddr, dirty: bool, prefetch: bool) -> Option<EvictedLine> {
        PrivateCache::fill(self, block, dirty, prefetch)
    }

    fn writeback(&mut self, block: BlockAddr) -> bool {
        PrivateCache::writeback(self, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn cfg(policy: PrivatePolicyKind) -> PrivateCacheConfig {
        PrivateCacheConfig {
            geometry: CacheGeometry::new(4 * 1024, 4), // 16 sets x 4 ways
            latency: 2,
            policy,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let b = BlockAddr(42);
        assert_eq!(c.access(b, false), Lookup::Miss);
        assert!(c.fill(b, false, false).is_none());
        assert_eq!(c.access(b, false), Lookup::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_hit_marks_dirty_and_eviction_reports_writeback() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        // Fill 5 blocks mapping to set 0 of a 4-way cache: 1 eviction expected.
        let blocks: Vec<BlockAddr> = (0..5).map(|i| BlockAddr(i * 16)).collect();
        c.access(blocks[0], true);
        c.fill(blocks[0], true, false);
        for b in &blocks[1..] {
            c.access(*b, false);
            c.fill(*b, false, false);
        }
        assert_eq!(c.stats().evictions, 1);
        // The evicted line was the dirty LRU line (blocks[0]).
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let blocks: Vec<BlockAddr> = (0..4).map(|i| BlockAddr(i * 16)).collect();
        for b in &blocks {
            c.access(*b, false);
            c.fill(*b, false, false);
        }
        // Touch block 0 so block 1 becomes LRU.
        assert_eq!(c.access(blocks[0], false), Lookup::Hit);
        let newcomer = BlockAddr(4 * 16);
        c.access(newcomer, false);
        let evicted = c.fill(newcomer, false, false).expect("must evict");
        assert_eq!(evicted.block, blocks[1]);
    }

    #[test]
    fn evicted_block_address_reconstruction_is_exact() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let b = BlockAddr(0xabcd0);
        c.access(b, false);
        c.fill(b, false, false);
        // Fill the same set with 4 more conflicting blocks; first eviction must be `b`.
        let sets = 16u64;
        let mut evicted = None;
        for i in 1..=4 {
            let conflicting = BlockAddr(b.0 + i * sets);
            c.access(conflicting, false);
            if let Some(e) = c.fill(conflicting, false, false) {
                evicted = Some(e);
                break;
            }
        }
        assert_eq!(evicted.unwrap().block, b);
    }

    #[test]
    fn srrip_prefetch_fills_are_distant() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Srrip));
        let demand = BlockAddr(0);
        let prefetched = BlockAddr(16);
        c.access(demand, false);
        c.fill(demand, false, false);
        c.fill(prefetched, false, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        // Fill two more, then force an eviction: the prefetched (distant) line goes first.
        for i in 2..4 {
            let b = BlockAddr(i * 16);
            c.access(b, false);
            c.fill(b, false, false);
        }
        let newcomer = BlockAddr(4 * 16);
        c.access(newcomer, false);
        let evicted = c.fill(newcomer, false, false).unwrap();
        assert_eq!(evicted.block, prefetched);
    }

    #[test]
    fn drrip_learns_brrip_under_thrashing() {
        // A cyclic working set larger than the cache thrashes SRRIP; DRRIP's PSEL should
        // drift toward BRRIP on the BRRIP leader sets outperforming SRRIP leaders.
        let mut c = PrivateCache::new(PrivateCacheConfig {
            geometry: CacheGeometry::new(16 * 1024, 4), // 64 sets x 4 ways = 256 blocks
            latency: 2,
            policy: PrivatePolicyKind::Drrip,
        });
        let footprint = 1024u64; // 4x the cache
        for round in 0..20 {
            let _ = round;
            for i in 0..footprint {
                let b = BlockAddr(i);
                if c.access(b, false) == Lookup::Miss {
                    c.fill(b, false, false);
                }
            }
        }
        // Not asserting on PSEL internals; the cache must simply stay consistent and
        // bounded.
        assert!(c.occupancy() <= c.capacity_lines());
        assert!(c.stats().misses > 0);
    }

    #[test]
    fn duplicate_fill_does_not_duplicate_lines() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let b = BlockAddr(7);
        c.access(b, false);
        c.fill(b, false, false);
        c.fill(b, true, false);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.access(b, false), Lookup::Hit);
    }

    #[test]
    fn writeback_marks_dirty_only_when_present() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let b = BlockAddr(11);
        c.access(b, false);
        c.fill(b, false, false);
        assert!(c.writeback(b));
        assert!(!c.writeback(BlockAddr(999)));
        // Evicting the now-dirty line must produce a write-back.
        let sets = 16u64;
        for i in 1..=4 {
            let conflicting = BlockAddr(b.0 + i * sets);
            c.access(conflicting, false);
            c.fill(conflicting, false, false);
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_does_not_change_stats() {
        let mut c = PrivateCache::new(cfg(PrivatePolicyKind::Lru));
        let b = BlockAddr(3);
        c.access(b, false);
        c.fill(b, false, false);
        let before = *c.stats();
        assert!(c.probe(b));
        assert!(!c.probe(BlockAddr(1000)));
        assert_eq!(before, *c.stats());
    }
}
