//! Approximate out-of-order core timing model.
//!
//! BADCO (the paper's simulator) models a 4-wide OoO core with a 128-entry ROB. Building a
//! full OoO pipeline model is out of scope for a cache-policy study; what matters for the
//! paper's conclusions is (a) how much *exposed* memory latency each application sees, and
//! (b) the relative progress rates of co-running applications, which determine how their
//! access streams interleave at the shared LLC. This model captures both:
//!
//! * non-memory instructions retire at the configured issue width,
//! * L1 hits are fully pipelined (hidden),
//! * latency beyond the L1 is charged as stall time divided by an MLP overlap factor that
//!   approximates the miss overlap a 128-entry ROB extracts, and additionally bounded by
//!   the work available in the ROB window.
//!
//! DESIGN.md §4 documents this substitution.

use crate::config::CoreConfig;

/// Per-core timing state.
#[derive(Debug, Clone)]
pub struct CoreModel {
    config: CoreConfig,
    /// True when `mlp_overlap == 2.0` (every shipped configuration): the per-access
    /// overlap division then runs as an integer halving instead of an f64
    /// divide-and-round, producing the identical result for any realistic latency.
    halve_overlap: bool,
    /// Current absolute cycle of this core.
    pub cycle: u64,
    /// Instructions retired so far.
    pub instructions: u64,
    /// Cycles spent stalled on memory (exposed latency after overlap).
    pub mem_stall_cycles: u64,
    /// Cycles spent computing (issue-width-limited retirement of non-memory work).
    pub compute_cycles: u64,
}

impl CoreModel {
    pub fn new(config: CoreConfig) -> Self {
        CoreModel {
            halve_overlap: config.mlp_overlap == 2.0,
            config,
            cycle: 0,
            instructions: 0,
            mem_stall_cycles: 0,
            compute_cycles: 0,
        }
    }

    /// Retire `non_mem_instrs` ALU/branch instructions followed by one memory instruction
    /// whose hierarchy latency (beyond the L1 pipeline) was `mem_latency` cycles.
    ///
    /// Returns the number of cycles the core advanced.
    pub fn advance(&mut self, non_mem_instrs: u64, mem_latency: u64) -> u64 {
        // Compute portion: issue-width-limited retirement (round up).
        let compute = non_mem_instrs.div_ceil(self.config.issue_width);

        // Memory portion: the L1 hit latency is hidden by the pipeline; anything longer is
        // exposed but partially overlapped with independent work in the ROB.
        let exposed = mem_latency.saturating_sub(self.config.l1_hit_cycles);
        // `(x as f64 / 2.0).round()` (round half away from zero, x exactly representable
        // for any latency the hierarchy can produce) equals `(x + 1) >> 1` for every
        // such x, so the common mlp_overlap = 2.0 case skips the float unit entirely.
        let overlapped = if self.halve_overlap && exposed < (1 << 52) {
            (exposed + 1) >> 1
        } else {
            (exposed as f64 / self.config.mlp_overlap).round() as u64
        };
        // A 128-entry ROB can hide at most ~rob_size/issue_width cycles of latency behind
        // the following instructions; do not hide more latency than that bound allows.
        let rob_hide_bound = self.config.rob_size / self.config.issue_width;
        let stall = overlapped.max(exposed.saturating_sub(rob_hide_bound));

        self.cycle += compute + stall;
        self.compute_cycles += compute;
        self.mem_stall_cycles += stall;
        self.instructions += non_mem_instrs + 1;
        compute + stall
    }

    /// Instructions per cycle retired so far.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycle as f64
        }
    }

    /// Core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoreConfig {
        CoreConfig {
            issue_width: 4,
            rob_size: 128,
            mlp_overlap: 2.0,
            l1_hit_cycles: 1,
        }
    }

    #[test]
    fn l1_hits_are_fully_hidden() {
        let mut c = CoreModel::new(cfg());
        let advanced = c.advance(8, 1);
        assert_eq!(advanced, 2); // 8 instrs / width 4, no stall
        assert_eq!(c.mem_stall_cycles, 0);
        assert_eq!(c.instructions, 9);
    }

    #[test]
    fn long_latencies_are_partially_overlapped() {
        let mut c = CoreModel::new(cfg());
        c.advance(0, 341); // row conflict through the whole hierarchy
                           // exposed = 340, overlapped = 170, rob bound allows hiding up to 32 cycles
                           // => stall = max(170, 340-32) = 308
        assert_eq!(c.mem_stall_cycles, 308);
    }

    #[test]
    fn moderate_latencies_use_mlp_overlap() {
        let mut c = CoreModel::new(cfg());
        c.advance(0, 25); // LLC hit
                          // exposed = 24, overlapped = 12, rob bound 32 hides everything beyond 0
                          // => stall = max(12, 0) = 12
        assert_eq!(c.mem_stall_cycles, 12);
    }

    #[test]
    fn ipc_of_pure_compute_equals_issue_width() {
        let mut c = CoreModel::new(cfg());
        for _ in 0..1000 {
            c.advance(39, 1); // 39 ALU + 1 load hitting L1
        }
        let ipc = c.ipc();
        assert!((ipc - 4.0).abs() < 0.05, "ipc = {ipc}");
    }

    #[test]
    fn memory_bound_core_has_low_ipc() {
        let mut c = CoreModel::new(cfg());
        for _ in 0..1000 {
            c.advance(3, 341);
        }
        assert!(c.ipc() < 0.1, "ipc = {}", c.ipc());
    }

    #[test]
    fn halved_overlap_fast_path_matches_float_rounding() {
        // The integer halving must reproduce the f64 divide-and-round exactly for any
        // latency the hierarchy can produce (the reference engine keeps the float form).
        for exposed in 0u64..10_000 {
            assert_eq!(
                (exposed + 1) >> 1,
                (exposed as f64 / 2.0).round() as u64,
                "exposed {exposed}"
            );
        }
    }

    #[test]
    fn cycle_accumulates_monotonically() {
        let mut c = CoreModel::new(cfg());
        let mut last = 0;
        for i in 0..100 {
            c.advance(i % 7, (i % 5) * 50 + 1);
            assert!(c.cycle >= last);
            last = c.cycle;
        }
        assert_eq!(c.cycle, c.compute_cycles + c.mem_stall_cycles);
    }
}
