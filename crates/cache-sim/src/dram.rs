//! DDR2-style main-memory model (paper Table 3).
//!
//! Only row hits and row conflicts are modeled, like the memory model of the EAF paper the
//! authors follow ("We use memory model for our study like \[2\]: only row-hits and
//! row-conflicts are modeled"): 180 cycles for a row hit, 340 for a row conflict, 8 banks
//! with 4 KB rows and permutation-based (XOR-mapped) page interleaving to spread conflicting
//! rows across banks. Each bank additionally serializes requests through a busy window so
//! that bandwidth contention from many cores is visible.
//!
//! With [`crate::config::RowModelConfig`] enabled, classification moves into the bank
//! scheduler ([`crate::bank::BankModel::schedule`]): FR-FCFS row-buffer dynamics with a
//! three-way hit/miss/conflict latency split and a starvation cap. The legacy two-way
//! open-row register above remains the default and is bit-identical to the seed.
//!
//! Every access passes the `bank.schedule` fault-injection site (see `sim-fault`): an
//! armed `stall` fault delays wall-clock time without touching simulated state (results
//! stay bit-identical), while any other fault kind panics and is surfaced by the serving
//! layer as a typed error.

use crate::addr::{BlockAddr, BLOCK_SHIFT};
use crate::bank::{BankModel, BankStats, CoreBankStalls, RowClass};
use crate::config::DramConfig;

/// Per-request DRAM outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency in cycles, including any bank queuing delay.
    pub latency: u64,
    /// True if the request hit the bank's open row.
    pub row_hit: bool,
    /// Bank that served the request.
    pub bank: usize,
}

/// Statistics for the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_conflicts: u64,
    /// Row misses (idle bank, activate only). Always zero under the legacy two-way
    /// model, which folds misses into `row_conflicts` like the paper's memory model.
    pub row_misses: u64,
    /// Cycles spent waiting for a busy bank (including any admission back-pressure
    /// under a contended [`crate::config::BankContentionConfig`]), summed across
    /// requests.
    pub queue_cycles: u64,
}

/// The DRAM model.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per bank (row-buffer state of the legacy two-way classifier; unused
    /// when the FR-FCFS row model owns the row registers).
    open_rows: Vec<Option<u64>>,
    /// Cycle-accounted bank occupancy (ports/queues; flat by default) plus, when
    /// enabled, the FR-FCFS row scheduler.
    model: BankModel,
    stats: DramStats,
}

impl Dram {
    pub fn new(config: DramConfig) -> Self {
        Dram {
            open_rows: vec![None; config.banks],
            model: BankModel::with_row_model(config.banks, config.contention, config.row_model),
            config,
            stats: DramStats::default(),
        }
    }

    /// Row index of a block address (rows are `row_bytes` wide).
    fn row_of(&self, block: BlockAddr) -> u64 {
        block.byte_addr() / self.config.row_bytes
    }

    /// Bank index, optionally permuted with higher row bits (XOR mapping, Zhang et al.).
    fn bank_of(&self, block: BlockAddr) -> usize {
        let bank_bits = self.config.banks.trailing_zeros();
        let blocks_per_row = self.config.row_bytes >> BLOCK_SHIFT;
        let row = block.0 / blocks_per_row;
        let naive_bank = (row as usize) & (self.config.banks - 1);
        if self.config.xor_mapping {
            let perm = (row >> bank_bits) as usize & (self.config.banks - 1);
            naive_bank ^ perm
        } else {
            naive_bank
        }
    }

    /// Issue a demand read (or a write-back when `is_write`) from `core` at absolute
    /// cycle `now`.
    pub fn access(
        &mut self,
        block: BlockAddr,
        now: u64,
        is_write: bool,
        core: usize,
    ) -> DramAccess {
        if let Some(kind) = sim_fault::fire("bank.schedule") {
            // A stall sleeps wall-clock time and leaves the simulation bit-identical;
            // every other kind aborts the evaluation (surfaced as a typed error by
            // the serving layer's panic isolation).
            if let Err(e) = sim_fault::apply_io(kind, "bank.schedule") {
                panic!("injected fault at bank.schedule: {e}");
            }
        }

        let bank_idx = self.bank_of(block);
        let row = self.row_of(block);

        let (row_hit, service, queue_delay) = if self.config.row_model.enabled {
            let sched = self
                .model
                .schedule(bank_idx, now, self.config.bank_busy_cycles, core, row);
            let class = sched.class.expect("row model enabled");
            match class {
                RowClass::Hit => self.stats.row_hits += 1,
                RowClass::Miss => self.stats.row_misses += 1,
                RowClass::Conflict => self.stats.row_conflicts += 1,
            }
            (
                class == RowClass::Hit,
                sched.class_cycles,
                sched.request.delay,
            )
        } else {
            let row_hit = self.open_rows[bank_idx] == Some(row);
            let service = if row_hit {
                self.config.row_hit_cycles
            } else {
                self.config.row_conflict_cycles
            };
            self.open_rows[bank_idx] = Some(row);
            if row_hit {
                self.stats.row_hits += 1;
            } else {
                self.stats.row_conflicts += 1;
            }
            let queue_delay = self
                .model
                .request_from(bank_idx, now, self.config.bank_busy_cycles, core)
                .delay;
            (row_hit, service, queue_delay)
        };

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.queue_cycles += queue_delay;

        DramAccess {
            latency: queue_delay + service,
            row_hit,
            bank: bank_idx,
        }
    }

    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-bank occupancy/stall statistics, indexed by bank.
    pub fn bank_stats(&self) -> &[BankStats] {
        self.model.stats()
    }

    /// Queue/admission stall cycles attributed per requesting core. Summing this
    /// vector reproduces [`DramStats::queue_cycles`] exactly (conservation law:
    /// `delay = (start - admit) + (admit - now)`).
    pub fn core_stalls(&self) -> &[CoreBankStalls] {
        self.model.core_stalls()
    }

    pub fn config(&self) -> &DramConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RowModelConfig;

    fn cfg() -> DramConfig {
        DramConfig {
            row_hit_cycles: 180,
            row_conflict_cycles: 340,
            banks: 8,
            row_bytes: 4096,
            xor_mapping: true,
            bank_busy_cycles: 16,
            contention: crate::config::BankContentionConfig::flat(),
            row_model: RowModelConfig::disabled(),
        }
    }

    #[test]
    fn first_access_is_a_row_conflict_then_same_row_hits() {
        let mut d = Dram::new(cfg());
        let b = BlockAddr(100);
        let first = d.access(b, 0, false, 0);
        assert!(!first.row_hit);
        assert_eq!(first.latency, 340);
        // Same row, long after the bank freed up.
        let second = d.access(BlockAddr(101), 10_000, false, 0);
        assert!(second.row_hit);
        assert_eq!(second.latency, 180);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_conflicts, 1);
        assert_eq!(
            d.stats().row_misses,
            0,
            "legacy model never classifies misses"
        );
    }

    #[test]
    fn different_rows_on_same_bank_conflict() {
        let mut d = Dram::new(DramConfig {
            xor_mapping: false,
            ..cfg()
        });
        let blocks_per_row = 4096 / 64;
        let a = BlockAddr(0);
        // 8 banks apart => same bank, different row (no xor mapping).
        let b = BlockAddr(8 * blocks_per_row);
        d.access(a, 0, false, 0);
        let out = d.access(b, 10_000, false, 0);
        assert!(!out.row_hit);
    }

    #[test]
    fn back_to_back_requests_to_one_bank_queue() {
        let mut d = Dram::new(cfg());
        let b = BlockAddr(0);
        let first = d.access(b, 0, false, 0);
        let second = d.access(BlockAddr(1), 0, false, 0);
        assert_eq!(first.latency, 340);
        // Second arrives while the bank is busy (busy window 16) and then row-hits.
        assert_eq!(second.latency, 16 + 180);
        assert_eq!(d.stats().queue_cycles, 16);
    }

    #[test]
    fn xor_mapping_spreads_consecutive_rows_across_banks() {
        let d = Dram::new(cfg());
        let blocks_per_row = 4096 / 64;
        let mut banks = std::collections::HashSet::new();
        for row in 0..64u64 {
            banks.insert(d.bank_of(BlockAddr(row * blocks_per_row)));
        }
        assert_eq!(banks.len(), 8, "all banks should be used");
    }

    #[test]
    fn reads_and_writes_are_counted_separately() {
        let mut d = Dram::new(cfg());
        d.access(BlockAddr(0), 0, false, 0);
        d.access(BlockAddr(1000), 0, true, 0);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn frfcfs_path_uses_three_way_latency_classes() {
        let mut c = cfg();
        c.row_model = RowModelConfig::frfcfs(180, 260, 340, 4);
        let mut d = Dram::new(c);
        // Idle bank: row miss (activate only).
        let first = d.access(BlockAddr(0), 0, false, 0);
        assert!(!first.row_hit);
        assert_eq!(first.latency, 260);
        // Same row, bank idle again: row hit.
        let second = d.access(BlockAddr(1), 10_000, false, 1);
        assert!(second.row_hit);
        assert_eq!(second.latency, 180);
        // Same bank, different row: conflict. With XOR mapping off this would be
        // bank 0 row 8; keep the default mapping and find a conflicting block.
        let stats = *d.stats();
        assert_eq!((stats.row_misses, stats.row_hits), (1, 1));
    }

    #[test]
    fn frfcfs_attributes_queue_delay_to_the_requesting_core() {
        let mut c = cfg();
        c.row_model = RowModelConfig::frfcfs(180, 260, 340, 4);
        let mut d = Dram::new(c);
        d.access(BlockAddr(0), 0, false, 0); // occupies the bank for 16 cycles
        d.access(BlockAddr(1), 0, false, 3); // queued behind it, charged to core 3
        let cs = d.core_stalls();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[3].queue_cycles, 16);
        let total: u64 = cs.iter().map(|c| c.stall_cycles()).sum();
        assert_eq!(total, d.stats().queue_cycles);
    }

    #[test]
    fn legacy_path_attributes_stalls_per_core_without_changing_latencies() {
        let mut d = Dram::new(cfg());
        d.access(BlockAddr(0), 0, false, 2);
        let second = d.access(BlockAddr(1), 0, false, 5);
        assert_eq!(second.latency, 16 + 180);
        let cs = d.core_stalls();
        assert_eq!(cs[5].queue_cycles, 16);
        assert_eq!(cs[2].stall_cycles(), 0);
    }
}
