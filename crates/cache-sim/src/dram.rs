//! DDR2-style main-memory model (paper Table 3).
//!
//! Only row hits and row conflicts are modeled, like the memory model of the EAF paper the
//! authors follow ("We use memory model for our study like \[2\]: only row-hits and
//! row-conflicts are modeled"): 180 cycles for a row hit, 340 for a row conflict, 8 banks
//! with 4 KB rows and permutation-based (XOR-mapped) page interleaving to spread conflicting
//! rows across banks. Each bank additionally serializes requests through a busy window so
//! that bandwidth contention from many cores is visible.

use crate::addr::{BlockAddr, BLOCK_SHIFT};
use crate::bank::{BankModel, BankStats};
use crate::config::DramConfig;

/// Per-request DRAM outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency in cycles, including any bank queuing delay.
    pub latency: u64,
    /// True if the request hit the bank's open row.
    pub row_hit: bool,
    /// Bank that served the request.
    pub bank: usize,
}

/// Statistics for the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_conflicts: u64,
    /// Cycles spent waiting for a busy bank (including any admission back-pressure
    /// under a contended [`crate::config::BankContentionConfig`]), summed across
    /// requests.
    pub queue_cycles: u64,
}

/// The DRAM model.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per bank (row-buffer state).
    open_rows: Vec<Option<u64>>,
    /// Cycle-accounted bank occupancy (ports/queues; flat by default).
    model: BankModel,
    stats: DramStats,
}

impl Dram {
    pub fn new(config: DramConfig) -> Self {
        Dram {
            open_rows: vec![None; config.banks],
            model: BankModel::new(config.banks, config.contention),
            config,
            stats: DramStats::default(),
        }
    }

    /// Row index of a block address (rows are `row_bytes` wide).
    fn row_of(&self, block: BlockAddr) -> u64 {
        block.byte_addr() / self.config.row_bytes
    }

    /// Bank index, optionally permuted with higher row bits (XOR mapping, Zhang et al.).
    fn bank_of(&self, block: BlockAddr) -> usize {
        let bank_bits = self.config.banks.trailing_zeros();
        let blocks_per_row = self.config.row_bytes >> BLOCK_SHIFT;
        let row = block.0 / blocks_per_row;
        let naive_bank = (row as usize) & (self.config.banks - 1);
        if self.config.xor_mapping {
            let perm = (row >> bank_bits) as usize & (self.config.banks - 1);
            naive_bank ^ perm
        } else {
            naive_bank
        }
    }

    /// Issue a demand read (or a write-back when `is_write`) at absolute cycle `now`.
    pub fn access(&mut self, block: BlockAddr, now: u64, is_write: bool) -> DramAccess {
        let bank_idx = self.bank_of(block);
        let row = self.row_of(block);

        let row_hit = self.open_rows[bank_idx] == Some(row);
        let service = if row_hit {
            self.config.row_hit_cycles
        } else {
            self.config.row_conflict_cycles
        };
        self.open_rows[bank_idx] = Some(row);
        let queue_delay = self
            .model
            .request(bank_idx, now, self.config.bank_busy_cycles)
            .delay;

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_conflicts += 1;
        }
        self.stats.queue_cycles += queue_delay;

        DramAccess {
            latency: queue_delay + service,
            row_hit,
            bank: bank_idx,
        }
    }

    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-bank occupancy/stall statistics, indexed by bank.
    pub fn bank_stats(&self) -> &[BankStats] {
        self.model.stats()
    }

    pub fn config(&self) -> &DramConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            row_hit_cycles: 180,
            row_conflict_cycles: 340,
            banks: 8,
            row_bytes: 4096,
            xor_mapping: true,
            bank_busy_cycles: 16,
            contention: crate::config::BankContentionConfig::flat(),
        }
    }

    #[test]
    fn first_access_is_a_row_conflict_then_same_row_hits() {
        let mut d = Dram::new(cfg());
        let b = BlockAddr(100);
        let first = d.access(b, 0, false);
        assert!(!first.row_hit);
        assert_eq!(first.latency, 340);
        // Same row, long after the bank freed up.
        let second = d.access(BlockAddr(101), 10_000, false);
        assert!(second.row_hit);
        assert_eq!(second.latency, 180);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn different_rows_on_same_bank_conflict() {
        let mut d = Dram::new(DramConfig {
            xor_mapping: false,
            ..cfg()
        });
        let blocks_per_row = 4096 / 64;
        let a = BlockAddr(0);
        // 8 banks apart => same bank, different row (no xor mapping).
        let b = BlockAddr(8 * blocks_per_row);
        d.access(a, 0, false);
        let out = d.access(b, 10_000, false);
        assert!(!out.row_hit);
    }

    #[test]
    fn back_to_back_requests_to_one_bank_queue() {
        let mut d = Dram::new(cfg());
        let b = BlockAddr(0);
        let first = d.access(b, 0, false);
        let second = d.access(BlockAddr(1), 0, false);
        assert_eq!(first.latency, 340);
        // Second arrives while the bank is busy (busy window 16) and then row-hits.
        assert_eq!(second.latency, 16 + 180);
        assert_eq!(d.stats().queue_cycles, 16);
    }

    #[test]
    fn xor_mapping_spreads_consecutive_rows_across_banks() {
        let d = Dram::new(cfg());
        let blocks_per_row = 4096 / 64;
        let mut banks = std::collections::HashSet::new();
        for row in 0..64u64 {
            banks.insert(d.bank_of(BlockAddr(row * blocks_per_row)));
        }
        assert_eq!(banks.len(), 8, "all banks should be used");
    }

    #[test]
    fn reads_and_writes_are_counted_separately() {
        let mut d = Dram::new(cfg());
        d.access(BlockAddr(0), 0, false);
        d.access(BlockAddr(1000), 0, true);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }
}
