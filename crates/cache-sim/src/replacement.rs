//! Pluggable replacement-policy interface for the shared last-level cache.
//!
//! The LLC owns the tag array and valid/dirty bits; a policy owns all of its own
//! replacement state (RRPVs, recency stacks, set-dueling counters, samplers, ...). The LLC
//! drives a policy through the following call sequence for every demand or prefetch access:
//!
//! 1. [`LlcReplacementPolicy::on_access`] — observation hook fired for every access before
//!    it is resolved; ADAPT's Footprint-number monitor samples here.
//! 2. On a **hit**: [`LlcReplacementPolicy::on_hit`].
//! 3. On a **miss**: [`LlcReplacementPolicy::insertion_decision`] decides between inserting
//!    (with a 0..=3 re-reference prediction value) and bypassing the LLC entirely.
//!    If inserting and the set is full, [`LlcReplacementPolicy::choose_victim`] picks the
//!    way to evict, [`LlcReplacementPolicy::on_evict`] reports the eviction (EAF consumes
//!    this), and [`LlcReplacementPolicy::on_fill`] reports the completed fill.
//! 4. Every `interval_misses` LLC misses, [`LlcReplacementPolicy::on_interval`] fires
//!    (ADAPT recomputes Footprint-numbers and re-derives priorities there).
//!
//! RRPV conventions follow the RRIP papers and the ADAPT paper: 0 = re-used in the
//! near-immediate future, 3 = distant future (eviction candidate).

use serde::{Deserialize, Serialize};

/// The largest re-reference prediction value (2-bit RRPV, so 3 = distant).
pub const RRPV_MAX: u8 = 3;

/// Per-access context handed to the replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessContext {
    /// Requesting core (one application per core, per the paper).
    pub core_id: usize,
    /// Program counter of the memory instruction (used by SHiP signatures).
    pub pc: u64,
    /// Block address (byte address >> 6).
    pub block_addr: u64,
    /// LLC set index of the access.
    pub set_index: usize,
    /// True for demand accesses; false for prefetches and write-backs.
    /// Only demand accesses update recency state and are sampled by monitors (paper §3.1).
    pub is_demand: bool,
    /// True if the access is a store.
    pub is_write: bool,
}

/// What to do with a line that missed in the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertionDecision {
    /// Allocate the line and set its re-reference prediction value.
    Insert {
        /// 0 = near-immediate reuse ... 3 = distant reuse.
        rrpv: u8,
    },
    /// Do not allocate in the LLC; the fill goes directly to the private L2
    /// (paper §3.2, "Least Priority" bypassing).
    Bypass,
}

impl InsertionDecision {
    /// Convenience constructor.
    pub fn insert(rrpv: u8) -> Self {
        InsertionDecision::Insert {
            rrpv: rrpv.min(RRPV_MAX),
        }
    }

    /// True if this decision bypasses the cache.
    pub fn is_bypass(&self) -> bool {
        matches!(self, InsertionDecision::Bypass)
    }
}

/// Read-only view of a cache way exposed to `choose_victim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineView {
    pub valid: bool,
    /// Core that inserted the line (application owner).
    pub owner: usize,
    /// Block address stored in the line (meaningless if `!valid`).
    pub block_addr: u64,
    pub dirty: bool,
}

/// A shared-LLC replacement policy.
///
/// Implementations must be deterministic given their construction-time seed: the simulator
/// relies on reproducible runs for regression testing.
pub trait LlcReplacementPolicy: Send {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> String;

    /// Observation hook fired for every access (hit or miss) before resolution.
    fn on_access(&mut self, _ctx: &AccessContext) {}

    /// The access hit in `way`.
    fn on_hit(&mut self, ctx: &AccessContext, way: usize);

    /// Decide whether/with what priority to insert a missing line.
    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision;

    /// Choose a victim way; every entry of `lines` is valid when this is called.
    fn choose_victim(&mut self, ctx: &AccessContext, lines: &[LineView]) -> usize;

    /// A line was evicted from the cache (not called for bypassed fills).
    fn on_evict(&mut self, _ctx: &AccessContext, _evicted_block: u64, _owner: usize) {}

    /// The missing line has been filled into `way` with the given decision.
    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision);

    /// Fired every `interval_misses` LLC misses (paper: 1M), for interval-based adaptation.
    fn on_interval(&mut self) {}
}

/// Boxed policies are policies too, so code generic over `P: LlcReplacementPolicy` can be
/// instantiated with `Box<dyn LlcReplacementPolicy>` (the dynamic-dispatch path retained
/// for tests and extensions) as well as with concrete or enum-dispatched policy types.
impl<P: LlcReplacementPolicy + ?Sized> LlcReplacementPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_access(&mut self, ctx: &AccessContext) {
        (**self).on_access(ctx)
    }
    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        (**self).on_hit(ctx, way)
    }
    fn insertion_decision(&mut self, ctx: &AccessContext) -> InsertionDecision {
        (**self).insertion_decision(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext, lines: &[LineView]) -> usize {
        (**self).choose_victim(ctx, lines)
    }
    fn on_evict(&mut self, ctx: &AccessContext, evicted_block: u64, owner: usize) {
        (**self).on_evict(ctx, evicted_block, owner)
    }
    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        (**self).on_fill(ctx, way, decision)
    }
    fn on_interval(&mut self) {
        (**self).on_interval()
    }
}

/// Per-line RRPV state shared by every RRIP-family policy (SRRIP, BRRIP, DRRIP, TA-DRRIP,
/// SHiP, EAF and ADAPT all manage victims identically; only insertion values differ).
///
/// Provided here so both `llc-policies` and `adapt-core` reuse one audited implementation.
#[derive(Debug, Clone)]
pub struct RrpvArray {
    ways: usize,
    rrpv: Vec<u8>,
}

impl RrpvArray {
    /// All lines start at distant (RRPV 3) so that invalid-way fills behave like SRRIP cold
    /// starts.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        RrpvArray {
            ways,
            rrpv: vec![RRPV_MAX; num_sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// RRPV of a line.
    #[inline]
    pub fn get(&self, set: usize, way: usize) -> u8 {
        self.rrpv[self.idx(set, way)]
    }

    /// Set the RRPV of a line.
    #[inline]
    pub fn set(&mut self, set: usize, way: usize, value: u8) {
        let i = self.idx(set, way);
        self.rrpv[i] = value.min(RRPV_MAX);
    }

    /// Promote a hitting line to near-immediate reuse (RRPV 0), the hit-priority policy used
    /// by the paper and by the RRIP baselines.
    #[inline]
    pub fn promote(&mut self, set: usize, way: usize) {
        self.set(set, way, 0);
    }

    /// SRRIP-style victim search: find a way at RRPV 3, aging the whole set until one exists.
    /// Returns the chosen way. Deterministic: the lowest way index at RRPV_MAX wins.
    pub fn find_victim(&mut self, set: usize) -> usize {
        loop {
            let base = set * self.ways;
            for way in 0..self.ways {
                if self.rrpv[base + way] == RRPV_MAX {
                    return way;
                }
            }
            for way in 0..self.ways {
                self.rrpv[base + way] += 1;
            }
        }
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_decision_clamps_rrpv() {
        assert_eq!(
            InsertionDecision::insert(7),
            InsertionDecision::Insert { rrpv: 3 }
        );
        assert!(!InsertionDecision::insert(0).is_bypass());
        assert!(InsertionDecision::Bypass.is_bypass());
    }

    #[test]
    fn rrpv_array_initializes_distant() {
        let arr = RrpvArray::new(4, 4);
        for s in 0..4 {
            for w in 0..4 {
                assert_eq!(arr.get(s, w), RRPV_MAX);
            }
        }
    }

    #[test]
    fn promote_sets_zero_and_set_clamps() {
        let mut arr = RrpvArray::new(2, 2);
        arr.promote(1, 1);
        assert_eq!(arr.get(1, 1), 0);
        arr.set(0, 0, 9);
        assert_eq!(arr.get(0, 0), 3);
    }

    #[test]
    fn find_victim_prefers_existing_distant_line() {
        let mut arr = RrpvArray::new(1, 4);
        arr.set(0, 0, 1);
        arr.set(0, 1, 2);
        arr.set(0, 2, 3);
        arr.set(0, 3, 0);
        assert_eq!(arr.find_victim(0), 2);
        // No aging should have happened because a distant line existed.
        assert_eq!(arr.get(0, 0), 1);
        assert_eq!(arr.get(0, 3), 0);
    }

    #[test]
    fn find_victim_ages_until_distant() {
        let mut arr = RrpvArray::new(1, 3);
        arr.set(0, 0, 0);
        arr.set(0, 1, 1);
        arr.set(0, 2, 1);
        let victim = arr.find_victim(0);
        // Ways 1 and 2 reach RRPV 3 after two aging rounds; lowest index wins.
        assert_eq!(victim, 1);
        assert_eq!(arr.get(0, 0), 2);
        assert_eq!(arr.get(0, 1), 3);
        assert_eq!(arr.get(0, 2), 3);
    }

    #[test]
    fn find_victim_terminates_from_all_zero() {
        let mut arr = RrpvArray::new(1, 4);
        for w in 0..4 {
            arr.set(0, w, 0);
        }
        let v = arr.find_victim(0);
        assert_eq!(v, 0);
        for w in 0..4 {
            assert_eq!(arr.get(0, w), 3);
        }
    }
}
