//! Cycle-accounted bank contention model shared by the LLC and DRAM.
//!
//! The seed simulator modeled a bank as a single `busy_until` timestamp: every request
//! waited for the bank to go idle and then occupied it for a fixed window. That is a
//! one-port, infinitely-buffered server — latency-only banking in which concurrent
//! misses are invisible except through a scalar queue delay. [`BankModel`] generalizes
//! it into a cycle-accounted contention subsystem:
//!
//! * **Finite service ports.** Each bank owns [`BankContentionConfig::ports`] parallel
//!   service ports. A request starts service on the earliest-free port (ties broken by
//!   the lowest port index, so retirement order is deterministic) and occupies it for
//!   the service window.
//! * **Finite request queues.** Each bank admits at most
//!   [`BankContentionConfig::queue_depth`] waiting requests. When the queue is full, a
//!   new request stalls *before admission* until an earlier request starts service and
//!   frees a slot — back-pressure that propagates to the requesting core as extra
//!   latency rather than vanishing into an unbounded buffer.
//! * **Per-bank statistics.** Every bank tracks how many requests it served, how long
//!   they waited for a port ([`BankStats::queue_cycles`]), how long they were refused
//!   admission ([`BankStats::admission_stall_cycles`]), how many cycles its ports were
//!   occupied ([`BankStats::busy_cycles`]) and the peak number of simultaneous waiters.
//!
//! With the default configuration ([`BankContentionConfig::flat`]: one port, unbounded
//! queue) the model is *algebraically identical* to the seed's `busy_until` arithmetic,
//! which is what keeps every zero-contention configuration bit-for-bit compatible with
//! the flat-latency model — a property enforced by the regression tests in this module
//! and in `llc.rs`.
//!
//! # Row-buffer-aware FR-FCFS scheduling
//!
//! When constructed with an enabled [`RowModelConfig`] (see
//! [`BankModel::with_row_model`]), each bank additionally keeps a row register and
//! [`BankModel::schedule`] classifies every request FR-FCFS style:
//!
//! * a request to the **open row** is *ready* and is granted the row-hit latency —
//!   the scheduler serves it ahead of older queued requests to other rows, so each
//!   such grant increments the bypass count of every queued request to another row;
//! * a request to an **idle (closed) bank** pays the row-miss latency (activate only);
//! * a request that must **close another row** pays the row-conflict latency.
//!
//! A starvation cap bounds the reordering: once any queued request has been bypassed
//! [`RowModelConfig::starvation_cap`] times, the bank reverts to oldest-first — later
//! ready arrivals lose their priority and are charged the conflict latency (by the
//! time the aged request has been served, it has changed the open row), until the aged
//! request drains. Retirement order remains the deterministic arrival order of the
//! FCFS skeleton (ties broken by port index): FR-FCFS here is a *latency-class*
//! model layered on the cycle-accounted queue, not an out-of-order replay of it —
//! the approximation is documented in `docs/architecture.md`. With the row model
//! disabled, `schedule` is bit-identical to [`BankModel::request`], which the
//! property wall in `crates/cache-sim/tests/frfcfs_properties.rs` enforces.
//!
//! # Per-core stall attribution
//!
//! [`BankModel::request_from`] and [`BankModel::schedule`] take the requesting core
//! and charge the same queue/admission cycle deltas that flow into [`BankStats`] to a
//! per-core [`CoreBankStalls`] vector, so `Σ_core` attribution equals the global bank
//! accounting exactly (the conservation law tested in `tests/scaling_study.rs`).
//!
//! The model relies on request times being non-decreasing across calls, which the
//! multi-core driver guarantees by advancing cores in global (cycle, core) order.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::config::{BankContentionConfig, RowModelConfig};

/// Occupancy/stall statistics for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Requests served by this bank.
    pub requests: u64,
    /// Requests that had to wait at all (for admission or for a port).
    pub queued_requests: u64,
    /// Cycles requests spent admitted but waiting for a free service port.
    pub queue_cycles: u64,
    /// Cycles requests spent stalled *before* admission because the finite queue was
    /// full (back-pressure). Always zero when the queue is unbounded.
    pub admission_stall_cycles: u64,
    /// Cycles a service port of this bank was occupied (summed over ports).
    pub busy_cycles: u64,
    /// Peak number of simultaneously waiting (admitted, not yet started) requests.
    pub peak_waiting: usize,
    /// Requests that hit the open row (always zero when the row model is disabled).
    pub row_hits: u64,
    /// Requests to an idle bank that only had to activate a row.
    pub row_misses: u64,
    /// Requests that had to close another row first (includes ready requests demoted
    /// by the starvation cap).
    pub row_conflicts: u64,
    /// Times the bank reverted to oldest-first because a queued request reached the
    /// starvation cap.
    pub starvation_pins: u64,
    /// Highest bypass count any queued request ever accumulated (<= starvation cap).
    pub max_bypass: u32,
}

impl BankStats {
    /// Total cycles requests spent stalled at this bank (admission + port wait).
    pub fn stall_cycles(&self) -> u64 {
        self.queue_cycles + self.admission_stall_cycles
    }

    /// Fraction of this bank's request time spent stalled rather than in service:
    /// `stall / (stall + busy)`. Zero when the bank saw no traffic.
    pub fn stall_share(&self) -> f64 {
        stall_share(self.stall_cycles(), self.busy_cycles)
    }
}

/// The bank-stall-share formula used at every aggregation level:
/// `stall / (stall + busy)`, zero when there was no traffic at all.
pub fn stall_share(stall_cycles: u64, busy_cycles: u64) -> f64 {
    let total = stall_cycles + busy_cycles;
    if total == 0 {
        0.0
    } else {
        stall_cycles as f64 / total as f64
    }
}

/// Stall share aggregated over a set of banks: `Σstall / (Σstall + Σbusy)`.
pub fn aggregate_stall_share<'a>(banks: impl IntoIterator<Item = &'a BankStats>) -> f64 {
    let (stall, busy) = banks.into_iter().fold((0u64, 0u64), |(s, b), bank| {
        (s + bank.stall_cycles(), b + bank.busy_cycles)
    });
    stall_share(stall, busy)
}

/// Outcome of one bank request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRequest {
    /// Cycles the request waited before starting service (admission stall + port wait).
    pub delay: u64,
    /// Absolute cycle at which service started.
    pub start: u64,
    /// Absolute cycle at which service completed (`start + service_cycles`).
    pub completion: u64,
}

/// Row-buffer outcome of a scheduled request (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowClass {
    /// The request hit the bank's open row.
    Hit,
    /// The bank's row buffer was closed; the request only had to activate.
    Miss,
    /// Another row was open (or the request lost its ready priority to an aged
    /// request under the starvation cap) and had to precharge first.
    Conflict,
}

impl RowClass {
    /// Latency class in cycles under `rm`.
    pub fn cycles(self, rm: &RowModelConfig) -> u64 {
        match self {
            RowClass::Hit => rm.row_hit_cycles,
            RowClass::Miss => rm.row_miss_cycles,
            RowClass::Conflict => rm.row_conflict_cycles,
        }
    }
}

/// Stall cycles attributed to one requesting core across all banks of a model.
///
/// The deltas are exactly the amounts simultaneously added to the global
/// [`BankStats`], so summing this vector over cores reproduces the global
/// accounting bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreBankStalls {
    /// Cycles this core's requests spent admitted but waiting for a free port.
    pub queue_cycles: u64,
    /// Cycles this core's requests spent refused admission (full finite queue).
    pub admission_stall_cycles: u64,
}

impl CoreBankStalls {
    /// Total stall cycles attributed to the core (admission + port wait).
    pub fn stall_cycles(&self) -> u64 {
        self.queue_cycles + self.admission_stall_cycles
    }
}

/// Outcome of [`BankModel::schedule`]: the queue-accounted request plus the
/// row-buffer latency class (when the row model is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSchedule {
    /// The underlying cycle-accounted bank request (queuing delay, start, completion).
    pub request: BankRequest,
    /// Row-buffer outcome, `None` when the row model is disabled.
    pub class: Option<RowClass>,
    /// Latency class in cycles to charge for the access (0 when the row model is
    /// disabled — the caller then applies its own legacy latency classification).
    pub class_cycles: u64,
}

/// Per-bank state: port free times plus the admitted-but-unstarted request queue.
#[derive(Debug, Clone)]
struct Bank {
    /// When each service port becomes free.
    port_free: Vec<u64>,
    /// Start times of requests that have been admitted but have not begun service,
    /// in non-decreasing order (request times are non-decreasing, see module docs).
    waiting: VecDeque<u64>,
}

/// A queued request tracked by the row scheduler: when it starts service, which row
/// it targets, and how many times a ready request has been granted ahead of it.
#[derive(Debug, Clone, Copy)]
struct PendingRow {
    start: u64,
    row: u64,
    bypassed: u32,
}

/// Row-buffer state of one bank: the open-row register plus the bypass-tracked
/// queue of admitted-but-unstarted requests.
#[derive(Debug, Clone, Default)]
struct RowState {
    open_row: Option<u64>,
    pending: VecDeque<PendingRow>,
}

/// A group of cycle-accounted banks (see the module documentation).
#[derive(Debug, Clone)]
pub struct BankModel {
    config: BankContentionConfig,
    banks: Vec<Bank>,
    stats: Vec<BankStats>,
    /// FR-FCFS row model; `None` keeps the seed's pure FCFS behaviour.
    row_model: Option<RowModelConfig>,
    /// Row-buffer state, one per bank (empty when the row model is disabled).
    rows: Vec<RowState>,
    /// Stall attribution per requesting core, grown on demand.
    core_stalls: Vec<CoreBankStalls>,
}

impl BankModel {
    /// Create `num_banks` banks governed by `config` (no row model — the seed's
    /// FCFS behaviour).
    pub fn new(num_banks: usize, config: BankContentionConfig) -> Self {
        Self::with_row_model(num_banks, config, RowModelConfig::disabled())
    }

    /// Create `num_banks` banks with an explicit row-buffer scheduling model. A
    /// disabled `row_model` is bit-identical to [`BankModel::new`].
    pub fn with_row_model(
        num_banks: usize,
        config: BankContentionConfig,
        row_model: RowModelConfig,
    ) -> Self {
        assert!(config.ports >= 1, "banks need at least one service port");
        let enabled = row_model.enabled;
        if enabled {
            assert!(row_model.starvation_cap >= 1, "starvation cap must be >= 1");
        }
        BankModel {
            banks: vec![
                Bank {
                    port_free: vec![0; config.ports],
                    waiting: VecDeque::new(),
                };
                num_banks
            ],
            stats: vec![BankStats::default(); num_banks],
            row_model: enabled.then_some(row_model),
            rows: vec![RowState::default(); if enabled { num_banks } else { 0 }],
            core_stalls: Vec::new(),
            config,
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The contention configuration governing every bank.
    pub fn config(&self) -> &BankContentionConfig {
        &self.config
    }

    /// Per-bank statistics, indexed by bank.
    pub fn stats(&self) -> &[BankStats] {
        &self.stats
    }

    /// Stall cycles attributed per requesting core. The vector covers cores
    /// `0..=max core seen` on the attributed entry points ([`BankModel::request_from`]
    /// and [`BankModel::schedule`]); anonymous [`BankModel::request`] calls are not
    /// attributed.
    pub fn core_stalls(&self) -> &[CoreBankStalls] {
        &self.core_stalls
    }

    /// Issue a request to `bank` at absolute cycle `now`, occupying a service port for
    /// `service_cycles`. Returns when the request started and completed; the queuing
    /// delay (`start - now`) is what the caller charges on top of its service latency.
    pub fn request(&mut self, bank: usize, now: u64, service_cycles: u64) -> BankRequest {
        self.request_inner(bank, now, service_cycles, None)
    }

    /// [`BankModel::request`] with per-core stall attribution: the queue/admission
    /// cycles this request contributes to [`BankStats`] are also charged to `core`.
    pub fn request_from(
        &mut self,
        bank: usize,
        now: u64,
        service_cycles: u64,
        core: usize,
    ) -> BankRequest {
        self.request_inner(bank, now, service_cycles, Some(core))
    }

    /// Schedule a request against `bank`'s row buffer (FR-FCFS, see module docs) and
    /// the cycle-accounted queue. `row` is the DRAM row the request targets; `core`
    /// receives the stall attribution. With the row model disabled this is exactly
    /// [`BankModel::request_from`] with `class: None`.
    pub fn schedule(
        &mut self,
        bank: usize,
        now: u64,
        service_cycles: u64,
        core: usize,
        row: u64,
    ) -> BankSchedule {
        let Some(rm) = self.row_model else {
            return BankSchedule {
                request: self.request_inner(bank, now, service_cycles, Some(core)),
                class: None,
                class_cycles: 0,
            };
        };

        {
            // Requests that have started service no longer constrain the scheduler;
            // each one moves the row register to its row as it goes (the register
            // tracks *served* requests, so a queued conflict does not clobber the
            // open row before its service actually begins).
            let rs = &mut self.rows[bank];
            while let Some(&e) = rs.pending.front() {
                if e.start > now {
                    break;
                }
                rs.pending.pop_front();
                rs.open_row = if rm.closed_page { None } else { Some(e.row) };
            }
        }

        // Oldest-first pin: once any queued request has been bypassed to the cap, the
        // bank stops granting ready-first priority until that request drains.
        let pinned = self.rows[bank]
            .pending
            .iter()
            .any(|e| e.bypassed >= rm.starvation_cap);
        let ready = self.rows[bank].open_row == Some(row);
        let class = if ready && !pinned {
            RowClass::Hit
        } else if ready {
            // Demoted: by the time the aged request has been served ahead of us, it
            // will have changed the open row, so the former hit pays a conflict.
            RowClass::Conflict
        } else if self.rows[bank].open_row.is_none() {
            RowClass::Miss
        } else {
            RowClass::Conflict
        };

        let st = &mut self.stats[bank];
        match class {
            RowClass::Hit => st.row_hits += 1,
            RowClass::Miss => st.row_misses += 1,
            RowClass::Conflict => st.row_conflicts += 1,
        }
        if class == RowClass::Hit {
            // A ready grant bypasses every queued request to another row.
            let rs = &mut self.rows[bank];
            for e in rs.pending.iter_mut() {
                if e.row != row {
                    e.bypassed += 1;
                    if e.bypassed == rm.starvation_cap {
                        st.starvation_pins += 1;
                    }
                    st.max_bypass = st.max_bypass.max(e.bypassed);
                }
            }
        }
        let request = self.request_inner(bank, now, service_cycles, Some(core));
        if request.start > now {
            // Queued: the row register moves to this request's row when its service
            // begins (handled by the drain loop above on a later call).
            self.rows[bank].pending.push_back(PendingRow {
                start: request.start,
                row,
                bypassed: 0,
            });
        } else {
            // Service begins immediately: the row opens (or closes again) now.
            self.rows[bank].open_row = if rm.closed_page { None } else { Some(row) };
        }
        BankSchedule {
            request,
            class: Some(class),
            class_cycles: class.cycles(&rm),
        }
    }

    /// The seed-exact FCFS arithmetic shared by every entry point. `core`, when
    /// present, receives exactly the stall deltas added to the global stats.
    fn request_inner(
        &mut self,
        bank: usize,
        now: u64,
        service_cycles: u64,
        core: Option<usize>,
    ) -> BankRequest {
        let b = &mut self.banks[bank];
        let st = &mut self.stats[bank];
        st.requests += 1;

        // Requests whose service already started are no longer waiting.
        while b.waiting.front().is_some_and(|&s| s <= now) {
            b.waiting.pop_front();
        }

        // Admission: a full finite queue delays the request until enough earlier
        // requests start service that a slot frees up.
        let mut admit = now;
        if self.config.queue_depth > 0 && b.waiting.len() >= self.config.queue_depth {
            admit = b.waiting[b.waiting.len() - self.config.queue_depth];
            st.admission_stall_cycles += admit - now;
        }

        // Service starts on the earliest-free port (lowest index on ties).
        let (port, free) = b
            .port_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, f)| (f, i))
            .expect("at least one port");
        let start = admit.max(free);
        b.port_free[port] = start + service_cycles;
        st.busy_cycles += service_cycles;

        if start > now {
            st.queued_requests += 1;
            st.queue_cycles += start - admit;
            b.waiting.push_back(start);
            // Entries that will still be waiting while this request waits, i.e. the
            // instantaneous queue population at `admit` (binary search: `waiting` is
            // sorted non-decreasing).
            let mut lo = 0;
            let mut hi = b.waiting.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                if b.waiting[mid] <= admit {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            st.peak_waiting = st.peak_waiting.max(b.waiting.len() - lo);
        }

        if let Some(core) = core {
            if core >= self.core_stalls.len() {
                self.core_stalls.resize(core + 1, CoreBankStalls::default());
            }
            let cs = &mut self.core_stalls[core];
            // Mirror the global increments exactly: `admit - now` is zero unless the
            // admission branch fired, and queue cycles accrue only when the request
            // actually waited — so summing over cores reproduces the bank totals.
            cs.admission_stall_cycles += admit - now;
            if start > now {
                cs.queue_cycles += start - admit;
            }
        }

        BankRequest {
            delay: start - now,
            start,
            completion: start + service_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat() -> BankContentionConfig {
        BankContentionConfig::flat()
    }

    /// The seed's latency-only bank: a single `busy_until` timestamp per bank.
    struct FlatReference {
        busy_until: Vec<u64>,
        busy_cycles: u64,
    }

    impl FlatReference {
        fn new(banks: usize, busy_cycles: u64) -> Self {
            FlatReference {
                busy_until: vec![0; banks],
                busy_cycles,
            }
        }
        fn access(&mut self, bank: usize, now: u64) -> u64 {
            let delay = self.busy_until[bank].saturating_sub(now);
            self.busy_until[bank] = now + delay + self.busy_cycles;
            delay
        }
    }

    #[test]
    fn flat_config_reproduces_the_seed_busy_until_model_exactly() {
        // Deterministic pseudo-random request pattern with non-decreasing times.
        let mut model = BankModel::new(4, flat());
        let mut reference = FlatReference::new(4, 7);
        let mut now = 0u64;
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += x % 5;
            let bank = (x >> 8) as usize % 4;
            let expected = reference.access(bank, now);
            let got = model.request(bank, now, 7);
            assert_eq!(got.delay, expected);
            assert_eq!(got.completion, now + expected + 7);
        }
        // The flat model never refuses admission.
        for s in model.stats() {
            assert_eq!(s.admission_stall_cycles, 0);
        }
    }

    #[test]
    fn idle_bank_adds_no_delay() {
        let mut m = BankModel::new(2, BankContentionConfig::contended(2, 4));
        let r = m.request(0, 100, 10);
        assert_eq!(r.delay, 0);
        assert_eq!(r.start, 100);
        assert_eq!(r.completion, 110);
        assert_eq!(m.stats()[0].queued_requests, 0);
    }

    #[test]
    fn two_ports_serve_two_concurrent_requests_without_queuing() {
        let mut m = BankModel::new(1, BankContentionConfig::contended(2, 8));
        let a = m.request(0, 0, 10);
        let b = m.request(0, 0, 10);
        let c = m.request(0, 0, 10);
        assert_eq!(a.delay, 0);
        assert_eq!(b.delay, 0, "second port absorbs the second request");
        assert_eq!(c.delay, 10, "third request waits for a port");
        assert_eq!(m.stats()[0].queued_requests, 1);
        assert_eq!(m.stats()[0].queue_cycles, 10);
    }

    #[test]
    fn full_queue_stalls_admission() {
        // One port, queue depth 1: the third concurrent request cannot even be
        // admitted until the second one starts service.
        let mut m = BankModel::new(1, BankContentionConfig::contended(1, 1));
        let a = m.request(0, 0, 10); // serves [0, 10)
        let b = m.request(0, 0, 10); // waits, starts at 10
        let c = m.request(0, 0, 10); // queue full: admitted at 10, starts at 20
        assert_eq!(a.delay, 0);
        assert_eq!(b.delay, 10);
        assert_eq!(c.delay, 20);
        let st = &m.stats()[0];
        assert_eq!(st.admission_stall_cycles, 10);
        assert_eq!(st.queue_cycles, 10 + 10);
        assert_eq!(st.peak_waiting, 1);
    }

    #[test]
    fn unbounded_queue_never_stalls_admission() {
        let mut m = BankModel::new(1, flat());
        for _ in 0..100 {
            m.request(0, 0, 5);
        }
        let st = &m.stats()[0];
        assert_eq!(st.admission_stall_cycles, 0);
        assert_eq!(st.queued_requests, 99);
        // Request i waits i * 5 cycles.
        assert_eq!(st.queue_cycles, (0..100u64).map(|i| i * 5).sum::<u64>());
    }

    #[test]
    fn waiters_drain_as_time_advances() {
        let mut m = BankModel::new(1, BankContentionConfig::contended(1, 2));
        m.request(0, 0, 10);
        m.request(0, 0, 10);
        m.request(0, 0, 10);
        // At cycle 40 everything has retired: a fresh request is served immediately.
        let r = m.request(0, 40, 10);
        assert_eq!(r.delay, 0);
        assert_eq!(m.stats()[0].requests, 4);
    }

    #[test]
    fn stall_share_reflects_queue_pressure() {
        let mut idle = BankModel::new(1, flat());
        idle.request(0, 0, 10);
        assert_eq!(idle.stats()[0].stall_share(), 0.0);

        let mut busy = BankModel::new(1, flat());
        busy.request(0, 0, 10);
        busy.request(0, 0, 10); // waits 10, serves 10
        let share = busy.stats()[0].stall_share();
        assert!((share - 10.0 / 30.0).abs() < 1e-12, "share {share}");
    }

    fn frfcfs(cap: u32) -> RowModelConfig {
        RowModelConfig::frfcfs(180, 260, 340, cap)
    }

    #[test]
    fn disabled_row_model_schedules_bit_identically_to_fcfs_request() {
        let mut fcfs = BankModel::new(4, BankContentionConfig::contended(2, 4));
        let mut sched = BankModel::with_row_model(
            4,
            BankContentionConfig::contended(2, 4),
            RowModelConfig::disabled(),
        );
        let mut now = 0u64;
        let mut x = 0xdead_beef_cafe_f00du64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += x % 4;
            let bank = (x >> 8) as usize % 4;
            let expected = fcfs.request(bank, now, 9);
            let got = sched.schedule(bank, now, 9, (x >> 16) as usize % 8, x % 64);
            assert_eq!(got.request, expected);
            assert_eq!(got.class, None);
            assert_eq!(got.class_cycles, 0);
        }
        assert_eq!(fcfs.stats(), sched.stats());
    }

    #[test]
    fn row_register_classifies_hit_miss_conflict() {
        let mut m = BankModel::with_row_model(1, flat(), frfcfs(4));
        let a = m.schedule(0, 0, 4, 0, 7);
        assert_eq!(a.class, Some(RowClass::Miss), "idle bank activates only");
        assert_eq!(a.class_cycles, 260);
        let b = m.schedule(0, 100, 4, 0, 7);
        assert_eq!(b.class, Some(RowClass::Hit));
        assert_eq!(b.class_cycles, 180);
        let c = m.schedule(0, 200, 4, 0, 9);
        assert_eq!(c.class, Some(RowClass::Conflict));
        assert_eq!(c.class_cycles, 340);
        let st = &m.stats()[0];
        assert_eq!((st.row_hits, st.row_misses, st.row_conflicts), (1, 1, 1));
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut rm = frfcfs(4);
        rm.closed_page = true;
        let mut m = BankModel::with_row_model(1, flat(), rm);
        for i in 0..10 {
            let s = m.schedule(0, i * 1000, 4, 0, 7);
            assert_eq!(s.class, Some(RowClass::Miss));
        }
        assert_eq!(m.stats()[0].row_hits, 0);
    }

    #[test]
    fn starvation_cap_demotes_ready_requests_until_aged_request_drains() {
        // Cap 2: queue a conflicting request behind a stream of row hits. After two
        // bypasses the bank pins; further would-be hits are demoted to conflicts.
        let mut m = BankModel::with_row_model(1, flat(), frfcfs(2));
        m.schedule(0, 0, 100, 0, 7); // opens row 7, serves [0, 100)
        let aged = m.schedule(0, 1, 100, 1, 9); // queued for row 9, starts at 100
        assert_eq!(aged.class, Some(RowClass::Conflict));
        assert_eq!(m.schedule(0, 2, 100, 0, 7).class, Some(RowClass::Hit));
        assert_eq!(m.schedule(0, 3, 100, 0, 7).class, Some(RowClass::Hit));
        // The aged request has now been bypassed twice (== cap): pinned.
        let demoted = m.schedule(0, 4, 100, 0, 7);
        assert_eq!(
            demoted.class,
            Some(RowClass::Conflict),
            "ready request demoted"
        );
        let st = &m.stats()[0];
        assert_eq!(st.starvation_pins, 1);
        assert_eq!(st.max_bypass, 2);
        // Once time passes the aged request's start, the pin lifts.
        let later = m.schedule(0, 5_000, 100, 0, 7);
        assert_eq!(later.class, Some(RowClass::Hit));
    }

    #[test]
    fn per_core_stalls_sum_to_global_accounting() {
        let mut m = BankModel::new(2, BankContentionConfig::contended(1, 2));
        let mut now = 0u64;
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += x % 3;
            m.request_from((x >> 4) as usize % 2, now, 6, (x >> 9) as usize % 5);
        }
        let global_queue: u64 = m.stats().iter().map(|s| s.queue_cycles).sum();
        let global_adm: u64 = m.stats().iter().map(|s| s.admission_stall_cycles).sum();
        let core_queue: u64 = m.core_stalls().iter().map(|c| c.queue_cycles).sum();
        let core_adm: u64 = m
            .core_stalls()
            .iter()
            .map(|c| c.admission_stall_cycles)
            .sum();
        assert!(global_queue > 0, "test must exercise queuing");
        assert_eq!(core_queue, global_queue);
        assert_eq!(core_adm, global_adm);
        assert_eq!(m.core_stalls().len(), 5);
    }

    #[test]
    fn determinism_identical_sequences_yield_identical_stats() {
        let run = || {
            let mut m = BankModel::new(4, BankContentionConfig::contended(2, 4));
            let mut now = 0;
            for i in 0..5_000u64 {
                now += i % 3;
                m.request((i % 4) as usize, now, 4 + i % 9);
            }
            m.stats().to_vec()
        };
        assert_eq!(run(), run());
    }
}
