//! Cycle-accounted bank contention model shared by the LLC and DRAM.
//!
//! The seed simulator modeled a bank as a single `busy_until` timestamp: every request
//! waited for the bank to go idle and then occupied it for a fixed window. That is a
//! one-port, infinitely-buffered server — latency-only banking in which concurrent
//! misses are invisible except through a scalar queue delay. [`BankModel`] generalizes
//! it into a cycle-accounted contention subsystem:
//!
//! * **Finite service ports.** Each bank owns [`BankContentionConfig::ports`] parallel
//!   service ports. A request starts service on the earliest-free port (ties broken by
//!   the lowest port index, so retirement order is deterministic) and occupies it for
//!   the service window.
//! * **Finite request queues.** Each bank admits at most
//!   [`BankContentionConfig::queue_depth`] waiting requests. When the queue is full, a
//!   new request stalls *before admission* until an earlier request starts service and
//!   frees a slot — back-pressure that propagates to the requesting core as extra
//!   latency rather than vanishing into an unbounded buffer.
//! * **Per-bank statistics.** Every bank tracks how many requests it served, how long
//!   they waited for a port ([`BankStats::queue_cycles`]), how long they were refused
//!   admission ([`BankStats::admission_stall_cycles`]), how many cycles its ports were
//!   occupied ([`BankStats::busy_cycles`]) and the peak number of simultaneous waiters.
//!
//! With the default configuration ([`BankContentionConfig::flat`]: one port, unbounded
//! queue) the model is *algebraically identical* to the seed's `busy_until` arithmetic,
//! which is what keeps every zero-contention configuration bit-for-bit compatible with
//! the flat-latency model — a property enforced by the regression tests in this module
//! and in `llc.rs`.
//!
//! The model relies on request times being non-decreasing across calls, which the
//! multi-core driver guarantees by advancing cores in global (cycle, core) order.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::config::BankContentionConfig;

/// Occupancy/stall statistics for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Requests served by this bank.
    pub requests: u64,
    /// Requests that had to wait at all (for admission or for a port).
    pub queued_requests: u64,
    /// Cycles requests spent admitted but waiting for a free service port.
    pub queue_cycles: u64,
    /// Cycles requests spent stalled *before* admission because the finite queue was
    /// full (back-pressure). Always zero when the queue is unbounded.
    pub admission_stall_cycles: u64,
    /// Cycles a service port of this bank was occupied (summed over ports).
    pub busy_cycles: u64,
    /// Peak number of simultaneously waiting (admitted, not yet started) requests.
    pub peak_waiting: usize,
}

impl BankStats {
    /// Total cycles requests spent stalled at this bank (admission + port wait).
    pub fn stall_cycles(&self) -> u64 {
        self.queue_cycles + self.admission_stall_cycles
    }

    /// Fraction of this bank's request time spent stalled rather than in service:
    /// `stall / (stall + busy)`. Zero when the bank saw no traffic.
    pub fn stall_share(&self) -> f64 {
        stall_share(self.stall_cycles(), self.busy_cycles)
    }
}

/// The bank-stall-share formula used at every aggregation level:
/// `stall / (stall + busy)`, zero when there was no traffic at all.
pub fn stall_share(stall_cycles: u64, busy_cycles: u64) -> f64 {
    let total = stall_cycles + busy_cycles;
    if total == 0 {
        0.0
    } else {
        stall_cycles as f64 / total as f64
    }
}

/// Stall share aggregated over a set of banks: `Σstall / (Σstall + Σbusy)`.
pub fn aggregate_stall_share<'a>(banks: impl IntoIterator<Item = &'a BankStats>) -> f64 {
    let (stall, busy) = banks.into_iter().fold((0u64, 0u64), |(s, b), bank| {
        (s + bank.stall_cycles(), b + bank.busy_cycles)
    });
    stall_share(stall, busy)
}

/// Outcome of one bank request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRequest {
    /// Cycles the request waited before starting service (admission stall + port wait).
    pub delay: u64,
    /// Absolute cycle at which service started.
    pub start: u64,
    /// Absolute cycle at which service completed (`start + service_cycles`).
    pub completion: u64,
}

/// Per-bank state: port free times plus the admitted-but-unstarted request queue.
#[derive(Debug, Clone)]
struct Bank {
    /// When each service port becomes free.
    port_free: Vec<u64>,
    /// Start times of requests that have been admitted but have not begun service,
    /// in non-decreasing order (request times are non-decreasing, see module docs).
    waiting: VecDeque<u64>,
}

/// A group of cycle-accounted banks (see the module documentation).
#[derive(Debug, Clone)]
pub struct BankModel {
    config: BankContentionConfig,
    banks: Vec<Bank>,
    stats: Vec<BankStats>,
}

impl BankModel {
    /// Create `num_banks` banks governed by `config`.
    pub fn new(num_banks: usize, config: BankContentionConfig) -> Self {
        assert!(config.ports >= 1, "banks need at least one service port");
        BankModel {
            banks: vec![
                Bank {
                    port_free: vec![0; config.ports],
                    waiting: VecDeque::new(),
                };
                num_banks
            ],
            stats: vec![BankStats::default(); num_banks],
            config,
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The contention configuration governing every bank.
    pub fn config(&self) -> &BankContentionConfig {
        &self.config
    }

    /// Per-bank statistics, indexed by bank.
    pub fn stats(&self) -> &[BankStats] {
        &self.stats
    }

    /// Issue a request to `bank` at absolute cycle `now`, occupying a service port for
    /// `service_cycles`. Returns when the request started and completed; the queuing
    /// delay (`start - now`) is what the caller charges on top of its service latency.
    pub fn request(&mut self, bank: usize, now: u64, service_cycles: u64) -> BankRequest {
        let b = &mut self.banks[bank];
        let st = &mut self.stats[bank];
        st.requests += 1;

        // Requests whose service already started are no longer waiting.
        while b.waiting.front().is_some_and(|&s| s <= now) {
            b.waiting.pop_front();
        }

        // Admission: a full finite queue delays the request until enough earlier
        // requests start service that a slot frees up.
        let mut admit = now;
        if self.config.queue_depth > 0 && b.waiting.len() >= self.config.queue_depth {
            admit = b.waiting[b.waiting.len() - self.config.queue_depth];
            st.admission_stall_cycles += admit - now;
        }

        // Service starts on the earliest-free port (lowest index on ties).
        let (port, free) = b
            .port_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, f)| (f, i))
            .expect("at least one port");
        let start = admit.max(free);
        b.port_free[port] = start + service_cycles;
        st.busy_cycles += service_cycles;

        if start > now {
            st.queued_requests += 1;
            st.queue_cycles += start - admit;
            b.waiting.push_back(start);
            // Entries that will still be waiting while this request waits, i.e. the
            // instantaneous queue population at `admit` (binary search: `waiting` is
            // sorted non-decreasing).
            let mut lo = 0;
            let mut hi = b.waiting.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                if b.waiting[mid] <= admit {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            st.peak_waiting = st.peak_waiting.max(b.waiting.len() - lo);
        }

        BankRequest {
            delay: start - now,
            start,
            completion: start + service_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat() -> BankContentionConfig {
        BankContentionConfig::flat()
    }

    /// The seed's latency-only bank: a single `busy_until` timestamp per bank.
    struct FlatReference {
        busy_until: Vec<u64>,
        busy_cycles: u64,
    }

    impl FlatReference {
        fn new(banks: usize, busy_cycles: u64) -> Self {
            FlatReference {
                busy_until: vec![0; banks],
                busy_cycles,
            }
        }
        fn access(&mut self, bank: usize, now: u64) -> u64 {
            let delay = self.busy_until[bank].saturating_sub(now);
            self.busy_until[bank] = now + delay + self.busy_cycles;
            delay
        }
    }

    #[test]
    fn flat_config_reproduces_the_seed_busy_until_model_exactly() {
        // Deterministic pseudo-random request pattern with non-decreasing times.
        let mut model = BankModel::new(4, flat());
        let mut reference = FlatReference::new(4, 7);
        let mut now = 0u64;
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += x % 5;
            let bank = (x >> 8) as usize % 4;
            let expected = reference.access(bank, now);
            let got = model.request(bank, now, 7);
            assert_eq!(got.delay, expected);
            assert_eq!(got.completion, now + expected + 7);
        }
        // The flat model never refuses admission.
        for s in model.stats() {
            assert_eq!(s.admission_stall_cycles, 0);
        }
    }

    #[test]
    fn idle_bank_adds_no_delay() {
        let mut m = BankModel::new(2, BankContentionConfig::contended(2, 4));
        let r = m.request(0, 100, 10);
        assert_eq!(r.delay, 0);
        assert_eq!(r.start, 100);
        assert_eq!(r.completion, 110);
        assert_eq!(m.stats()[0].queued_requests, 0);
    }

    #[test]
    fn two_ports_serve_two_concurrent_requests_without_queuing() {
        let mut m = BankModel::new(1, BankContentionConfig::contended(2, 8));
        let a = m.request(0, 0, 10);
        let b = m.request(0, 0, 10);
        let c = m.request(0, 0, 10);
        assert_eq!(a.delay, 0);
        assert_eq!(b.delay, 0, "second port absorbs the second request");
        assert_eq!(c.delay, 10, "third request waits for a port");
        assert_eq!(m.stats()[0].queued_requests, 1);
        assert_eq!(m.stats()[0].queue_cycles, 10);
    }

    #[test]
    fn full_queue_stalls_admission() {
        // One port, queue depth 1: the third concurrent request cannot even be
        // admitted until the second one starts service.
        let mut m = BankModel::new(1, BankContentionConfig::contended(1, 1));
        let a = m.request(0, 0, 10); // serves [0, 10)
        let b = m.request(0, 0, 10); // waits, starts at 10
        let c = m.request(0, 0, 10); // queue full: admitted at 10, starts at 20
        assert_eq!(a.delay, 0);
        assert_eq!(b.delay, 10);
        assert_eq!(c.delay, 20);
        let st = &m.stats()[0];
        assert_eq!(st.admission_stall_cycles, 10);
        assert_eq!(st.queue_cycles, 10 + 10);
        assert_eq!(st.peak_waiting, 1);
    }

    #[test]
    fn unbounded_queue_never_stalls_admission() {
        let mut m = BankModel::new(1, flat());
        for _ in 0..100 {
            m.request(0, 0, 5);
        }
        let st = &m.stats()[0];
        assert_eq!(st.admission_stall_cycles, 0);
        assert_eq!(st.queued_requests, 99);
        // Request i waits i * 5 cycles.
        assert_eq!(st.queue_cycles, (0..100u64).map(|i| i * 5).sum::<u64>());
    }

    #[test]
    fn waiters_drain_as_time_advances() {
        let mut m = BankModel::new(1, BankContentionConfig::contended(1, 2));
        m.request(0, 0, 10);
        m.request(0, 0, 10);
        m.request(0, 0, 10);
        // At cycle 40 everything has retired: a fresh request is served immediately.
        let r = m.request(0, 40, 10);
        assert_eq!(r.delay, 0);
        assert_eq!(m.stats()[0].requests, 4);
    }

    #[test]
    fn stall_share_reflects_queue_pressure() {
        let mut idle = BankModel::new(1, flat());
        idle.request(0, 0, 10);
        assert_eq!(idle.stats()[0].stall_share(), 0.0);

        let mut busy = BankModel::new(1, flat());
        busy.request(0, 0, 10);
        busy.request(0, 0, 10); // waits 10, serves 10
        let share = busy.stats()[0].stall_share();
        assert!((share - 10.0 / 30.0).abs() < 1e-12, "share {share}");
    }

    #[test]
    fn determinism_identical_sequences_yield_identical_stats() {
        let run = || {
            let mut m = BankModel::new(4, BankContentionConfig::contended(2, 4));
            let mut now = 0;
            for i in 0..5_000u64 {
                now += i % 3;
                m.request((i % 4) as usize, now, 4 + i % 9);
            }
            m.stats().to_vec()
        };
        assert_eq!(run(), run());
    }
}
