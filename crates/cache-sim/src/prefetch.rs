//! Next-line L1 prefetcher (paper Table 3: "next-line prefetch" at L1).
//!
//! On every demand L1 miss the prefetcher requests the next sequential block. Prefetch
//! requests travel down the hierarchy like demand requests but are tagged `is_demand =
//! false`, so they neither update LLC recency state nor get sampled by ADAPT's monitor
//! (paper §3.1: "Only demand accesses update the recency state").

use crate::addr::BlockAddr;

/// Statistics for a prefetcher instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    pub issued: u64,
    /// Prefetches suppressed because the line was already present in L1.
    pub filtered: u64,
}

/// Simple next-line prefetcher.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    enabled: bool,
    stats: PrefetchStats,
}

impl NextLinePrefetcher {
    pub fn new(enabled: bool) -> Self {
        NextLinePrefetcher {
            enabled,
            stats: PrefetchStats::default(),
        }
    }

    /// Given a demand miss on `block`, return the block to prefetch (if any).
    /// `already_present` lets the caller filter prefetches that would hit in L1 anyway.
    pub fn on_demand_miss(
        &mut self,
        block: BlockAddr,
        already_present: impl Fn(BlockAddr) -> bool,
    ) -> Option<BlockAddr> {
        if !self.enabled {
            return None;
        }
        let candidate = block.next();
        if already_present(candidate) {
            self.stats.filtered += 1;
            None
        } else {
            self.stats.issued += 1;
            Some(candidate)
        }
    }

    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_issues_nothing() {
        let mut p = NextLinePrefetcher::new(false);
        assert_eq!(p.on_demand_miss(BlockAddr(10), |_| false), None);
        assert_eq!(p.stats().issued, 0);
    }

    #[test]
    fn issues_next_block_on_miss() {
        let mut p = NextLinePrefetcher::new(true);
        assert_eq!(
            p.on_demand_miss(BlockAddr(10), |_| false),
            Some(BlockAddr(11))
        );
        assert_eq!(p.stats().issued, 1);
    }

    #[test]
    fn filters_blocks_already_present() {
        let mut p = NextLinePrefetcher::new(true);
        assert_eq!(
            p.on_demand_miss(BlockAddr(10), |b| b == BlockAddr(11)),
            None
        );
        assert_eq!(p.stats().filtered, 1);
        assert_eq!(p.stats().issued, 0);
    }
}
