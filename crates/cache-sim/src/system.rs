//! Multi-core system driver.
//!
//! Each core owns a private L1D + L2, a next-line prefetcher and an approximate OoO timing
//! model; all cores share one banked LLC and the DRAM. Cores are advanced in global time
//! order — always the core with the smallest (cycle, core id) — so the interleaving of LLC
//! accesses — and therefore the contention the replacement policy sees — follows the same
//! relative order a cycle-accurate simulator would produce. The earliest core is found
//! with a linear scan over a dense per-core cycle array rather than the seed's binary
//! heap: at the paper's core counts (4–64) scanning a few cache-resident `u64`s per step
//! is cheaper than heap sift operations, and the pop order (and therefore every result)
//! is identical. The seed driver is retained verbatim in [`crate::reference`] as the
//! bit-identity oracle.
//!
//! Each core runs until it retires its per-core instruction target; cores that reach the
//! target keep executing (their statistics are snapshotted at the target) so that the
//! remaining cores continue to experience contention, exactly like the paper's methodology
//! of re-executing finished applications.

use crate::addr::{block_of, BlockAddr};
use crate::bank::BankStats;
use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::dram::Dram;
use crate::llc::{LlcGlobalStats, SharedLlc};
use crate::prefetch::NextLinePrefetcher;
use crate::private_cache::{Lookup, PrivateCache};
use crate::replacement::{
    AccessContext, InsertionDecision, LineView, LlcReplacementPolicy, RrpvArray,
};
use crate::stats::{CoreStats, SystemResults};
use crate::trace::TraceSource;

/// Consecutive zero-cycle-advance steps after which an already-finished (snapshotted)
/// core is retired from the scheduler instead of being re-executed further.
///
/// The paper's methodology re-executes a finished application so contention persists,
/// and a step costs zero cycles when the access hits the L1 with no instruction gap.
/// A *replayed* stream whose whole working set is L1-resident and gapless (trivial with
/// tiny imported traces) therefore freezes its core's clock; the frozen core stays the
/// earliest-cycle core forever and starves every unfinished one — an infinite loop.
/// Terminating workloads cannot reach this bound: 2^22 consecutive gapless L1 hits
/// would require a multi-million-access window with no L1 miss, which no Table 4
/// generator (footprints are sized far beyond the L1) produces. Both engines (this one
/// and `reference`) apply the identical rule, so their bit-identity is preserved.
pub const LIVELOCK_STEPS: u64 = 1 << 22;

/// One core plus its private hierarchy and trace.
struct CoreNode {
    model: CoreModel,
    l1d: PrivateCache,
    l2: PrivateCache,
    prefetcher: NextLinePrefetcher,
    trace: Box<dyn TraceSource>,
    dram_reads: u64,
    snapshot: Option<CoreStats>,
}

/// The simulated multi-core system.
///
/// Generic over the LLC replacement policy so the per-access policy callbacks
/// monomorphize (the experiment drivers instantiate it with the `llc_policies` dispatch
/// enum); the boxed default keeps the historical `Box<dyn ...>` call sites compiling
/// unchanged.
pub struct MultiCoreSystem<P: LlcReplacementPolicy = Box<dyn LlcReplacementPolicy>> {
    config: SystemConfig,
    cores: Vec<CoreNode>,
    llc: SharedLlc<P>,
    dram: Dram,
}

/// A simple SRRIP policy used as the default when callers do not care which policy runs
/// (examples, smoke tests). The study's baselines live in the `llc-policies` crate.
pub struct DefaultSrripPolicy {
    rrpv: RrpvArray,
}

impl DefaultSrripPolicy {
    pub fn new(num_sets: usize, ways: usize) -> Self {
        DefaultSrripPolicy {
            rrpv: RrpvArray::new(num_sets, ways),
        }
    }
}

impl LlcReplacementPolicy for DefaultSrripPolicy {
    fn name(&self) -> String {
        "SRRIP(default)".into()
    }
    fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
        self.rrpv.promote(ctx.set_index, way);
    }
    fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
        InsertionDecision::insert(2)
    }
    fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
        self.rrpv.find_victim(ctx.set_index)
    }
    fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
        if let InsertionDecision::Insert { rrpv } = decision {
            if way != usize::MAX {
                self.rrpv.set(ctx.set_index, way, *rrpv);
            }
        }
    }
}

impl MultiCoreSystem<DefaultSrripPolicy> {
    /// Build a system with the built-in default SRRIP policy.
    pub fn with_default_policy(config: SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        let policy =
            DefaultSrripPolicy::new(config.llc.geometry.num_sets(), config.llc.geometry.ways);
        Self::new(config, traces, policy)
    }
}

impl<P: LlcReplacementPolicy> MultiCoreSystem<P> {
    /// Build a system with an explicit LLC replacement policy.
    ///
    /// The policy may be any [`LlcReplacementPolicy`] value — a concrete policy type, the
    /// `llc_policies` dispatch enum, or a `Box<dyn LlcReplacementPolicy>` (the historical
    /// signature, still accepted through the boxed blanket impl).
    pub fn new(config: SystemConfig, traces: Vec<Box<dyn TraceSource>>, policy: P) -> Self {
        config.validate().expect("invalid system configuration");
        assert_eq!(
            traces.len(),
            config.num_cores,
            "need exactly one trace source per core"
        );
        let llc = SharedLlc::new(config.llc, config.num_cores, config.interval_misses, policy);
        let dram = Dram::new(config.dram);
        let cores = traces
            .into_iter()
            .map(|trace| CoreNode {
                model: CoreModel::new(config.core),
                l1d: PrivateCache::new(config.l1d),
                l2: PrivateCache::new(config.l2),
                prefetcher: NextLinePrefetcher::new(config.l1_next_line_prefetch),
                trace,
                dram_reads: 0,
                snapshot: None,
            })
            .collect();
        MultiCoreSystem {
            config,
            cores,
            llc,
            dram,
        }
    }

    /// Immutable access to the shared LLC (for inspection in tests/experiments).
    pub fn llc(&self) -> &SharedLlc<P> {
        &self.llc
    }

    /// Immutable access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Run until every core has retired at least `instructions_per_core` instructions;
    /// returns statistics snapshotted at each core's target.
    pub fn run(&mut self, instructions_per_core: u64) -> SystemResults {
        assert!(instructions_per_core > 0);
        let n = self.cores.len();
        // Dense next-cycle array scanned linearly for the earliest (cycle, core id) —
        // the same pop order as the seed's binary heap (ties break toward the lower
        // core id), without per-step sift work. See the module docs.
        let mut next_cycle: Vec<u64> = vec![0; n];
        let mut frozen_steps: Vec<u64> = vec![0; n];
        let mut remaining = n;
        // Opt-in per-interval sampling, keyed off the LLC's existing interval rollover
        // (`intervals_completed`) so it only ever *reads* statistics the simulation
        // already maintains — results are bit-identical with sampling on or off. The
        // enabled check is latched once per run; in the disabled state the per-step
        // cost is a branch on a local `Option`.
        let mut sampler = if sim_obs::enabled() {
            Some(IntervalSampler::new(&self.cores, &self.llc))
        } else {
            None
        };

        while remaining > 0 {
            let mut core_id = 0;
            let mut earliest = u64::MAX;
            for (i, &cycle) in next_cycle.iter().enumerate() {
                if cycle < earliest {
                    earliest = cycle;
                    core_id = i;
                }
            }
            let cycle_before = self.cores[core_id].model.cycle;
            self.step_core(core_id);
            let core = &mut self.cores[core_id];
            next_cycle[core_id] = core.model.cycle;
            if core.snapshot.is_none() && core.model.instructions >= instructions_per_core {
                let snap = Self::snapshot_core(core_id, core, &self.llc);
                core.snapshot = Some(snap);
                remaining -= 1;
            } else if core.snapshot.is_some() {
                // Livelock breaker for re-executed cores (see LIVELOCK_STEPS): a
                // finished core whose stream has become entirely cache-resident and
                // gapless advances zero cycles per step, stays the earliest core
                // forever, and would starve every unfinished core. Once it exceeds the
                // threshold, retire it from scheduling — its remaining "contribution"
                // would be infinitely many accesses on one frozen cycle.
                if core.model.cycle > cycle_before {
                    frozen_steps[core_id] = 0;
                } else {
                    frozen_steps[core_id] += 1;
                    if frozen_steps[core_id] >= LIVELOCK_STEPS {
                        next_cycle[core_id] = u64::MAX;
                    }
                }
            }
            if let Some(sampler) = sampler.as_mut() {
                sampler.observe(&self.cores, &self.llc);
            }
        }

        let final_cycle = self
            .cores
            .iter()
            .map(|c| c.snapshot.as_ref().map(|s| s.cycles).unwrap_or(0))
            .max()
            .unwrap_or(0);

        SystemResults {
            policy: self.llc.policy_name(),
            per_core: self
                .cores
                .iter()
                .map(|c| c.snapshot.clone().expect("all cores snapshotted"))
                .collect(),
            llc_global: *self.llc.global_stats(),
            llc_banks: self.llc.bank_stats().to_vec(),
            dram: *self.dram.stats(),
            core_stalls: crate::stats::assemble_core_stalls(
                n,
                self.llc.bank_core_stalls(),
                self.llc.mshr_core_stalls(),
                self.dram.core_stalls(),
            ),
            final_cycle,
        }
    }

    fn snapshot_core(core_id: usize, core: &CoreNode, llc: &SharedLlc<P>) -> CoreStats {
        CoreStats {
            core_id,
            label: core.trace.label(),
            instructions: core.model.instructions,
            cycles: core.model.cycle,
            compute_cycles: core.model.compute_cycles,
            mem_stall_cycles: core.model.mem_stall_cycles,
            l1d: *core.l1d.stats(),
            l2: *core.l2.stats(),
            llc: *llc.core_stats(core_id),
            prefetch: *core.prefetcher.stats(),
            dram_reads: core.dram_reads,
        }
    }

    /// Process one trace entry for `core_id`.
    ///
    /// The node, LLC and DRAM are borrowed once (disjoint fields) and threaded through
    /// the access resolution, so the hot path carries no repeated `cores[core_id]`
    /// bounds-checked indexing.
    fn step_core(&mut self, core_id: usize) {
        let MultiCoreSystem {
            config,
            cores,
            llc,
            dram,
        } = self;
        let core = &mut cores[core_id];
        let access = core.trace.next_access();
        let block = block_of(access.addr);
        let now = core.model.cycle;

        let (mem_latency, prefetch_candidate) = demand_access(
            config,
            core,
            llc,
            dram,
            core_id,
            block,
            access.pc,
            access.is_write,
            now,
        );

        if let Some(pf_block) = prefetch_candidate {
            prefetch_access(core, llc, dram, core_id, pf_block, access.pc, now);
        }

        core.model
            .advance(access.non_mem_instrs as u64, mem_latency);
    }
}

/// Per-interval observability sampling (only constructed while `sim_obs` recording is
/// enabled). At every completion of an LLC interval — the rollover interval-based
/// policies already key off — it emits one `interval.core` row per core (IPC, LLC
/// MPKI and occupancy deltas within the interval), one `interval.bank` row per LLC
/// bank (queue/admission/busy-cycle deltas) and one `interval.llc` row attributing
/// MSHR and write-back stalls. Everything is a pure read of statistics the simulator
/// maintains anyway, so enabling it cannot perturb results.
struct IntervalSampler {
    intervals_seen: u64,
    prev_instructions: Vec<u64>,
    prev_cycles: Vec<u64>,
    prev_misses: Vec<u64>,
    prev_banks: Vec<BankStats>,
    prev_global: LlcGlobalStats,
}

/// `interval.core` sample columns.
const CORE_SAMPLE_COLS: &[&str] = &[
    "interval",
    "core",
    "cycle",
    "instr",
    "ipc",
    "llc_mpki",
    "llc_lines",
];
/// `interval.bank` sample columns.
const BANK_SAMPLE_COLS: &[&str] = &[
    "interval",
    "bank",
    "requests",
    "queue_cycles",
    "admission_stall",
    "busy_cycles",
    "peak_waiting",
];
/// `interval.llc` sample columns.
const LLC_SAMPLE_COLS: &[&str] = &[
    "interval",
    "misses",
    "mshr_stall",
    "mshr_full",
    "wb_stall",
    "dirty_evictions",
];

impl IntervalSampler {
    fn new<P: LlcReplacementPolicy>(cores: &[CoreNode], llc: &SharedLlc<P>) -> Self {
        IntervalSampler {
            intervals_seen: llc.global_stats().intervals_completed,
            prev_instructions: vec![0; cores.len()],
            prev_cycles: vec![0; cores.len()],
            prev_misses: vec![0; cores.len()],
            prev_banks: llc.bank_stats().to_vec(),
            prev_global: *llc.global_stats(),
        }
    }

    fn observe<P: LlcReplacementPolicy>(&mut self, cores: &[CoreNode], llc: &SharedLlc<P>) {
        let completed = llc.global_stats().intervals_completed;
        if completed == self.intervals_seen {
            return;
        }
        // A single step can in principle complete more than one interval (demand +
        // prefetch both reach the LLC); sample the state once at the latest one.
        self.intervals_seen = completed;
        let interval = completed as f64;

        let occupancy = llc.occupancy_by_core();
        for (i, core) in cores.iter().enumerate() {
            let instructions = core.model.instructions;
            let cycles = core.model.cycle;
            let misses = llc.core_stats(i).demand_misses;
            let d_instr = instructions.saturating_sub(self.prev_instructions[i]);
            let d_cycles = cycles.saturating_sub(self.prev_cycles[i]);
            let d_misses = misses.saturating_sub(self.prev_misses[i]);
            let ipc = if d_cycles > 0 {
                d_instr as f64 / d_cycles as f64
            } else {
                0.0
            };
            let mpki = if d_instr > 0 {
                d_misses as f64 * 1000.0 / d_instr as f64
            } else {
                0.0
            };
            sim_obs::sample(
                "sim",
                "interval.core",
                CORE_SAMPLE_COLS,
                &[
                    interval,
                    i as f64,
                    cycles as f64,
                    d_instr as f64,
                    ipc,
                    mpki,
                    occupancy[i] as f64,
                ],
            );
            self.prev_instructions[i] = instructions;
            self.prev_cycles[i] = cycles;
            self.prev_misses[i] = misses;
        }

        for (b, stats) in llc.bank_stats().iter().enumerate() {
            let prev = &self.prev_banks[b];
            sim_obs::sample(
                "sim",
                "interval.bank",
                BANK_SAMPLE_COLS,
                &[
                    interval,
                    b as f64,
                    (stats.requests - prev.requests) as f64,
                    (stats.queue_cycles - prev.queue_cycles) as f64,
                    (stats.admission_stall_cycles - prev.admission_stall_cycles) as f64,
                    (stats.busy_cycles - prev.busy_cycles) as f64,
                    stats.peak_waiting as f64,
                ],
            );
            self.prev_banks[b] = *stats;
        }

        let global = *llc.global_stats();
        let prev = &self.prev_global;
        sim_obs::sample(
            "sim",
            "interval.llc",
            LLC_SAMPLE_COLS,
            &[
                interval,
                (global.total_demand_misses - prev.total_demand_misses) as f64,
                (global.mshr_stall_cycles - prev.mshr_stall_cycles) as f64,
                (global.mshr_full_events - prev.mshr_full_events) as f64,
                (global.wb_stall_cycles - prev.wb_stall_cycles) as f64,
                (global.dirty_evictions - prev.dirty_evictions) as f64,
            ],
        );
        self.prev_global = global;
    }
}

/// Resolve a demand access through the hierarchy; returns (latency, prefetch candidate).
#[allow(clippy::too_many_arguments)]
fn demand_access<P: LlcReplacementPolicy>(
    config: &SystemConfig,
    core: &mut CoreNode,
    llc: &mut SharedLlc<P>,
    dram: &mut Dram,
    core_id: usize,
    block: BlockAddr,
    pc: u64,
    is_write: bool,
    now: u64,
) -> (u64, Option<BlockAddr>) {
    let l1_latency = config.core.l1_hit_cycles;

    // L1 lookup.
    if core.l1d.access(block, is_write) == Lookup::Hit {
        return (l1_latency, None);
    }

    // L1 miss: consult the next-line prefetcher.
    let l1 = &core.l1d;
    let prefetch_candidate = core.prefetcher.on_demand_miss(block, |b| l1.probe(b));

    // L2 lookup.
    let l2_latency = core.l2.latency();
    let mut latency;
    if core.l2.access(block, false) == Lookup::Hit {
        latency = l2_latency;
    } else {
        // L2 miss: shared LLC.
        let llc_lookup = llc.access(core_id, pc, block, true, is_write, now);
        if llc_lookup.hit {
            latency = l2_latency + llc_lookup.latency;
        } else {
            // LLC miss: DRAM, tracked by an MSHR entry. With back-pressure a full
            // MSHR delays the DRAM issue itself, so the memory system sees the
            // request at the cycle it could actually be tracked; the flat seed
            // path times the DRAM access first and charges the stall afterwards.
            let (mshr_stall, dram_latency) = if config.llc.contention.mshr_backpressure {
                let stall = llc.begin_mshr(core_id, now);
                let issue = now + llc_lookup.latency + stall;
                let dram_out = dram.access(block, issue, false, core_id);
                llc.complete_mshr(issue + dram_out.latency);
                (stall, dram_out.latency)
            } else {
                let dram_out = dram.access(block, now + llc_lookup.latency, false, core_id);
                let stall = llc.reserve_mshr(core_id, now, llc_lookup.latency + dram_out.latency);
                (stall, dram_out.latency)
            };
            latency = l2_latency + llc_lookup.latency + mshr_stall + dram_latency;
            core.dram_reads += 1;

            // Fill the LLC (the policy may bypass).
            let fill = llc.fill(core_id, pc, block, false, now);
            if let Some(evicted) = fill.evicted {
                if evicted.dirty {
                    // Write-back drains in the background; costs DRAM bandwidth only.
                    dram.access(evicted.block, now, true, core_id);
                }
            }
        }
        // Fill the private L2; its dirty victim (if any) is written back below.
        if let Some(evicted) = core.l2.fill(block, false, false) {
            if evicted.dirty {
                writeback_from_l2(llc, dram, core_id, evicted.block, now);
            }
        }
    }

    // Fill the L1; handle its dirty victim.
    if let Some(evicted) = core.l1d.fill(block, is_write, false) {
        if evicted.dirty && !core.l2.writeback(evicted.block) {
            writeback_from_l2(llc, dram, core_id, evicted.block, now);
        }
    }

    // Account for the L1 miss detection itself.
    latency += l1_latency;
    (latency, prefetch_candidate)
}

/// A dirty line leaving a private L2 (or falling through it): try the LLC, then DRAM.
fn writeback_from_l2<P: LlcReplacementPolicy>(
    llc: &mut SharedLlc<P>,
    dram: &mut Dram,
    core_id: usize,
    block: BlockAddr,
    now: u64,
) {
    if !llc.writeback(core_id, block, now) {
        dram.access(block, now, true, core_id);
    }
}

/// Resolve a prefetch: bring the line into L2 and L1 without charging the core and
/// without allocating in (or updating recency of) the shared LLC.
#[allow(clippy::too_many_arguments)]
fn prefetch_access<P: LlcReplacementPolicy>(
    core: &mut CoreNode,
    llc: &mut SharedLlc<P>,
    dram: &mut Dram,
    core_id: usize,
    block: BlockAddr,
    pc: u64,
    now: u64,
) {
    if core.l1d.probe(block) {
        return;
    }
    if !core.l2.probe(block) {
        let llc_lookup = llc.access(core_id, pc, block, false, false, now);
        if !llc_lookup.hit {
            // Fetch from memory; prefetches do not allocate in the LLC.
            dram.access(block, now + llc_lookup.latency, false, core_id);
            core.dram_reads += 1;
        }
        if let Some(evicted) = core.l2.fill(block, false, true) {
            if evicted.dirty {
                writeback_from_l2(llc, dram, core_id, evicted.block, now);
            }
        }
    }
    if let Some(evicted) = core.l1d.fill(block, false, true) {
        if evicted.dirty && !core.l2.writeback(evicted.block) {
            writeback_from_l2(llc, dram, core_id, evicted.block, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::trace::{ReplayTrace, StridedTrace};

    fn strided_traces(n: usize, region: u64) -> Vec<Box<dyn TraceSource>> {
        (0..n)
            .map(|i| {
                Box::new(StridedTrace::new((i as u64) << 32, 64, region, 4)) as Box<dyn TraceSource>
            })
            .collect()
    }

    /// Regression for the re-execution livelock: a core whose (replayed) stream is
    /// entirely L1-resident with zero instruction gaps advances zero cycles per step
    /// once warmed up; after it reaches its instruction target it used to remain the
    /// scheduler's earliest core forever and starve the unfinished cores — `run` never
    /// returned. Imported trace files make such streams trivial to construct. Both
    /// engines must terminate and stay bit-identical to each other.
    #[test]
    fn finished_cache_resident_core_cannot_livelock_the_run() {
        let cfg = SystemConfig::tiny(2);
        let make_traces = || -> Vec<Box<dyn TraceSource>> {
            vec![
                // 4 gapless blocks: fully L1-resident after warmup, zero-cycle steps.
                Box::new(ReplayTrace::from_addrs(
                    "frozen",
                    &[0x1000, 0x1040, 0x1080, 0x10c0],
                    0,
                )),
                // A big sweep that misses constantly, so it finishes far later than
                // the frozen core (which pre-fix starved it forever).
                Box::new(StridedTrace::new(1 << 32, 64, 1 << 20, 2)),
            ]
        };
        let target = 30_000;
        let policy = |cfg: &SystemConfig| {
            DefaultSrripPolicy::new(cfg.llc.geometry.num_sets(), cfg.llc.geometry.ways)
        };
        let mut fast = MultiCoreSystem::new(cfg.clone(), make_traces(), policy(&cfg));
        let fast_res = fast.run(target);
        let mut reference = crate::reference::ReferenceSystem::new(
            cfg.clone(),
            make_traces(),
            Box::new(policy(&cfg)),
        );
        let ref_res = reference.run(target);
        for (a, b) in fast_res.per_core.iter().zip(&ref_res.per_core) {
            assert!(a.instructions >= target);
            assert_eq!(a.instructions, b.instructions, "core {}", a.core_id);
            assert_eq!(a.cycles, b.cycles, "core {}", a.core_id);
            assert_eq!(
                a.llc.demand_misses, b.llc.demand_misses,
                "core {}",
                a.core_id
            );
        }
    }

    #[test]
    fn single_core_small_working_set_mostly_hits() {
        let cfg = SystemConfig::tiny(1);
        // Working set of 1 KB fits easily in the 2 KB L1.
        let traces = strided_traces(1, 1024);
        let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
        let res = sys.run(50_000);
        let c = &res.per_core[0];
        assert!(c.instructions >= 50_000);
        assert!(
            c.l1d.miss_ratio() < 0.1,
            "miss ratio {}",
            c.l1d.miss_ratio()
        );
        assert!(c.ipc() > 1.0, "ipc {}", c.ipc());
    }

    #[test]
    fn streaming_core_is_memory_bound() {
        let cfg = SystemConfig::tiny(1);
        // 16 MB streaming region: misses everywhere.
        let traces = strided_traces(1, 16 * 1024 * 1024);
        let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
        let res = sys.run(50_000);
        let c = &res.per_core[0];
        assert!(c.llc.demand_misses > 0);
        assert!(c.llc_mpki() > 50.0, "llc mpki {}", c.llc_mpki());
        assert!(c.ipc() < 1.0, "ipc {}", c.ipc());
        assert!(c.dram_reads > 0);
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            let cfg = SystemConfig::tiny(2);
            let traces = strided_traces(2, 256 * 1024);
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            let r = sys.run(20_000);
            (
                r.per_core[0].cycles,
                r.per_core[1].cycles,
                r.total_llc_demand_misses(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_cores_reach_instruction_target() {
        let cfg = SystemConfig::tiny(4);
        let traces = strided_traces(4, 64 * 1024);
        let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
        let res = sys.run(10_000);
        assert_eq!(res.per_core.len(), 4);
        for c in &res.per_core {
            assert!(c.instructions >= 10_000);
            assert!(c.cycles > 0);
        }
        assert!(res.final_cycle >= res.per_core.iter().map(|c| c.cycles).max().unwrap());
    }

    #[test]
    fn shared_cache_contention_hurts_a_cache_fitting_app() {
        // An app whose working set fits the LLC alone loses hits when co-run with a
        // streaming app: the fundamental effect the paper studies.
        let victim_region = 48 * 1024; // fits the 64 KB tiny LLC
        let alone = {
            let cfg = SystemConfig::tiny(1);
            let traces: Vec<Box<dyn TraceSource>> =
                vec![Box::new(StridedTrace::new(0, 64, victim_region, 4))];
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            sys.run(40_000).per_core[0].llc_mpki()
        };
        let shared = {
            let cfg = SystemConfig::tiny(2);
            let traces: Vec<Box<dyn TraceSource>> = vec![
                Box::new(StridedTrace::new(0, 64, victim_region, 4)),
                Box::new(StridedTrace::new(1 << 32, 64, 8 * 1024 * 1024, 4)),
            ];
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            sys.run(40_000).per_core[0].llc_mpki()
        };
        assert!(
            shared > alone,
            "sharing should increase the victim's LLC MPKI (alone={alone}, shared={shared})"
        );
    }

    #[test]
    fn contended_banks_produce_deterministic_results_and_bank_stats() {
        let run = || {
            let mut cfg = SystemConfig::tiny(4);
            cfg.llc.contention = crate::config::BankContentionConfig::contended(2, 4);
            cfg.dram.contention = crate::config::BankContentionConfig::contended(2, 4);
            let traces = strided_traces(4, 4 * 1024 * 1024);
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            let r = sys.run(20_000);
            (
                r.per_core.iter().map(|c| c.cycles).collect::<Vec<_>>(),
                r.llc_banks.clone(),
                r.llc_global,
                *sys.dram().bank_stats().first().unwrap(),
            )
        };
        let (cycles_a, banks_a, global_a, dram_a) = run();
        let (cycles_b, banks_b, global_b, dram_b) = run();
        assert_eq!(cycles_a, cycles_b);
        assert_eq!(banks_a, banks_b);
        assert_eq!(global_a, global_b);
        assert_eq!(dram_a, dram_b);
        // The streaming workload actually exercised the banks.
        assert!(banks_a.iter().any(|b| b.requests > 0));
        let total: u64 = banks_a.iter().map(|b| b.busy_cycles).sum();
        assert!(total > 0);
    }

    #[test]
    fn mshr_backpressure_accounts_stalls_and_stays_consistent_with_flat() {
        // With a single MSHR entry shared by two streaming cores both issue orders
        // saturate the MSHR; back-pressure shifts *when* DRAM sees each request (so
        // row-buffer outcomes may differ slightly) but the overall timing must agree
        // to first order with the charge-after-the-fact flat accounting.
        let run = |backpressure: bool| {
            let mut cfg = SystemConfig::tiny(2);
            cfg.llc.mshr_entries = 1;
            cfg.llc.contention.mshr_backpressure = backpressure;
            let traces = strided_traces(2, 16 * 1024 * 1024);
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            let r = sys.run(20_000);
            (
                r.per_core.iter().map(|c| c.cycles).max().unwrap(),
                r.llc_global.mshr_stall_cycles,
            )
        };
        let (flat_cycles, flat_stall) = run(false);
        let (bp_cycles, bp_stall) = run(true);
        assert!(bp_stall > 0 && flat_stall > 0, "MSHRs must saturate");
        let ratio = bp_cycles as f64 / flat_cycles as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "back-pressure timing diverged from flat accounting (flat {flat_cycles}, bp {bp_cycles})"
        );
        // Determinism of the back-pressure path.
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn writes_eventually_reach_dram_as_writebacks() {
        let cfg = SystemConfig::tiny(1);
        let addrs: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
        let mut accesses = Vec::new();
        for a in &addrs {
            accesses.push(crate::trace::MemAccess {
                addr: *a,
                pc: 0x10,
                is_write: true,
                non_mem_instrs: 2,
            });
        }
        let traces: Vec<Box<dyn TraceSource>> =
            vec![Box::new(ReplayTrace::new("writes", accesses))];
        let mut sys = MultiCoreSystem::new(
            cfg.clone(),
            traces,
            Box::new(DefaultSrripPolicy::new(
                cfg.llc.geometry.num_sets(),
                cfg.llc.geometry.ways,
            )),
        );
        let res = sys.run(30_000);
        assert!(res.dram.writes > 0, "dirty evictions must reach memory");
    }

    /// The observability hard requirement: running with `sim-obs` recording enabled
    /// must produce bit-identical results to running with it disabled, while actually
    /// emitting per-interval samples. (Other tests in this binary may record events
    /// concurrently while recording is on; assertions on the drained events are
    /// therefore presence checks, not exact counts.)
    #[test]
    fn interval_sampling_emits_rows_without_perturbing_results() {
        let run = || {
            let cfg = SystemConfig::tiny(2);
            let traces = strided_traces(2, 4 * 1024 * 1024);
            let mut sys = MultiCoreSystem::with_default_policy(cfg, traces);
            sys.run(20_000)
        };
        let baseline = run();
        sim_obs::reset();
        sim_obs::enable();
        let observed = run();
        sim_obs::disable();
        let drained = sim_obs::drain();
        for (a, b) in baseline.per_core.iter().zip(&observed.per_core) {
            assert_eq!(a.cycles, b.cycles, "core {}", a.core_id);
            assert_eq!(a.instructions, b.instructions, "core {}", a.core_id);
            assert_eq!(
                a.llc.demand_misses, b.llc.demand_misses,
                "core {}",
                a.core_id
            );
        }
        assert_eq!(baseline.llc_global, observed.llc_global);
        assert_eq!(baseline.llc_banks, observed.llc_banks);
        assert_eq!(baseline.final_cycle, observed.final_cycle);
        assert!(
            baseline.llc_global.intervals_completed > 0,
            "workload must complete intervals for the sampler to fire"
        );
        for series in ["interval.core", "interval.bank", "interval.llc"] {
            let rows = drained
                .threads
                .iter()
                .flat_map(|t| &t.events)
                .filter(|e| e.kind == sim_obs::EventKind::Sample && e.name == series)
                .count();
            assert!(rows > 0, "expected {series} sample rows");
        }
    }

    #[test]
    #[should_panic(expected = "one trace source per core")]
    fn trace_count_mismatch_panics() {
        let cfg = SystemConfig::tiny(2);
        let traces = strided_traces(1, 1024);
        let _ = MultiCoreSystem::with_default_policy(cfg, traces);
    }
}
