//! Address manipulation helpers.
//!
//! All caches in the simulated hierarchy use 64-byte lines (paper Table 3). Addresses are
//! byte addresses (`u64`); a *block address* is the byte address shifted right by
//! [`BLOCK_SHIFT`]. Set-index and tag extraction are parameterized by the cache geometry.

/// log2 of the cache line size in bytes.
pub const BLOCK_SHIFT: u32 = 6;
/// Cache line size in bytes (64 B, paper Table 3).
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;

/// A cache-line-granular address (byte address >> [`BLOCK_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Construct from a byte address.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> Self {
        BlockAddr(addr >> BLOCK_SHIFT)
    }

    /// The first byte address covered by this block.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 << BLOCK_SHIFT
    }

    /// Set index within a cache of `num_sets` sets (power of two).
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        debug_assert!(num_sets.is_power_of_two());
        (self.0 as usize) & (num_sets - 1)
    }

    /// Tag, i.e. the block address bits above the set index.
    #[inline]
    pub fn tag(self, num_sets: usize) -> u64 {
        debug_assert!(num_sets.is_power_of_two());
        self.0 >> num_sets.trailing_zeros()
    }

    /// The block immediately following this one (used by the next-line prefetcher).
    #[inline]
    pub fn next(self) -> Self {
        BlockAddr(self.0.wrapping_add(1))
    }

    /// Keep only the lowest `bits` bits of the block address (partial tag storage, as used
    /// by ADAPT's sampler arrays which store only 10 tag bits).
    #[inline]
    pub fn partial(self, bits: u32) -> u64 {
        if bits >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

/// Convenience: block address of a byte address.
#[inline]
pub fn block_of(addr: u64) -> BlockAddr {
    BlockAddr::from_byte_addr(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_round_trips_through_byte_addr() {
        let b = BlockAddr::from_byte_addr(0xdead_beef);
        assert_eq!(b.byte_addr() >> BLOCK_SHIFT, b.0);
        assert_eq!(BlockAddr::from_byte_addr(b.byte_addr()), b);
    }

    #[test]
    fn addresses_in_same_line_share_block() {
        let a = BlockAddr::from_byte_addr(0x1000);
        let b = BlockAddr::from_byte_addr(0x103f);
        let c = BlockAddr::from_byte_addr(0x1040);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(c, a.next());
    }

    #[test]
    fn set_index_and_tag_partition_the_block_address() {
        let num_sets = 1024;
        let b = BlockAddr(0xabcdef);
        let idx = b.set_index(num_sets);
        let tag = b.tag(num_sets);
        assert_eq!((tag << 10) | idx as u64, b.0);
        assert!(idx < num_sets);
    }

    #[test]
    fn partial_tag_masks_high_bits() {
        let b = BlockAddr(0x3ff_ffff);
        assert_eq!(b.partial(10), 0x3ff);
        assert_eq!(b.partial(64), b.0);
        assert_eq!(BlockAddr(0).partial(10), 0);
    }

    #[test]
    fn next_wraps_without_panicking() {
        let b = BlockAddr(u64::MAX);
        assert_eq!(b.next(), BlockAddr(0));
    }
}
