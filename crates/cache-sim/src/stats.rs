//! Simulation statistics.
//!
//! Per-core statistics are snapshotted at the instant the core retires its instruction
//! target (the paper simulates a fixed 300M-instruction slice per application and keeps
//! finished applications running to preserve contention; we do the same). Derived metrics
//! follow the paper's definitions: `L2-MPKI` is the number of misses leaving the private L2
//! (i.e. demand accesses arriving at the LLC) per kilo-instruction, and `LLC-MPKI` is the
//! number of demand misses at the shared LLC per kilo-instruction.

use serde::{Deserialize, Serialize};

use crate::bank::BankStats;
use crate::dram::DramStats;
use crate::llc::{LlcCoreStats, LlcGlobalStats};
use crate::prefetch::PrefetchStats;
use crate::private_cache::PrivateCacheStats;

/// Statistics for one core/application, snapshotted at its instruction target.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    pub core_id: usize,
    /// Label of the trace source driving this core (benchmark name).
    pub label: String,
    pub instructions: u64,
    pub cycles: u64,
    pub compute_cycles: u64,
    pub mem_stall_cycles: u64,
    pub l1d: PrivateCacheStats,
    pub l2: PrivateCacheStats,
    pub llc: LlcCoreStats,
    pub prefetch: PrefetchStats,
    pub dram_reads: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Misses leaving the private L2 per kilo-instruction (the paper's "L2-MPKI").
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.demand_accesses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Demand misses at the shared LLC per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.demand_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// LLC demand hit ratio.
    pub fn llc_hit_ratio(&self) -> f64 {
        if self.llc.demand_accesses == 0 {
            0.0
        } else {
            self.llc.demand_hits as f64 / self.llc.demand_accesses as f64
        }
    }
}

/// Stall cycles attributed to one requesting core across the whole memory system.
///
/// Each field mirrors, delta for delta, an increment made to the corresponding global
/// accounting ([`LlcGlobalStats`], [`crate::bank::BankStats`], [`DramStats`]), so the
/// per-core vectors sum exactly to the global totals — the conservation law enforced
/// by `tests/scaling_study.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStallAttribution {
    pub core_id: usize,
    /// Cycles this core's LLC requests waited for a bank port
    /// (sums to [`LlcGlobalStats::bank_queue_cycles`]).
    pub llc_queue_cycles: u64,
    /// Cycles this core's LLC requests were refused admission by a full bank queue
    /// (sums to [`LlcGlobalStats::bank_admission_stall_cycles`]).
    pub llc_admission_cycles: u64,
    /// Cycles this core's DRAM requests waited for a bank port.
    pub dram_queue_cycles: u64,
    /// Cycles this core's DRAM requests were refused admission. Together with
    /// `dram_queue_cycles` this sums to [`DramStats::queue_cycles`].
    pub dram_admission_cycles: u64,
    /// Cycles this core stalled on full LLC MSHRs
    /// (sums to [`LlcGlobalStats::mshr_stall_cycles`]).
    pub mshr_stall_cycles: u64,
}

impl CoreStallAttribution {
    /// Total memory-system stall cycles attributed to this core.
    pub fn total(&self) -> u64 {
        self.llc_queue_cycles
            + self.llc_admission_cycles
            + self.dram_queue_cycles
            + self.dram_admission_cycles
            + self.mshr_stall_cycles
    }
}

/// Assemble per-core stall attribution from the component-level vectors. The inputs
/// may be shorter than `num_cores` (attribution vectors grow on demand); missing
/// entries are zero.
pub fn assemble_core_stalls(
    num_cores: usize,
    llc_banks: &[crate::bank::CoreBankStalls],
    mshr: &[u64],
    dram_banks: &[crate::bank::CoreBankStalls],
) -> Vec<CoreStallAttribution> {
    (0..num_cores)
        .map(|core_id| {
            let llc = llc_banks.get(core_id).copied().unwrap_or_default();
            let dram = dram_banks.get(core_id).copied().unwrap_or_default();
            CoreStallAttribution {
                core_id,
                llc_queue_cycles: llc.queue_cycles,
                llc_admission_cycles: llc.admission_stall_cycles,
                dram_queue_cycles: dram.queue_cycles,
                dram_admission_cycles: dram.admission_stall_cycles,
                mshr_stall_cycles: mshr.get(core_id).copied().unwrap_or(0),
            }
        })
        .collect()
}

/// Results of a complete multi-core simulation.
#[derive(Debug, Clone, Default)]
pub struct SystemResults {
    /// Name of the LLC replacement policy used.
    pub policy: String,
    pub per_core: Vec<CoreStats>,
    pub llc_global: LlcGlobalStats,
    /// Per-bank LLC occupancy/stall statistics, indexed by bank.
    pub llc_banks: Vec<BankStats>,
    pub dram: DramStats,
    /// Memory-system stall cycles attributed per requesting core (see
    /// [`CoreStallAttribution`]), indexed by core.
    pub core_stalls: Vec<CoreStallAttribution>,
    /// Cycle at which the last core reached its instruction target.
    pub final_cycle: u64,
}

impl SystemResults {
    /// Vector of per-core IPCs in core order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.per_core.iter().map(|c| c.ipc()).collect()
    }

    /// Vector of per-core LLC MPKIs in core order.
    pub fn llc_mpkis(&self) -> Vec<f64> {
        self.per_core.iter().map(|c| c.llc_mpki()).collect()
    }

    /// Total demand misses observed at the LLC across all cores (at snapshot time).
    pub fn total_llc_demand_misses(&self) -> u64 {
        self.per_core.iter().map(|c| c.llc.demand_misses).sum()
    }

    /// Share of total LLC bank time spent stalled rather than in service:
    /// `stall / (stall + busy)` over all banks. Zero when the LLC saw no traffic.
    pub fn bank_stall_share(&self) -> f64 {
        crate::bank::aggregate_stall_share(&self.llc_banks)
    }
}

/// Convenience alias re-exported at the crate root.
pub type LlcStats = LlcGlobalStats;

/// Summary statistics helper (mean over a slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean over a slice of positive values (0 if empty).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Serializable summary row used by experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreSummaryRow {
    pub core_id: usize,
    pub label: String,
    pub ipc: f64,
    pub l2_mpki: f64,
    pub llc_mpki: f64,
}

impl From<&CoreStats> for CoreSummaryRow {
    fn from(c: &CoreStats) -> Self {
        CoreSummaryRow {
            core_id: c.core_id,
            label: c.label.clone(),
            ipc: c.ipc(),
            l2_mpki: c.l2_mpki(),
            llc_mpki: c.llc_mpki(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(instr: u64, cycles: u64, llc_acc: u64, llc_miss: u64) -> CoreStats {
        let mut s = CoreStats {
            instructions: instr,
            cycles,
            ..Default::default()
        };
        s.llc.demand_accesses = llc_acc;
        s.llc.demand_hits = llc_acc - llc_miss;
        s.llc.demand_misses = llc_miss;
        s
    }

    #[test]
    fn ipc_and_mpki_are_computed_per_kiloinstruction() {
        let s = stats_with(1_000_000, 500_000, 20_000, 5_000);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.l2_mpki() - 20.0).abs() < 1e-12);
        assert!((s.llc_mpki() - 5.0).abs() < 1e-12);
        assert!((s.llc_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_stats_do_not_divide_by_zero() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l2_mpki(), 0.0);
        assert_eq!(s.llc_mpki(), 0.0);
        assert_eq!(s.llc_hit_ratio(), 0.0);
    }

    #[test]
    fn system_results_aggregate_per_core_values() {
        let r = SystemResults {
            policy: "p".into(),
            per_core: vec![stats_with(1000, 500, 10, 4), stats_with(1000, 1000, 20, 6)],
            ..Default::default()
        };
        assert_eq!(r.ipcs(), vec![2.0, 1.0]);
        assert_eq!(r.total_llc_demand_misses(), 10);
        assert_eq!(r.llc_mpkis().len(), 2);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn assemble_core_stalls_pads_short_vectors_and_totals() {
        use crate::bank::CoreBankStalls;
        let llc = [CoreBankStalls {
            queue_cycles: 10,
            admission_stall_cycles: 2,
        }];
        let dram = [
            CoreBankStalls::default(),
            CoreBankStalls {
                queue_cycles: 7,
                admission_stall_cycles: 0,
            },
        ];
        let out = assemble_core_stalls(3, &llc, &[0, 5], &dram);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].total(), 12);
        assert_eq!(out[1].total(), 12);
        assert_eq!(out[1].dram_queue_cycles, 7);
        assert_eq!(out[1].mshr_stall_cycles, 5);
        assert_eq!(
            out[2],
            CoreStallAttribution {
                core_id: 2,
                ..Default::default()
            }
        );
    }

    #[test]
    fn summary_row_mirrors_core_stats() {
        let mut c = stats_with(2000, 1000, 40, 10);
        c.label = "mcf".into();
        c.core_id = 3;
        let row = CoreSummaryRow::from(&c);
        assert_eq!(row.core_id, 3);
        assert_eq!(row.label, "mcf");
        assert!((row.ipc - 2.0).abs() < 1e-12);
    }
}
