//! Single-application ("alone") runs.
//!
//! The paper's headline metric, weighted speedup, normalizes each application's IPC in the
//! shared configuration by the IPC it achieves when it runs *alone* on the same hierarchy
//! (with the whole LLC to itself). This module provides that helper plus a convenience for
//! measuring a benchmark's standalone profile (IPC, L2-MPKI, LLC footprint inputs) used to
//! regenerate the paper's Table 4.

use crate::config::SystemConfig;
use crate::replacement::LlcReplacementPolicy;
use crate::stats::CoreStats;
use crate::system::MultiCoreSystem;
use crate::trace::TraceSource;

/// Run one application alone on a single-core version of `config` with the given policy.
///
/// The configuration's LLC, L2 and DRAM parameters are preserved; only the core count is
/// forced to one. The policy may be any [`LlcReplacementPolicy`] value — concrete, enum
/// dispatched, or boxed (the historical `Box<dyn ...>` signature still works).
pub fn run_alone<P: LlcReplacementPolicy>(
    config: &SystemConfig,
    trace: Box<dyn TraceSource>,
    policy: P,
    instructions: u64,
) -> CoreStats {
    let mut cfg = config.clone();
    cfg.num_cores = 1;
    let mut system = MultiCoreSystem::new(cfg, vec![trace], policy);
    let mut results = system.run(instructions);
    results.per_core.remove(0)
}

/// Standalone profile of a benchmark: the quantities the paper's Table 4 reports.
#[derive(Debug, Clone)]
pub struct AloneProfile {
    pub label: String,
    pub ipc: f64,
    pub l2_mpki: f64,
    pub llc_mpki: f64,
    pub stats: CoreStats,
}

/// Run alone with the default SRRIP policy and summarize.
pub fn profile_alone(
    config: &SystemConfig,
    trace: Box<dyn TraceSource>,
    instructions: u64,
) -> AloneProfile {
    let mut cfg = config.clone();
    cfg.num_cores = 1;
    let policy =
        crate::system::DefaultSrripPolicy::new(cfg.llc.geometry.num_sets(), cfg.llc.geometry.ways);
    let stats = run_alone(&cfg, trace, policy, instructions);
    AloneProfile {
        label: stats.label.clone(),
        ipc: stats.ipc(),
        l2_mpki: stats.l2_mpki(),
        llc_mpki: stats.llc_mpki(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StridedTrace;

    #[test]
    fn alone_run_returns_single_core_stats() {
        let cfg = SystemConfig::tiny(8); // core count is overridden to 1
        let trace = Box::new(StridedTrace::new(0, 64, 4096, 3));
        let profile = profile_alone(&cfg, trace, 20_000);
        assert!(profile.ipc > 0.0);
        assert!(profile.stats.instructions >= 20_000);
    }

    #[test]
    fn streaming_profile_has_higher_mpki_than_resident_profile() {
        let cfg = SystemConfig::tiny(1);
        let resident = profile_alone(&cfg, Box::new(StridedTrace::new(0, 64, 2048, 3)), 20_000);
        let streaming = profile_alone(
            &cfg,
            Box::new(StridedTrace::new(0, 64, 8 * 1024 * 1024, 3)),
            20_000,
        );
        assert!(streaming.l2_mpki > resident.l2_mpki);
        assert!(streaming.ipc < resident.ipc);
    }
}
