//! Frozen reference implementations of the simulator hot path.
//!
//! The production [`crate::llc::SharedLlc`] and [`crate::private_cache::PrivateCache`]
//! use a data-oriented structure-of-arrays line layout (contiguous per-set tag arrays,
//! packed valid/dirty bitmasks), precomputed set/tag shifts, lazily-built
//! [`AccessContext`]s and (through [`crate::replacement::LlcReplacementPolicy`] generics)
//! monomorphized policy dispatch. This module retains the pre-refactor array-of-structs
//! implementations **unchanged in behaviour** so that
//!
//! 1. the property tests and end-to-end tests can assert the fast path is bit-identical
//!    to the original simulator (same hits, latencies, evictions, per-core and per-bank
//!    statistics, interval counts), and
//! 2. the `sim_perf` benchmark can measure the hot-path rewrite's speedup against an
//!    honest "before" baseline (recorded in `BENCH_sim.json`).
//!
//! Do not optimize this module: it is the oracle the optimized path is measured against.
//! The only intentional deviation from the seed code is `ReferenceLlc::bank_of`, which
//! uses a modulo instead of the seed's `set & (banks - 1)` mask so that non-power-of-two
//! bank counts map sets uniformly (the two are identical for the power-of-two bank
//! counts every shipped configuration uses; the mask was a latent bug for anything else).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addr::BlockAddr;
use crate::bank::{BankModel, BankStats};
use crate::config::{LlcConfig, PrivateCacheConfig, PrivatePolicyKind, SystemConfig};
use crate::core_model::CoreModel;
use crate::dram::Dram;
use crate::llc::{LlcCoreStats, LlcEvicted, LlcFill, LlcGlobalStats, LlcLookup, LlcModel};
use crate::mshr::OccupancyWindow;
use crate::prefetch::NextLinePrefetcher;
use crate::private_cache::{EvictedLine, Lookup, PrivateCacheModel, PrivateCacheStats};
use crate::replacement::{AccessContext, LineView, LlcReplacementPolicy, RrpvArray, RRPV_MAX};
use crate::stats::{CoreStats, SystemResults};
use crate::trace::TraceSource;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    owner: usize,
}

/// The pre-refactor array-of-structs shared LLC (dynamic policy dispatch, eager
/// [`AccessContext`] construction, per-way struct scan in `find_way`).
pub struct ReferenceLlc {
    config: LlcConfig,
    num_sets: usize,
    ways: usize,
    lines: Vec<Line>,
    policy: Box<dyn LlcReplacementPolicy>,
    banks: BankModel,
    mshr: OccupancyWindow,
    wb_buffer: OccupancyWindow,
    per_core: Vec<LlcCoreStats>,
    global: LlcGlobalStats,
    /// NUCA wire delay per `(core, bank)`; empty when the mesh model is disabled.
    nuca: Vec<u64>,
    /// MSHR stall cycles attributed per requesting core.
    mshr_core_stalls: Vec<u64>,
    interval_misses: u64,
    misses_in_interval: u64,
}

impl ReferenceLlc {
    /// Build the reference LLC exactly like the seed `SharedLlc::new` did.
    pub fn new(
        config: LlcConfig,
        num_cores: usize,
        interval_misses: u64,
        policy: Box<dyn LlcReplacementPolicy>,
    ) -> Self {
        let num_sets = config.geometry.num_sets();
        let ways = config.geometry.ways;
        let nuca = if config.nuca.is_disabled() {
            Vec::new()
        } else {
            let mut table = Vec::with_capacity(num_cores * config.banks);
            for core in 0..num_cores {
                for bank in 0..config.banks {
                    table.push(
                        config.nuca.hop_cycles
                            * crate::config::mesh_hops(core, num_cores, bank, config.banks),
                    );
                }
            }
            table
        };
        ReferenceLlc {
            num_sets,
            ways,
            lines: vec![Line::default(); num_sets * ways],
            policy,
            banks: BankModel::new(config.banks, config.contention),
            mshr: OccupancyWindow::new(config.mshr_entries),
            wb_buffer: OccupancyWindow::new(config.wb_entries),
            per_core: vec![LlcCoreStats::default(); num_cores],
            global: LlcGlobalStats::default(),
            nuca,
            mshr_core_stalls: vec![0; num_cores],
            interval_misses,
            misses_in_interval: 0,
            config,
        }
    }

    fn ctx(
        &self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
    ) -> AccessContext {
        AccessContext {
            core_id,
            pc,
            block_addr: block.0,
            set_index: block.set_index(self.num_sets),
            is_demand,
            is_write,
        }
    }

    fn bank_of(&self, set: usize) -> usize {
        set % self.config.banks
    }

    fn bank_delay(&mut self, core_id: usize, set: usize, now: u64) -> u64 {
        let bank = self.bank_of(set);
        let before = self.banks.stats()[bank].admission_stall_cycles;
        let req = self
            .banks
            .request_from(bank, now, self.config.bank_busy_cycles, core_id);
        let admission = self.banks.stats()[bank].admission_stall_cycles - before;
        self.global.bank_queue_cycles += req.delay - admission;
        self.global.bank_admission_stall_cycles += admission;
        let nuca = if self.nuca.is_empty() {
            0
        } else {
            self.nuca[core_id * self.config.banks + bank]
        };
        self.global.nuca_cycles += nuca;
        req.delay + nuca
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    fn access_impl(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        let ctx = self.ctx(core_id, pc, block, is_demand, is_write);
        let stats = &mut self.per_core[core_id];
        if is_demand {
            stats.demand_accesses += 1;
        } else {
            stats.prefetch_accesses += 1;
        }

        if is_demand {
            self.policy.on_access(&ctx);
        }

        let delay = self.bank_delay(core_id, set, now);
        let latency = self.config.latency + delay;

        match self.find_way(set, tag) {
            Some(way) => {
                let stats = &mut self.per_core[core_id];
                if is_demand {
                    stats.demand_hits += 1;
                    self.policy.on_hit(&ctx, way);
                } else {
                    stats.prefetch_hits += 1;
                }
                if is_write {
                    self.lines[set * self.ways + way].dirty = true;
                }
                LlcLookup { hit: true, latency }
            }
            None => {
                if is_demand {
                    let stats = &mut self.per_core[core_id];
                    stats.demand_misses += 1;
                    self.global.total_demand_misses += 1;
                    self.misses_in_interval += 1;
                    let threshold = if self.global.intervals_completed == 0 {
                        (self.interval_misses / 4).max(1)
                    } else {
                        self.interval_misses
                    };
                    if self.misses_in_interval >= threshold {
                        self.misses_in_interval = 0;
                        self.global.intervals_completed += 1;
                        self.policy.on_interval();
                    }
                }
                LlcLookup {
                    hit: false,
                    latency,
                }
            }
        }
    }

    fn fill_impl(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        let ctx = self.ctx(core_id, pc, block, true, is_write);

        if self.find_way(set, tag).is_some() {
            return LlcFill {
                bypassed: false,
                evicted: None,
            };
        }

        let decision = self.policy.insertion_decision(&ctx);
        if decision.is_bypass() {
            self.per_core[core_id].bypassed_fills += 1;
            self.policy.on_fill(&ctx, usize::MAX, &decision);
            return LlcFill {
                bypassed: true,
                evicted: None,
            };
        }

        let base = set * self.ways;
        let invalid_way = (0..self.ways).find(|&w| !self.lines[base + w].valid);
        let (way, evicted) = match invalid_way {
            Some(w) => (w, None),
            None => {
                let views: Vec<LineView> = (0..self.ways)
                    .map(|w| {
                        let l = &self.lines[base + w];
                        LineView {
                            valid: l.valid,
                            owner: l.owner,
                            block_addr: (l.tag << self.num_sets.trailing_zeros()) | set as u64,
                            dirty: l.dirty,
                        }
                    })
                    .collect();
                let w = self.policy.choose_victim(&ctx, &views);
                assert!(w < self.ways, "policy returned out-of-range victim way {w}");
                let victim = self.lines[base + w];
                let victim_block =
                    BlockAddr((victim.tag << self.num_sets.trailing_zeros()) | set as u64);
                self.policy.on_evict(&ctx, victim_block.0, victim.owner);
                self.per_core[victim.owner].lines_evicted += 1;
                if victim.dirty {
                    self.global.dirty_evictions += 1;
                    let (stall, _) = self.wb_buffer.reserve(now, self.config.latency);
                    self.global.wb_stall_cycles += stall;
                }
                (
                    w,
                    Some(LlcEvicted {
                        block: victim_block,
                        dirty: victim.dirty,
                        owner: victim.owner,
                    }),
                )
            }
        };

        self.lines[base + way] = Line {
            valid: true,
            tag,
            dirty: is_write,
            owner: core_id,
        };
        self.policy.on_fill(&ctx, way, &decision);
        LlcFill {
            bypassed: false,
            evicted,
        }
    }

    /// Occupancy (valid lines) per core.
    pub fn occupancy_by_core(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.per_core.len()];
        for l in &self.lines {
            if l.valid {
                occ[l.owner] += 1;
            }
        }
        occ
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl LlcModel for ReferenceLlc {
    fn access(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup {
        self.access_impl(core_id, pc, block, is_demand, is_write, now)
    }

    fn fill(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill {
        self.fill_impl(core_id, pc, block, is_write, now)
    }

    fn writeback(&mut self, core_id: usize, block: BlockAddr, now: u64) -> bool {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        self.per_core[core_id].writebacks_in += 1;
        let _ = self.bank_delay(core_id, set, now);
        if let Some(way) = self.find_way(set, tag) {
            self.lines[set * self.ways + way].dirty = true;
            true
        } else {
            false
        }
    }

    fn reserve_mshr(&mut self, core_id: usize, now: u64, fill_latency: u64) -> u64 {
        let (extra, _) = self.mshr.reserve(now, fill_latency);
        self.global.mshr_stall_cycles += extra;
        self.mshr_core_stalls[core_id] += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    fn begin_mshr(&mut self, core_id: usize, now: u64) -> u64 {
        let extra = self.mshr.acquire(now);
        self.global.mshr_stall_cycles += extra;
        self.mshr_core_stalls[core_id] += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    fn complete_mshr(&mut self, completion: u64) {
        self.mshr.insert(completion);
    }

    fn core_stats(&self, core_id: usize) -> &LlcCoreStats {
        &self.per_core[core_id]
    }

    fn global_stats(&self) -> &LlcGlobalStats {
        &self.global
    }

    fn bank_stats(&self) -> &[BankStats] {
        self.banks.stats()
    }

    fn policy_name(&self) -> String {
        self.policy.name()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PrivLine {
    valid: bool,
    tag: u64,
    dirty: bool,
}

#[derive(Debug, Clone)]
struct DuelState {
    psel: u16,
    brip_ctr: u32,
    num_sets: usize,
}

impl DuelState {
    const PSEL_MAX: u16 = 1023;
    const PSEL_THRESHOLD: u16 = 512;
    const LEADER_PERIOD: usize = 32;

    fn new(num_sets: usize) -> Self {
        DuelState {
            psel: Self::PSEL_THRESHOLD,
            brip_ctr: 0,
            num_sets,
        }
    }

    fn leader(&self, set: usize) -> Option<bool> {
        let period = (self.num_sets / Self::LEADER_PERIOD).max(2);
        match set % period {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    fn on_miss(&mut self, set: usize) {
        match self.leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(Self::PSEL_MAX),
            Some(false) => self.psel = self.psel.saturating_sub(1),
            None => {}
        }
    }

    fn insertion_rrpv(&mut self, set: usize) -> u8 {
        let use_srrip = match self.leader(set) {
            Some(true) => true,
            Some(false) => false,
            None => self.psel < Self::PSEL_THRESHOLD,
        };
        if use_srrip {
            RRPV_MAX - 1
        } else {
            self.brip_ctr = self.brip_ctr.wrapping_add(1);
            if self.brip_ctr.is_multiple_of(32) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        }
    }
}

/// The pre-refactor array-of-structs private cache level.
#[derive(Debug, Clone)]
pub struct ReferencePrivateCache {
    config: PrivateCacheConfig,
    num_sets: usize,
    ways: usize,
    lines: Vec<PrivLine>,
    stamps: Vec<u64>,
    stamp_clock: u64,
    rrpv: RrpvArray,
    duel: Option<DuelState>,
    stats: PrivateCacheStats,
}

impl ReferencePrivateCache {
    /// Build an empty cache exactly like the seed `PrivateCache::new` did.
    pub fn new(config: PrivateCacheConfig) -> Self {
        let num_sets = config.geometry.num_sets();
        let ways = config.geometry.ways;
        let duel = match config.policy {
            PrivatePolicyKind::Drrip => Some(DuelState::new(num_sets)),
            _ => None,
        };
        ReferencePrivateCache {
            config,
            num_sets,
            ways,
            lines: vec![PrivLine::default(); num_sets * ways],
            stamps: vec![0; num_sets * ways],
            stamp_clock: 0,
            rrpv: RrpvArray::new(num_sets, ways),
            duel,
            stats: PrivateCacheStats::default(),
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        block.set_index(self.num_sets)
    }
}

impl PrivateCacheModel for ReferencePrivateCache {
    fn latency(&self) -> u64 {
        self.config.latency
    }

    fn stats(&self) -> &PrivateCacheStats {
        &self.stats
    }

    fn access(&mut self, block: BlockAddr, is_write: bool) -> Lookup {
        self.stats.accesses += 1;
        let set = self.set_of(block);
        let tag = block.tag(self.num_sets);
        let base = set * self.ways;
        for way in 0..self.ways {
            let idx = base + way;
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.stats.hits += 1;
                self.stamp_clock += 1;
                self.stamps[idx] = self.stamp_clock;
                self.rrpv.promote(set, way);
                if is_write {
                    self.lines[idx].dirty = true;
                }
                return Lookup::Hit;
            }
        }
        self.stats.misses += 1;
        if let Some(duel) = &mut self.duel {
            duel.on_miss(set);
        }
        Lookup::Miss
    }

    fn probe(&self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        let tag = block.tag(self.num_sets);
        let base = set * self.ways;
        (base..base + self.ways).any(|idx| self.lines[idx].valid && self.lines[idx].tag == tag)
    }

    fn fill(&mut self, block: BlockAddr, dirty: bool, prefetch: bool) -> Option<EvictedLine> {
        let set = self.set_of(block);
        let tag = block.tag(self.num_sets);
        let base = set * self.ways;

        for way in 0..self.ways {
            let idx = base + way;
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                if dirty {
                    self.lines[idx].dirty = true;
                }
                return None;
            }
        }

        if prefetch {
            self.stats.prefetch_fills += 1;
        }

        let mut target_way = None;
        for way in 0..self.ways {
            if !self.lines[base + way].valid {
                target_way = Some(way);
                break;
            }
        }
        let (way, evicted) = match target_way {
            Some(way) => (way, None),
            None => {
                let way = match self.config.policy {
                    PrivatePolicyKind::Lru => {
                        let mut victim = 0;
                        let mut oldest = u64::MAX;
                        for w in 0..self.ways {
                            if self.stamps[base + w] < oldest {
                                oldest = self.stamps[base + w];
                                victim = w;
                            }
                        }
                        victim
                    }
                    PrivatePolicyKind::Srrip | PrivatePolicyKind::Drrip => {
                        self.rrpv.find_victim(set)
                    }
                };
                let line = self.lines[base + way];
                self.stats.evictions += 1;
                if line.dirty {
                    self.stats.writebacks += 1;
                }
                let evicted_block =
                    BlockAddr((line.tag << self.num_sets.trailing_zeros()) | set as u64);
                (
                    way,
                    Some(EvictedLine {
                        block: evicted_block,
                        dirty: line.dirty,
                    }),
                )
            }
        };

        let idx = base + way;
        self.lines[idx] = PrivLine {
            valid: true,
            tag,
            dirty,
        };
        self.stamp_clock += 1;
        self.stamps[idx] = self.stamp_clock;
        let insert_rrpv = match self.config.policy {
            PrivatePolicyKind::Lru => 0,
            PrivatePolicyKind::Srrip => {
                if prefetch {
                    RRPV_MAX
                } else {
                    RRPV_MAX - 1
                }
            }
            PrivatePolicyKind::Drrip => {
                if prefetch {
                    RRPV_MAX
                } else {
                    self.duel.as_mut().expect("drrip state").insertion_rrpv(set)
                }
            }
        };
        self.rrpv.set(set, way, insert_rrpv);
        evicted
    }

    fn writeback(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        let tag = block.tag(self.num_sets);
        let base = set * self.ways;
        for way in 0..self.ways {
            let idx = base + way;
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.lines[idx].dirty = true;
                return true;
            }
        }
        false
    }
}

/// Frozen copy of the seed's `CoreModel::advance`: the overlap division always goes
/// through the f64 unit (the production model halves integer-side when
/// `mlp_overlap == 2.0`). Outputs are identical; only the cost differs.
fn reference_advance(model: &mut CoreModel, non_mem_instrs: u64, mem_latency: u64) -> u64 {
    let cfg = *model.config();
    let compute = non_mem_instrs.div_ceil(cfg.issue_width);
    let exposed = mem_latency.saturating_sub(cfg.l1_hit_cycles);
    let overlapped = (exposed as f64 / cfg.mlp_overlap).round() as u64;
    let rob_hide_bound = cfg.rob_size / cfg.issue_width;
    let stall = overlapped.max(exposed.saturating_sub(rob_hide_bound));
    model.cycle += compute + stall;
    model.compute_cycles += compute;
    model.mem_stall_cycles += stall;
    model.instructions += non_mem_instrs + 1;
    compute + stall
}

/// One core of the reference system.
struct RefCoreNode {
    model: CoreModel,
    l1d: ReferencePrivateCache,
    l2: ReferencePrivateCache,
    prefetcher: NextLinePrefetcher,
    trace: Box<dyn TraceSource>,
    dram_reads: u64,
    snapshot: Option<CoreStats>,
}

/// Frozen copy of the seed's multi-core driver: binary-heap core scheduling,
/// per-access `cores[core_id]` indexing, float-path core timing, array-of-structs
/// caches and boxed policy dispatch. This is the end-to-end "before" engine; see the
/// module docs.
pub struct ReferenceSystem {
    config: SystemConfig,
    cores: Vec<RefCoreNode>,
    llc: ReferenceLlc,
    dram: Dram,
}

impl ReferenceSystem {
    /// Build the reference system exactly like the seed `MultiCoreSystem::new` did.
    pub fn new(
        config: SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn LlcReplacementPolicy>,
    ) -> Self {
        config.validate().expect("invalid system configuration");
        assert_eq!(
            traces.len(),
            config.num_cores,
            "need exactly one trace source per core"
        );
        let llc = ReferenceLlc::new(config.llc, config.num_cores, config.interval_misses, policy);
        let dram = Dram::new(config.dram);
        let cores = traces
            .into_iter()
            .map(|trace| RefCoreNode {
                model: CoreModel::new(config.core),
                l1d: ReferencePrivateCache::new(config.l1d),
                l2: ReferencePrivateCache::new(config.l2),
                prefetcher: NextLinePrefetcher::new(config.l1_next_line_prefetch),
                trace,
                dram_reads: 0,
                snapshot: None,
            })
            .collect();
        ReferenceSystem {
            config,
            cores,
            llc,
            dram,
        }
    }

    /// Run until every core has retired at least `instructions_per_core` instructions;
    /// returns statistics snapshotted at each core's target (the seed heap scheduler).
    pub fn run(&mut self, instructions_per_core: u64) -> SystemResults {
        assert!(instructions_per_core > 0);
        let n = self.cores.len();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n).map(|i| Reverse((0, i))).collect();
        let mut frozen_steps: Vec<u64> = vec![0; n];
        let mut remaining = n;

        while remaining > 0 {
            let Reverse((_, core_id)) = heap.pop().expect("heap never empties while cores remain");
            let cycle_before = self.cores[core_id].model.cycle;
            self.step_core(core_id);
            let core = &mut self.cores[core_id];
            // Whether the core was already finished BEFORE this step — the step that
            // takes the snapshot itself is not counted, matching the fast engine.
            let was_finished = core.snapshot.is_some();
            if core.snapshot.is_none() && core.model.instructions >= instructions_per_core {
                let snap = Self::snapshot_core(core_id, core, &self.llc);
                core.snapshot = Some(snap);
                remaining -= 1;
            }
            if remaining > 0 {
                // Same livelock breaker as the fast engine (see
                // `crate::system::LIVELOCK_STEPS`): a finished core whose re-executed
                // stream stops advancing its clock must not starve unfinished cores.
                let core = &self.cores[core_id];
                let retire = if was_finished {
                    if core.model.cycle > cycle_before {
                        frozen_steps[core_id] = 0;
                        false
                    } else {
                        frozen_steps[core_id] += 1;
                        frozen_steps[core_id] >= crate::system::LIVELOCK_STEPS
                    }
                } else {
                    false
                };
                if !retire {
                    heap.push(Reverse((core.model.cycle, core_id)));
                }
            }
        }

        let final_cycle = self
            .cores
            .iter()
            .map(|c| c.snapshot.as_ref().map(|s| s.cycles).unwrap_or(0))
            .max()
            .unwrap_or(0);

        SystemResults {
            policy: self.llc.policy_name(),
            per_core: self
                .cores
                .iter()
                .map(|c| c.snapshot.clone().expect("all cores snapshotted"))
                .collect(),
            llc_global: *self.llc.global_stats(),
            llc_banks: self.llc.bank_stats().to_vec(),
            dram: *self.dram.stats(),
            core_stalls: crate::stats::assemble_core_stalls(
                n,
                self.llc.banks.core_stalls(),
                &self.llc.mshr_core_stalls,
                self.dram.core_stalls(),
            ),
            final_cycle,
        }
    }

    fn snapshot_core(core_id: usize, core: &RefCoreNode, llc: &ReferenceLlc) -> CoreStats {
        CoreStats {
            core_id,
            label: core.trace.label(),
            instructions: core.model.instructions,
            cycles: core.model.cycle,
            compute_cycles: core.model.compute_cycles,
            mem_stall_cycles: core.model.mem_stall_cycles,
            l1d: *core.l1d.stats(),
            l2: *core.l2.stats(),
            llc: *llc.core_stats(core_id),
            prefetch: *core.prefetcher.stats(),
            dram_reads: core.dram_reads,
        }
    }

    fn step_core(&mut self, core_id: usize) {
        let access = self.cores[core_id].trace.next_access();
        let block = crate::addr::block_of(access.addr);
        let now = self.cores[core_id].model.cycle;

        let (mem_latency, prefetch_candidate) =
            self.demand_access(core_id, block, access.pc, access.is_write, now);

        if let Some(pf_block) = prefetch_candidate {
            self.prefetch_access(core_id, pf_block, access.pc, now);
        }

        reference_advance(
            &mut self.cores[core_id].model,
            access.non_mem_instrs as u64,
            mem_latency,
        );
    }

    fn demand_access(
        &mut self,
        core_id: usize,
        block: BlockAddr,
        pc: u64,
        is_write: bool,
        now: u64,
    ) -> (u64, Option<BlockAddr>) {
        let l1_latency = self.config.core.l1_hit_cycles;

        if self.cores[core_id].l1d.access(block, is_write) == Lookup::Hit {
            return (l1_latency, None);
        }

        let prefetch_candidate = {
            let core = &mut self.cores[core_id];
            let l1 = &core.l1d;
            core.prefetcher.on_demand_miss(block, |b| l1.probe(b))
        };

        let l2_latency = self.cores[core_id].l2.latency();
        let mut latency;
        if self.cores[core_id].l2.access(block, false) == Lookup::Hit {
            latency = l2_latency;
        } else {
            let llc_lookup = self.llc.access(core_id, pc, block, true, is_write, now);
            if llc_lookup.hit {
                latency = l2_latency + llc_lookup.latency;
            } else {
                let (mshr_stall, dram_latency) = if self.config.llc.contention.mshr_backpressure {
                    let stall = self.llc.begin_mshr(core_id, now);
                    let issue = now + llc_lookup.latency + stall;
                    let dram_out = self.dram.access(block, issue, false, core_id);
                    self.llc.complete_mshr(issue + dram_out.latency);
                    (stall, dram_out.latency)
                } else {
                    let dram_out =
                        self.dram
                            .access(block, now + llc_lookup.latency, false, core_id);
                    let stall =
                        self.llc
                            .reserve_mshr(core_id, now, llc_lookup.latency + dram_out.latency);
                    (stall, dram_out.latency)
                };
                latency = l2_latency + llc_lookup.latency + mshr_stall + dram_latency;
                self.cores[core_id].dram_reads += 1;

                let fill = self.llc.fill(core_id, pc, block, false, now);
                if let Some(evicted) = fill.evicted {
                    if evicted.dirty {
                        self.dram.access(evicted.block, now, true, core_id);
                    }
                }
            }
            if let Some(evicted) = self.cores[core_id].l2.fill(block, false, false) {
                if evicted.dirty {
                    self.writeback_from_l2(core_id, evicted.block, now);
                }
            }
        }

        if let Some(evicted) = self.cores[core_id].l1d.fill(block, is_write, false) {
            if evicted.dirty && !self.cores[core_id].l2.writeback(evicted.block) {
                self.writeback_from_l2(core_id, evicted.block, now);
            }
        }

        latency += l1_latency;
        (latency, prefetch_candidate)
    }

    fn writeback_from_l2(&mut self, core_id: usize, block: BlockAddr, now: u64) {
        if !self.llc.writeback(core_id, block, now) {
            self.dram.access(block, now, true, core_id);
        }
    }

    fn prefetch_access(&mut self, core_id: usize, block: BlockAddr, pc: u64, now: u64) {
        if self.cores[core_id].l1d.probe(block) {
            return;
        }
        if !self.cores[core_id].l2.probe(block) {
            let llc_lookup = self.llc.access(core_id, pc, block, false, false, now);
            if !llc_lookup.hit {
                self.dram
                    .access(block, now + llc_lookup.latency, false, core_id);
                self.cores[core_id].dram_reads += 1;
            }
            if let Some(evicted) = self.cores[core_id].l2.fill(block, false, true) {
                if evicted.dirty {
                    self.writeback_from_l2(core_id, evicted.block, now);
                }
            }
        }
        if let Some(evicted) = self.cores[core_id].l1d.fill(block, false, true) {
            if evicted.dirty && !self.cores[core_id].l2.writeback(evicted.block) {
                self.writeback_from_l2(core_id, evicted.block, now);
            }
        }
    }
}

/// Build a [`ReferenceSystem`] — the frozen end-to-end "before" engine the optimized
/// default path is compared against.
pub fn reference_system(
    config: SystemConfig,
    traces: Vec<Box<dyn TraceSource>>,
    policy: Box<dyn LlcReplacementPolicy>,
) -> ReferenceSystem {
    ReferenceSystem::new(config, traces, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;
    use crate::system::DefaultSrripPolicy;

    fn llc_config() -> LlcConfig {
        LlcConfig {
            geometry: CacheGeometry::new(64 * 1024, 16),
            latency: 24,
            banks: 4,
            bank_busy_cycles: 4,
            mshr_entries: 8,
            wb_entries: 8,
            wb_retire_at: 6,
            contention: crate::config::BankContentionConfig::flat(),
            nuca: crate::config::NucaConfig::disabled(),
        }
    }

    #[test]
    fn reference_llc_round_trips() {
        let cfg = llc_config();
        let policy = Box::new(DefaultSrripPolicy::new(
            cfg.geometry.num_sets(),
            cfg.geometry.ways,
        ));
        let mut llc = ReferenceLlc::new(cfg, 2, 100, policy);
        let b = BlockAddr(0x42);
        assert!(!llc.access(0, 0, b, true, false, 0).hit);
        llc.fill(0, 0, b, false, 0);
        assert!(llc.access(0, 0, b, true, false, 1000).hit);
        assert_eq!(llc.occupancy(), 1);
        assert_eq!(llc.occupancy_by_core(), vec![1, 0]);
    }

    #[test]
    fn reference_private_cache_round_trips() {
        let mut c = ReferencePrivateCache::new(PrivateCacheConfig {
            geometry: CacheGeometry::new(4 * 1024, 4),
            latency: 2,
            policy: PrivatePolicyKind::Lru,
        });
        let b = BlockAddr(42);
        assert_eq!(c.access(b, false), Lookup::Miss);
        assert!(c.fill(b, false, false).is_none());
        assert_eq!(c.access(b, false), Lookup::Hit);
        assert!(c.probe(b));
        assert!(c.writeback(b));
    }
}
