//! Trace abstraction: the simulator consumes per-core streams of memory accesses.
//!
//! Sources are infinite (they wrap around / keep generating), mirroring the paper's
//! methodology where an application that finishes its 300M-instruction slice is re-executed
//! from the beginning so that contention on the shared cache persists until every
//! application reaches its instruction target.
//!
//! The `workloads` crate provides the synthetic SPEC/PARSEC-like generators; this module
//! only defines the interface plus a few simple sources used by tests and examples.

/// One memory instruction plus the count of non-memory instructions preceding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: u64,
    /// Program counter of the memory instruction (used for SHiP-style signatures).
    pub pc: u64,
    /// True for stores.
    pub is_write: bool,
    /// Number of non-memory instructions executed since the previous memory access.
    pub non_mem_instrs: u32,
}

impl MemAccess {
    /// Instructions this access accounts for: the memory instruction itself plus the
    /// non-memory instructions preceding it.
    pub fn instructions(&self) -> u64 {
        1 + u64::from(self.non_mem_instrs)
    }
}

/// An infinite stream of memory accesses for one core.
pub trait TraceSource: Send {
    /// Produce the next access. Must never terminate.
    fn next_access(&mut self) -> MemAccess;

    /// Restart the stream from the beginning (used when re-running an application).
    ///
    /// # Contract
    ///
    /// `reset` must restore the *exact* initial stream: the sequence of accesses produced
    /// after a `reset` must be identical to the sequence produced by a freshly constructed
    /// source, including any internal randomness (sources must re-seed their RNGs). Trace
    /// capture (`trace-io`) and the capture↔replay equivalence tests rely on this — a
    /// source whose reset drifts would make a captured corpus unrepresentative of the live
    /// generator.
    fn reset(&mut self);

    /// Short human-readable name for reports.
    fn label(&self) -> String {
        "trace".to_string()
    }
}

/// Receives per-core access streams during trace capture.
///
/// Implemented by `trace_io::TraceWriter` (binary corpus files) and by test doubles; the
/// capture entry points in `workloads` are generic over this trait so the synthetic
/// generators never depend on a concrete on-disk format.
pub trait TraceSink {
    /// Announce (or rename) the application captured on `core`.
    fn begin_core(&mut self, core: usize, label: &str) -> std::io::Result<()>;

    /// Append one access to `core`'s stream.
    fn record(&mut self, core: usize, access: MemAccess) -> std::io::Result<()>;
}

/// Drain `accesses` accesses from `source` into `sink` under core index `core`.
///
/// The source is reset first so captures always start from the initial stream, keeping a
/// captured corpus equivalent to a freshly constructed generator.
pub fn capture_into(
    source: &mut dyn TraceSource,
    sink: &mut dyn TraceSink,
    core: usize,
    accesses: u64,
) -> std::io::Result<()> {
    source.reset();
    sink.begin_core(core, &source.label())?;
    for _ in 0..accesses {
        sink.record(core, source.next_access())?;
    }
    Ok(())
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_access(&mut self) -> MemAccess {
        (**self).next_access()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

/// A strided (streaming) access pattern over a fixed-size region, wrapping around.
#[derive(Debug, Clone)]
pub struct StridedTrace {
    base: u64,
    stride: u64,
    region_bytes: u64,
    non_mem_instrs: u32,
    offset: u64,
    pc: u64,
}

impl StridedTrace {
    /// `base`: starting byte address, `stride`: bytes between accesses, `region_bytes`:
    /// wrap-around length, `non_mem_instrs`: compute instructions between accesses.
    pub fn new(base: u64, stride: u64, region_bytes: u64, non_mem_instrs: u32) -> Self {
        assert!(stride > 0 && region_bytes >= stride);
        StridedTrace {
            base,
            stride,
            region_bytes,
            non_mem_instrs,
            offset: 0,
            pc: 0x4000_0000 + base,
        }
    }
}

impl TraceSource for StridedTrace {
    fn next_access(&mut self) -> MemAccess {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.region_bytes;
        MemAccess {
            addr,
            pc: self.pc,
            is_write: false,
            non_mem_instrs: self.non_mem_instrs,
        }
    }

    fn reset(&mut self) {
        self.offset = 0;
    }

    fn label(&self) -> String {
        format!("strided({:#x},{})", self.base, self.stride)
    }
}

/// Replays a fixed vector of accesses in a loop; handy for unit tests.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    accesses: Vec<MemAccess>,
    pos: usize,
    name: String,
}

impl ReplayTrace {
    pub fn new(name: impl Into<String>, accesses: Vec<MemAccess>) -> Self {
        assert!(!accesses.is_empty(), "replay trace must not be empty");
        ReplayTrace {
            accesses,
            pos: 0,
            name: name.into(),
        }
    }

    /// Convenience: read-only accesses over the given byte addresses with a fixed gap of
    /// non-memory instructions between them.
    pub fn from_addrs(name: impl Into<String>, addrs: &[u64], non_mem_instrs: u32) -> Self {
        let accesses = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| MemAccess {
                addr,
                pc: 0x1000 + (i as u64 % 17) * 4,
                is_write: false,
                non_mem_instrs,
            })
            .collect();
        Self::new(name, accesses)
    }
}

impl TraceSource for ReplayTrace {
    fn next_access(&mut self) -> MemAccess {
        let a = self.accesses[self.pos];
        self.pos = (self.pos + 1) % self.accesses.len();
        a
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_trace_wraps_around_region() {
        let mut t = StridedTrace::new(0x1000, 64, 256, 5);
        let addrs: Vec<u64> = (0..5).map(|_| t.next_access().addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000]);
    }

    #[test]
    fn strided_trace_reset_restarts() {
        let mut t = StridedTrace::new(0, 64, 1 << 20, 0);
        t.next_access();
        t.next_access();
        t.reset();
        assert_eq!(t.next_access().addr, 0);
    }

    #[test]
    fn replay_trace_loops_forever() {
        let mut t = ReplayTrace::from_addrs("x", &[1, 2, 3], 0);
        let seq: Vec<u64> = (0..7).map(|_| t.next_access().addr).collect();
        assert_eq!(seq, vec![1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    #[should_panic]
    fn empty_replay_trace_panics() {
        let _ = ReplayTrace::new("empty", vec![]);
    }

    /// Sink that records everything in memory, for testing the capture plumbing.
    struct VecSink {
        labels: Vec<String>,
        streams: Vec<Vec<MemAccess>>,
    }

    impl TraceSink for VecSink {
        fn begin_core(&mut self, core: usize, label: &str) -> std::io::Result<()> {
            self.labels[core] = label.to_string();
            Ok(())
        }

        fn record(&mut self, core: usize, access: MemAccess) -> std::io::Result<()> {
            self.streams[core].push(access);
            Ok(())
        }
    }

    #[test]
    fn capture_into_resets_then_drains_the_source() {
        let mut src = ReplayTrace::from_addrs("app", &[1, 2, 3], 2);
        src.next_access(); // capture must not start mid-stream
        let mut sink = VecSink {
            labels: vec![String::new()],
            streams: vec![vec![]],
        };
        capture_into(&mut src, &mut sink, 0, 5).unwrap();
        assert_eq!(sink.labels[0], "app");
        let addrs: Vec<u64> = sink.streams[0].iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![1, 2, 3, 1, 2]);
        assert_eq!(sink.streams[0][0].instructions(), 3);
    }

    #[test]
    fn boxed_trace_source_dispatches() {
        let mut boxed: Box<dyn TraceSource> = Box::new(ReplayTrace::from_addrs("b", &[9], 1));
        assert_eq!(boxed.next_access().addr, 9);
        assert_eq!(boxed.label(), "b");
        boxed.reset();
    }
}
