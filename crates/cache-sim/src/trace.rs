//! Trace abstraction: the simulator consumes per-core streams of memory accesses.
//!
//! Sources are infinite (they wrap around / keep generating), mirroring the paper's
//! methodology where an application that finishes its 300M-instruction slice is re-executed
//! from the beginning so that contention on the shared cache persists until every
//! application reaches its instruction target.
//!
//! The `workloads` crate provides the synthetic SPEC/PARSEC-like generators; this module
//! only defines the interface plus a few simple sources used by tests and examples.

/// One memory instruction plus the count of non-memory instructions preceding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: u64,
    /// Program counter of the memory instruction (used for SHiP-style signatures).
    pub pc: u64,
    /// True for stores.
    pub is_write: bool,
    /// Number of non-memory instructions executed since the previous memory access.
    pub non_mem_instrs: u32,
}

impl MemAccess {
    /// Instructions this access accounts for: the memory instruction itself plus the
    /// non-memory instructions preceding it.
    pub fn instructions(&self) -> u64 {
        1 + u64::from(self.non_mem_instrs)
    }
}

/// An infinite stream of memory accesses for one core.
pub trait TraceSource: Send {
    /// Produce the next access. Must never terminate.
    fn next_access(&mut self) -> MemAccess;

    /// Restart the stream from the beginning (used when re-running an application).
    ///
    /// # Contract
    ///
    /// `reset` must restore the *exact* initial stream: the sequence of accesses produced
    /// after a `reset` must be identical to the sequence produced by a freshly constructed
    /// source, including any internal randomness (sources must re-seed their RNGs). Trace
    /// capture (`trace-io`) and the capture↔replay equivalence tests rely on this — a
    /// source whose reset drifts would make a captured corpus unrepresentative of the live
    /// generator.
    fn reset(&mut self);

    /// Short human-readable name for reports.
    fn label(&self) -> String {
        "trace".to_string()
    }
}

/// Receives per-core access streams during trace capture.
///
/// Implemented by `trace_io::TraceWriter` (binary corpus files) and by test doubles; the
/// capture entry points in `workloads` are generic over this trait so the synthetic
/// generators never depend on a concrete on-disk format.
pub trait TraceSink {
    /// Announce (or rename) the application captured on `core`.
    fn begin_core(&mut self, core: usize, label: &str) -> std::io::Result<()>;

    /// Append one access to `core`'s stream.
    fn record(&mut self, core: usize, access: MemAccess) -> std::io::Result<()>;
}

/// Drain `accesses` accesses from `source` into `sink` under core index `core`.
///
/// The source is reset first so captures always start from the initial stream, keeping a
/// captured corpus equivalent to a freshly constructed generator.
pub fn capture_into(
    source: &mut dyn TraceSource,
    sink: &mut dyn TraceSink,
    core: usize,
    accesses: u64,
) -> std::io::Result<()> {
    source.reset();
    sink.begin_core(core, &source.label())?;
    for _ in 0..accesses {
        sink.record(core, source.next_access())?;
    }
    Ok(())
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_access(&mut self) -> MemAccess {
        (**self).next_access()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

/// A strided (streaming) access pattern over a fixed-size region, wrapping around.
#[derive(Debug, Clone)]
pub struct StridedTrace {
    base: u64,
    stride: u64,
    region_bytes: u64,
    non_mem_instrs: u32,
    offset: u64,
    pc: u64,
}

impl StridedTrace {
    /// `base`: starting byte address, `stride`: bytes between accesses, `region_bytes`:
    /// wrap-around length, `non_mem_instrs`: compute instructions between accesses.
    pub fn new(base: u64, stride: u64, region_bytes: u64, non_mem_instrs: u32) -> Self {
        assert!(stride > 0 && region_bytes >= stride);
        StridedTrace {
            base,
            stride,
            region_bytes,
            non_mem_instrs,
            offset: 0,
            pc: 0x4000_0000 + base,
        }
    }
}

impl TraceSource for StridedTrace {
    fn next_access(&mut self) -> MemAccess {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.region_bytes;
        MemAccess {
            addr,
            pc: self.pc,
            is_write: false,
            non_mem_instrs: self.non_mem_instrs,
        }
    }

    fn reset(&mut self) {
        self.offset = 0;
    }

    fn label(&self) -> String {
        format!("strided({:#x},{})", self.base, self.stride)
    }
}

/// Replays a shared, immutable access buffer in a loop, wrapping at the end exactly like
/// `trace_io::TraceReader` wraps at EOF (the paper's re-execution methodology).
///
/// The buffer is behind an [`Arc`](std::sync::Arc), so one decoded trace can back many
/// concurrently running simulations without copying — the corpus sweep engine in
/// `experiments::runner` materializes each workload mix once and hands every policy its
/// own cursor over the same records.
#[derive(Debug, Clone)]
pub struct SharedReplayTrace {
    records: std::sync::Arc<Vec<MemAccess>>,
    pos: usize,
    wraps: u64,
    name: String,
}

impl SharedReplayTrace {
    /// Wrap a shared record buffer. Panics on an empty buffer: a [`TraceSource`] must
    /// never terminate, and an empty loop cannot produce anything.
    pub fn new(name: impl Into<String>, records: std::sync::Arc<Vec<MemAccess>>) -> Self {
        assert!(!records.is_empty(), "shared replay trace must not be empty");
        SharedReplayTrace {
            records,
            pos: 0,
            wraps: 0,
            name: name.into(),
        }
    }

    /// How many times the cursor wrapped past the end of the buffer. Zero means the
    /// consumer never outran the captured records, i.e. the replay was equivalent to an
    /// infinite source over the same prefix.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// Number of records in the shared buffer.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false (empty buffers are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for SharedReplayTrace {
    fn next_access(&mut self) -> MemAccess {
        let a = self.records[self.pos];
        self.pos += 1;
        if self.pos == self.records.len() {
            self.pos = 0;
            self.wraps += 1;
        }
        a
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.wraps = 0;
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

/// Produces a wrapping record stream one caller-owned batch at a time — the streaming
/// counterpart of handing out an `Arc<Vec<MemAccess>>`.
///
/// Implementations decode (or generate) the *next* run of records into the arena the
/// caller passes in, reusing its capacity; nothing about the whole stream is ever
/// resident at once. `trace_io`'s zero-copy mapped decoder is the main implementor; the
/// consumer side is [`ArenaReplayTrace`].
pub trait BatchSource: Send {
    /// Replace `arena`'s contents with the next batch of the stream (at least one
    /// record — a [`TraceSource`] must never terminate, so neither may a batch stream).
    ///
    /// Returns `true` when this batch *ends a full pass* over the stream: the record
    /// following the batch's last is the stream's first again. Consumers use it to
    /// count wraps with the same eager semantics as [`SharedReplayTrace`].
    fn fill(&mut self, arena: &mut Vec<MemAccess>) -> bool;

    /// Restart the stream: the next [`fill`](BatchSource::fill) produces the first
    /// batch again, bit-identical to a freshly constructed source (the same exact-reset
    /// contract as [`TraceSource::reset`]).
    fn rewind(&mut self);

    /// Short human-readable name for reports.
    fn label(&self) -> String;
}

/// Typed unwind payload for replay infrastructure that hits corruption *after* its
/// sources were validated.
///
/// The [`TraceSource`]/[`BatchSource`] contracts are infallible by design — the
/// simulator hot loop cannot plumb `Result` — so a decode failure discovered
/// mid-replay can only surface as a panic. Raising it with
/// [`raise_replay_fault`] makes the panic *typed*: an unwind boundary (sweepd's
/// worker `catch_unwind`) downcasts the payload with [`replay_fault_from`] to
/// tell recoverable replay corruption (quarantine the corpus, answer a typed
/// 503) apart from arbitrary bugs (500). CLI tools that install no boundary
/// keep plain panic-on-corruption semantics.
#[derive(Debug, Clone)]
pub struct ReplayFault {
    /// Label of the stream that failed (see [`BatchSource::label`]).
    pub stream: String,
    /// Human-readable description of the corruption.
    pub message: String,
}

impl std::fmt::Display for ReplayFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay fault on stream {}: {}",
            self.stream, self.message
        )
    }
}

/// Unwind with a [`ReplayFault`] payload. The message is also written to stderr
/// first, because `panic_any` payloads render opaquely in default panic hooks.
pub fn raise_replay_fault(stream: &str, message: String) -> ! {
    eprintln!("replay fault on stream {stream}: {message}");
    std::panic::panic_any(ReplayFault {
        stream: stream.to_string(),
        message,
    })
}

/// Downcast a `catch_unwind` payload to the [`ReplayFault`] it carries, if any.
pub fn replay_fault_from(payload: &(dyn std::any::Any + Send)) -> Option<&ReplayFault> {
    payload.downcast_ref::<ReplayFault>()
}

/// Process-wide accounting of live replay-arena bytes (see [`ArenaTracker`]).
static ARENA_CURRENT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// High-water mark of [`ARENA_CURRENT`]; read by [`arena_peak_bytes`].
static ARENA_PEAK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Bytes currently held by live replay arenas (all [`ArenaTracker`]s).
pub fn arena_current_bytes() -> u64 {
    ARENA_CURRENT.load(std::sync::atomic::Ordering::Relaxed)
}

/// High-water mark of [`arena_current_bytes`] since process start or the last
/// [`reset_arena_peak`]. The constant-memory sweep tests and the decode benchmark
/// assert against this.
pub fn arena_peak_bytes() -> u64 {
    ARENA_PEAK.load(std::sync::atomic::Ordering::Relaxed)
}

/// Reset the peak to the *currently live* arena bytes, so a test can bracket one run.
pub fn reset_arena_peak() {
    ARENA_PEAK.store(arena_current_bytes(), std::sync::atomic::Ordering::Relaxed);
}

/// RAII registration of one replay buffer's bytes in the process-wide arena accounting.
///
/// Holders call [`set_bytes`](ArenaTracker::set_bytes) with the buffer's current
/// capacity after each refill; dropping the tracker releases its contribution. The
/// global peak ([`arena_peak_bytes`]) is what constant-memory tests cap.
#[derive(Debug, Default)]
pub struct ArenaTracker {
    registered: u64,
}

impl ArenaTracker {
    /// A tracker contributing zero bytes until the first `set_bytes`.
    pub fn new() -> Self {
        ArenaTracker::default()
    }

    /// Update this tracker's contribution to the live total (and the peak).
    pub fn set_bytes(&mut self, bytes: u64) {
        use std::sync::atomic::Ordering;
        if bytes == self.registered {
            return;
        }
        let now = if bytes >= self.registered {
            ARENA_CURRENT.fetch_add(bytes - self.registered, Ordering::Relaxed) + bytes
                - self.registered
        } else {
            ARENA_CURRENT.fetch_sub(self.registered - bytes, Ordering::Relaxed) + bytes
                - self.registered
        };
        self.registered = bytes;
        ARENA_PEAK.fetch_max(now, Ordering::Relaxed);
    }
}

impl Drop for ArenaTracker {
    fn drop(&mut self) {
        self.set_bytes(0);
    }
}

/// Adapts a [`BatchSource`] into an infinite [`TraceSource`]: serves records from a
/// reused fixed-size arena, refilling from the source when the arena is drained.
///
/// Wrap counting is *eager*, exactly like [`SharedReplayTrace`]: serving the last record
/// of a pass-ending batch increments [`wraps`](ArenaReplayTrace::wraps) immediately.
/// Arena capacity is registered with the process-wide accounting
/// ([`arena_peak_bytes`]) after every refill.
pub struct ArenaReplayTrace {
    source: Box<dyn BatchSource>,
    arena: Vec<MemAccess>,
    pos: usize,
    /// The current arena contents end a full pass (wrap fires on its last record).
    end_of_pass: bool,
    wraps: u64,
    tracker: ArenaTracker,
}

impl ArenaReplayTrace {
    /// Wrap `source`; no records are pulled until the first `next_access`.
    pub fn new(source: Box<dyn BatchSource>) -> Self {
        ArenaReplayTrace {
            source,
            arena: Vec::new(),
            pos: 0,
            end_of_pass: false,
            wraps: 0,
            tracker: ArenaTracker::new(),
        }
    }

    /// How many times the stream wrapped past its end (eager count, matching
    /// [`SharedReplayTrace::wraps`]).
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl TraceSource for ArenaReplayTrace {
    fn next_access(&mut self) -> MemAccess {
        if self.pos >= self.arena.len() {
            self.end_of_pass = self.source.fill(&mut self.arena);
            assert!(
                !self.arena.is_empty(),
                "BatchSource::fill must produce at least one record"
            );
            self.tracker
                .set_bytes((self.arena.capacity() * std::mem::size_of::<MemAccess>()) as u64);
            self.pos = 0;
        }
        let a = self.arena[self.pos];
        self.pos += 1;
        if self.end_of_pass && self.pos == self.arena.len() {
            self.wraps += 1;
        }
        a
    }

    fn reset(&mut self) {
        self.source.rewind();
        self.arena.clear();
        self.pos = 0;
        self.end_of_pass = false;
        self.wraps = 0;
    }

    fn label(&self) -> String {
        self.source.label()
    }
}

/// Number of records generated per chunk by [`LazySharedTrace`].
const LAZY_CHUNK_RECORDS: usize = 4096;

/// A [`TraceSource`] whose output is generated on demand, memoized in shared chunks, and
/// replayable by any number of concurrent cursors.
///
/// The corpus sweep engine evaluates P policies over one mix; wrapping the mix's live
/// generator in a `LazySharedTrace` means each access is generated *exactly once across
/// the whole sweep* — the first cursor to need a chunk generates it (under a mutex, once
/// per `LAZY_CHUNK_RECORDS` = 4096 accesses), later cursors replay the cached records
/// zero-copy. Unlike an eager capture, no budget has to be guessed: cursors never wrap,
/// so their streams are indistinguishable from the underlying infinite generator.
pub struct LazySharedTrace {
    state: std::sync::Arc<std::sync::Mutex<LazyState>>,
    label: String,
}

struct LazyState {
    source: Box<dyn TraceSource>,
    chunks: Vec<std::sync::Arc<Vec<MemAccess>>>,
}

impl LazySharedTrace {
    /// Wrap `source` (which is reset first, so generation starts from the initial
    /// stream) for shared, memoized consumption.
    pub fn new(mut source: Box<dyn TraceSource>) -> Self {
        source.reset();
        let label = source.label();
        LazySharedTrace {
            state: std::sync::Arc::new(std::sync::Mutex::new(LazyState {
                source,
                chunks: Vec::new(),
            })),
            label,
        }
    }

    /// A new independent cursor positioned at the start of the stream.
    pub fn cursor(&self) -> LazySharedCursor {
        LazySharedCursor {
            state: self.state.clone(),
            label: self.label.clone(),
            chunk: None,
            chunk_idx: 0,
            pos: 0,
        }
    }

    /// Records generated (and cached) so far — the high-water mark across all cursors.
    pub fn records_generated(&self) -> usize {
        let state = self.state.lock().expect("lazy trace lock");
        state.chunks.iter().map(|c| c.len()).sum()
    }

    /// The wrapped generator's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// One consumer's position over a [`LazySharedTrace`] (see
/// [`LazySharedTrace::cursor`]). Implements [`TraceSource`]; [`reset`](TraceSource::reset)
/// rewinds to the start without regenerating anything.
pub struct LazySharedCursor {
    state: std::sync::Arc<std::sync::Mutex<LazyState>>,
    label: String,
    /// Local handle on the chunk currently being read (no lock on the fast path).
    chunk: Option<std::sync::Arc<Vec<MemAccess>>>,
    chunk_idx: usize,
    pos: usize,
}

impl LazySharedCursor {
    fn fetch_chunk(&mut self, idx: usize) -> std::sync::Arc<Vec<MemAccess>> {
        let mut state = self.state.lock().expect("lazy trace lock");
        while state.chunks.len() <= idx {
            let chunk: Vec<MemAccess> = (0..LAZY_CHUNK_RECORDS)
                .map(|_| state.source.next_access())
                .collect();
            state.chunks.push(std::sync::Arc::new(chunk));
        }
        state.chunks[idx].clone()
    }
}

impl TraceSource for LazySharedCursor {
    fn next_access(&mut self) -> MemAccess {
        let need_fetch = match &self.chunk {
            Some(chunk) => self.pos >= chunk.len(),
            None => true,
        };
        if need_fetch {
            if self.chunk.is_some() {
                self.chunk_idx += 1;
            }
            self.chunk = Some(self.fetch_chunk(self.chunk_idx));
            self.pos = 0;
        }
        let chunk = self.chunk.as_ref().expect("chunk just fetched");
        let a = chunk[self.pos];
        self.pos += 1;
        a
    }

    fn reset(&mut self) {
        self.chunk = None;
        self.chunk_idx = 0;
        self.pos = 0;
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Replays a fixed vector of accesses in a loop; handy for unit tests.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    accesses: Vec<MemAccess>,
    pos: usize,
    name: String,
}

impl ReplayTrace {
    pub fn new(name: impl Into<String>, accesses: Vec<MemAccess>) -> Self {
        assert!(!accesses.is_empty(), "replay trace must not be empty");
        ReplayTrace {
            accesses,
            pos: 0,
            name: name.into(),
        }
    }

    /// Convenience: read-only accesses over the given byte addresses with a fixed gap of
    /// non-memory instructions between them.
    pub fn from_addrs(name: impl Into<String>, addrs: &[u64], non_mem_instrs: u32) -> Self {
        let accesses = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| MemAccess {
                addr,
                pc: 0x1000 + (i as u64 % 17) * 4,
                is_write: false,
                non_mem_instrs,
            })
            .collect();
        Self::new(name, accesses)
    }
}

impl TraceSource for ReplayTrace {
    fn next_access(&mut self) -> MemAccess {
        let a = self.accesses[self.pos];
        self.pos = (self.pos + 1) % self.accesses.len();
        a
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_trace_wraps_around_region() {
        let mut t = StridedTrace::new(0x1000, 64, 256, 5);
        let addrs: Vec<u64> = (0..5).map(|_| t.next_access().addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000]);
    }

    #[test]
    fn strided_trace_reset_restarts() {
        let mut t = StridedTrace::new(0, 64, 1 << 20, 0);
        t.next_access();
        t.next_access();
        t.reset();
        assert_eq!(t.next_access().addr, 0);
    }

    #[test]
    fn lazy_shared_trace_matches_its_generator_and_generates_once() {
        let source = || Box::new(StridedTrace::new(0x1000, 64, 1 << 16, 2));
        let shared = LazySharedTrace::new(source());
        assert_eq!(shared.label(), source().label());
        let mut a = shared.cursor();
        let mut b = shared.cursor();
        let mut live = source();
        live.reset();
        // Drive cursor a past one chunk boundary; b must see the identical stream.
        let n = super::LAZY_CHUNK_RECORDS + 100;
        let from_a: Vec<MemAccess> = (0..n).map(|_| a.next_access()).collect();
        let from_b: Vec<MemAccess> = (0..n).map(|_| b.next_access()).collect();
        let from_live: Vec<MemAccess> = (0..n).map(|_| live.next_access()).collect();
        assert_eq!(from_a, from_live);
        assert_eq!(from_b, from_live);
        // Both cursors consumed n records but only ceil(n/chunk) chunks were generated.
        assert_eq!(shared.records_generated(), 2 * super::LAZY_CHUNK_RECORDS);
        // Reset replays the cached prefix without regenerating.
        a.reset();
        assert_eq!(a.next_access(), from_live[0]);
        assert_eq!(shared.records_generated(), 2 * super::LAZY_CHUNK_RECORDS);
    }

    #[test]
    fn lazy_shared_cursors_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LazySharedCursor>();
    }

    #[test]
    fn shared_replay_trace_wraps_and_counts() {
        let records = std::sync::Arc::new(
            [1u64, 2, 3]
                .iter()
                .map(|&addr| MemAccess {
                    addr,
                    pc: 0,
                    is_write: false,
                    non_mem_instrs: 0,
                })
                .collect::<Vec<_>>(),
        );
        let mut a = SharedReplayTrace::new("a", records.clone());
        let mut b = SharedReplayTrace::new("b", records);
        let seq: Vec<u64> = (0..7).map(|_| a.next_access().addr).collect();
        assert_eq!(seq, vec![1, 2, 3, 1, 2, 3, 1]);
        assert_eq!(a.wraps(), 2);
        // Cursors over the same buffer are independent.
        assert_eq!(b.next_access().addr, 1);
        assert_eq!(b.wraps(), 0);
        a.reset();
        assert_eq!(a.wraps(), 0);
        assert_eq!(a.next_access().addr, 1);
    }

    #[test]
    #[should_panic]
    fn empty_shared_replay_trace_panics() {
        let _ = SharedReplayTrace::new("empty", std::sync::Arc::new(Vec::new()));
    }

    /// Test double: serves a fixed record vector in batches of `batch` records.
    struct VecBatchSource {
        records: Vec<MemAccess>,
        batch: usize,
        pos: usize,
        fills: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl BatchSource for VecBatchSource {
        fn fill(&mut self, arena: &mut Vec<MemAccess>) -> bool {
            self.fills
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            arena.clear();
            let end = (self.pos + self.batch).min(self.records.len());
            arena.extend_from_slice(&self.records[self.pos..end]);
            self.pos = end;
            if self.pos == self.records.len() {
                self.pos = 0;
                true
            } else {
                false
            }
        }

        fn rewind(&mut self) {
            self.pos = 0;
        }

        fn label(&self) -> String {
            "vec-batch".to_string()
        }
    }

    fn batch_fixture(n: u64, batch: usize) -> (ArenaReplayTrace, SharedReplayTrace) {
        let records: Vec<MemAccess> = (0..n)
            .map(|i| MemAccess {
                addr: i * 64,
                pc: 0x100 + i,
                is_write: i % 3 == 0,
                non_mem_instrs: (i % 5) as u32,
            })
            .collect();
        let arena = ArenaReplayTrace::new(Box::new(VecBatchSource {
            records: records.clone(),
            batch,
            pos: 0,
            fills: Default::default(),
        }));
        let shared = SharedReplayTrace::new("vec-batch", std::sync::Arc::new(records));
        (arena, shared)
    }

    #[test]
    fn arena_replay_matches_shared_replay_across_wraps() {
        // Batch sizes that divide the stream, don't, and exceed it.
        for batch in [1usize, 3, 7, 10, 64] {
            let (mut arena, mut shared) = batch_fixture(10, batch);
            assert_eq!(arena.label(), shared.label());
            for step in 0..53 {
                assert_eq!(
                    arena.next_access(),
                    shared.next_access(),
                    "batch {batch} diverged at step {step}"
                );
                assert_eq!(
                    arena.wraps(),
                    shared.wraps(),
                    "batch {batch}: wrap counting diverged at step {step} \
                     (both sides must count eagerly)"
                );
            }
        }
    }

    #[test]
    fn arena_replay_reset_restores_the_initial_stream() {
        let (mut arena, _) = batch_fixture(10, 4);
        let first: Vec<MemAccess> = (0..17).map(|_| arena.next_access()).collect();
        arena.reset();
        assert_eq!(arena.wraps(), 0);
        let second: Vec<MemAccess> = (0..17).map(|_| arena.next_access()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn arena_tracker_accounts_live_and_peak_bytes() {
        // Tracker contributions are never negative, so the global counters are bounded
        // below by what *our* trackers hold — sound even with other tests' trackers
        // coming and going concurrently.
        let mut a = ArenaTracker::new();
        let mut b = ArenaTracker::new();
        a.set_bytes(1000);
        b.set_bytes(500);
        assert!(arena_current_bytes() >= 1500);
        assert!(arena_peak_bytes() >= 1500);
        a.set_bytes(200);
        drop(b);
        assert!(arena_current_bytes() >= 200);
        drop(a);
        let (mut arena, _) = batch_fixture(10, 4);
        arena.next_access();
        assert!(
            arena_current_bytes() >= 4 * std::mem::size_of::<MemAccess>() as u64,
            "a filled arena must register its capacity"
        );
        drop(arena);
    }

    #[test]
    fn replay_trace_loops_forever() {
        let mut t = ReplayTrace::from_addrs("x", &[1, 2, 3], 0);
        let seq: Vec<u64> = (0..7).map(|_| t.next_access().addr).collect();
        assert_eq!(seq, vec![1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    #[should_panic]
    fn empty_replay_trace_panics() {
        let _ = ReplayTrace::new("empty", vec![]);
    }

    /// Sink that records everything in memory, for testing the capture plumbing.
    struct VecSink {
        labels: Vec<String>,
        streams: Vec<Vec<MemAccess>>,
    }

    impl TraceSink for VecSink {
        fn begin_core(&mut self, core: usize, label: &str) -> std::io::Result<()> {
            self.labels[core] = label.to_string();
            Ok(())
        }

        fn record(&mut self, core: usize, access: MemAccess) -> std::io::Result<()> {
            self.streams[core].push(access);
            Ok(())
        }
    }

    #[test]
    fn capture_into_resets_then_drains_the_source() {
        let mut src = ReplayTrace::from_addrs("app", &[1, 2, 3], 2);
        src.next_access(); // capture must not start mid-stream
        let mut sink = VecSink {
            labels: vec![String::new()],
            streams: vec![vec![]],
        };
        capture_into(&mut src, &mut sink, 0, 5).unwrap();
        assert_eq!(sink.labels[0], "app");
        let addrs: Vec<u64> = sink.streams[0].iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![1, 2, 3, 1, 2]);
        assert_eq!(sink.streams[0][0].instructions(), 3);
    }

    #[test]
    fn boxed_trace_source_dispatches() {
        let mut boxed: Box<dyn TraceSource> = Box::new(ReplayTrace::from_addrs("b", &[9], 1));
        assert_eq!(boxed.next_access().addr, 9);
        assert_eq!(boxed.label(), "b");
        boxed.reset();
    }
}
