//! Shared, banked last-level cache with a pluggable replacement policy.
//!
//! The LLC owns tags, valid/dirty bits and per-core statistics; all replacement state lives
//! in the policy (see [`crate::replacement`]). Timing: a fixed hit latency plus the
//! cycle-accounted bank contention model of [`crate::bank`] (paper §4.1: "We model
//! bank-conflicts, but with fixed latency for all banks" — the default flat configuration
//! reproduces exactly that, while contended configurations add finite service ports and
//! bounded per-bank queues); MSHR and write-back buffer occupancy is modeled with
//! [`crate::mshr::OccupancyWindow`].
//!
//! Simplifications relative to BADCO (documented in DESIGN.md):
//! * prefetch misses do not allocate in the LLC (demand misses do); prefetch hits do not
//!   update recency state — this directly implements the paper's rule that only demand
//!   accesses update recency,
//! * write-backs arriving from a private L2 update a present line's dirty bit or are
//!   forwarded to memory if absent; they never allocate.

use crate::addr::BlockAddr;
use crate::bank::{BankModel, BankStats};
use crate::config::LlcConfig;
use crate::mshr::OccupancyWindow;
use crate::replacement::{AccessContext, LineView, LlcReplacementPolicy};

/// Outcome of an LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcLookup {
    pub hit: bool,
    /// LLC-side latency (hit latency + bank queuing), charged on hits and misses alike.
    pub latency: u64,
}

/// A line evicted by an LLC fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcEvicted {
    pub block: BlockAddr,
    pub dirty: bool,
    pub owner: usize,
}

/// Outcome of an LLC fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcFill {
    /// True if the policy chose to bypass the LLC (the line was not allocated).
    pub bypassed: bool,
    pub evicted: Option<LlcEvicted>,
}

/// Per-core LLC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcCoreStats {
    pub demand_accesses: u64,
    pub demand_hits: u64,
    pub demand_misses: u64,
    /// Demand fills the policy chose not to allocate.
    pub bypassed_fills: u64,
    pub prefetch_accesses: u64,
    pub prefetch_hits: u64,
    /// Write-backs received from this core's L2.
    pub writebacks_in: u64,
    /// Lines belonging to this core evicted from the LLC.
    pub lines_evicted: u64,
}

/// Whole-LLC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcGlobalStats {
    pub total_demand_misses: u64,
    pub intervals_completed: u64,
    /// Cycles requests spent waiting for a bank (admitted, port busy), summed.
    pub bank_queue_cycles: u64,
    /// Cycles requests spent stalled because a bank's finite queue was full
    /// (back-pressure; always zero under the flat contention model).
    pub bank_admission_stall_cycles: u64,
    pub dirty_evictions: u64,
    pub mshr_stall_cycles: u64,
    pub mshr_full_events: u64,
    pub wb_stall_cycles: u64,
    /// NUCA mesh wire cycles charged on top of bank latency, summed across requests.
    /// Always zero with [`crate::config::NucaConfig::disabled`] (the default).
    pub nuca_cycles: u64,
}

/// Upper bound on LLC associativity: the valid/dirty state of one set is packed into a
/// single `u64` bitmask, so a set holds at most 64 ways (the paper's largest
/// configuration, Figure 7's 32-way LLC, uses half of that).
pub const MAX_WAYS: usize = 64;

/// Bitmask with one bit per way (shared by the LLC and private-cache SoA layouts).
#[inline]
pub(crate) fn way_mask(ways: usize) -> u64 {
    debug_assert!((1..=MAX_WAYS).contains(&ways));
    if ways == MAX_WAYS {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

/// Common interface over the production and reference shared-LLC implementations.
///
/// Implemented by the structure-of-arrays [`SharedLlc`] and by the frozen pre-refactor
/// oracle [`crate::reference::ReferenceLlc`] so bit-identity property tests and
/// benchmarks can drive either uniformly and compare results bit-for-bit (the
/// multi-core driver itself uses the concrete types directly).
pub trait LlcModel {
    /// Demand or prefetch lookup (see [`SharedLlc::access`]).
    fn access(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup;
    /// Fill a demand miss (see [`SharedLlc::fill`]).
    fn fill(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill;
    /// A write-back arriving from a private L2 (see [`SharedLlc::writeback`]).
    fn writeback(&mut self, core_id: usize, block: BlockAddr, now: u64) -> bool;
    /// Reserve an MSHR entry for a miss from `core_id` (see [`SharedLlc::reserve_mshr`]).
    fn reserve_mshr(&mut self, core_id: usize, now: u64, fill_latency: u64) -> u64;
    /// Back-pressure MSHR acquire from `core_id` (see [`SharedLlc::begin_mshr`]).
    fn begin_mshr(&mut self, core_id: usize, now: u64) -> u64;
    /// Complete a back-pressure MSHR acquire (see [`SharedLlc::complete_mshr`]).
    fn complete_mshr(&mut self, completion: u64);
    /// Per-core statistics.
    fn core_stats(&self, core_id: usize) -> &LlcCoreStats;
    /// Whole-cache statistics.
    fn global_stats(&self) -> &LlcGlobalStats;
    /// Per-bank occupancy/stall statistics, indexed by bank.
    fn bank_stats(&self) -> &[BankStats];
    /// Name of the installed replacement policy.
    fn policy_name(&self) -> String;
}

/// The shared last-level cache.
///
/// Line metadata is stored structure-of-arrays: one contiguous `u64` tag array indexed by
/// `set * ways + way`, plus one packed valid bitmask and one packed dirty bitmask per set
/// and a compact `u32` owner array. A lookup therefore scans a single cache-line-sized
/// slice of tags with a branch-free match mask instead of striding over 32-byte line
/// structs, and set/tag extraction uses shifts precomputed from the power-of-two
/// geometry. The policy type parameter defaults to the boxed trait object for
/// compatibility, but the experiment drivers instantiate it with the monomorphized
/// `llc_policies` dispatch enum so per-access policy callbacks compile to direct calls.
pub struct SharedLlc<P: LlcReplacementPolicy = Box<dyn LlcReplacementPolicy>> {
    config: LlcConfig,
    num_sets: usize,
    ways: usize,
    /// Block-address bits selecting the set (`num_sets - 1`).
    set_mask: u64,
    /// Shift dropping the set-index bits from a block address (`log2(num_sets)`).
    set_shift: u32,
    /// True when the bank count is a power of two (mask instead of modulo in `bank_of`).
    banks_pow2: bool,
    /// Line tags, `num_sets * ways`, contiguous per set.
    tags: Vec<u64>,
    /// Per-set valid bitmask (bit `w` = way `w` holds a line).
    valid: Vec<u64>,
    /// Per-set dirty bitmask.
    dirty: Vec<u64>,
    /// Per-set way of the last hit/fill (way prediction). Valid tags are unique within
    /// a set, so confirming the hinted tag yields the same way the full scan would —
    /// a pure shortcut, invisible to results.
    hint: Vec<u8>,
    /// Inserting core per line, `num_sets * ways`.
    owners: Vec<u32>,
    /// Reusable victim-view buffer handed to `choose_victim` — assembled per eviction
    /// without heap allocation (the seed collected a fresh `Vec` per eviction).
    views_buf: Vec<LineView>,
    policy: P,
    banks: BankModel,
    mshr: OccupancyWindow,
    wb_buffer: OccupancyWindow,
    per_core: Vec<LlcCoreStats>,
    global: LlcGlobalStats,
    /// NUCA wire delay per `(core, bank)` pair, `core * banks + bank`; empty when the
    /// mesh model is disabled (the flat default adds exactly zero cycles).
    nuca: Vec<u64>,
    /// MSHR stall cycles attributed per requesting core.
    mshr_core_stalls: Vec<u64>,
    interval_misses: u64,
    misses_in_interval: u64,
}

impl<P: LlcReplacementPolicy> SharedLlc<P> {
    pub fn new(config: LlcConfig, num_cores: usize, interval_misses: u64, policy: P) -> Self {
        let num_sets = config.geometry.num_sets();
        let ways = config.geometry.ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(
            (1..=MAX_WAYS).contains(&ways),
            "associativity must be in 1..={MAX_WAYS}"
        );
        assert!(config.banks > 0, "need at least one bank");
        let nuca = if config.nuca.is_disabled() {
            Vec::new()
        } else {
            let mut table = Vec::with_capacity(num_cores * config.banks);
            for core in 0..num_cores {
                for bank in 0..config.banks {
                    table.push(
                        config.nuca.hop_cycles
                            * crate::config::mesh_hops(core, num_cores, bank, config.banks),
                    );
                }
            }
            table
        };
        SharedLlc {
            num_sets,
            ways,
            set_mask: num_sets as u64 - 1,
            set_shift: num_sets.trailing_zeros(),
            banks_pow2: config.banks.is_power_of_two(),
            tags: vec![0; num_sets * ways],
            valid: vec![0; num_sets],
            dirty: vec![0; num_sets],
            hint: vec![0; num_sets],
            owners: vec![0; num_sets * ways],
            views_buf: Vec::with_capacity(ways),
            policy,
            banks: BankModel::new(config.banks, config.contention),
            mshr: OccupancyWindow::new(config.mshr_entries),
            wb_buffer: OccupancyWindow::new(config.wb_entries),
            per_core: vec![LlcCoreStats::default(); num_cores],
            global: LlcGlobalStats::default(),
            nuca,
            mshr_core_stalls: vec![0; num_cores],
            interval_misses,
            misses_in_interval: 0,
            config,
        }
    }

    /// Geometry helpers.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
    pub fn ways(&self) -> usize {
        self.ways
    }
    pub fn hit_latency(&self) -> u64 {
        self.config.latency
    }

    /// Split a block address into (set, tag) with the precomputed shifts.
    #[inline]
    fn decompose(&self, block: BlockAddr) -> (usize, u64) {
        (
            (block.0 & self.set_mask) as usize,
            block.0 >> self.set_shift,
        )
    }

    /// Build the policy context for an access whose set index is already known. Called
    /// only on paths that actually invoke the policy: prefetch accesses and write-backs
    /// never construct a context.
    #[inline]
    fn ctx_at(
        &self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        set: usize,
        is_demand: bool,
        is_write: bool,
    ) -> AccessContext {
        AccessContext {
            core_id,
            pc,
            block_addr: block.0,
            set_index: set,
            is_demand,
            is_write,
        }
    }

    /// Bank of a set. Power-of-two bank counts (every shipped configuration) use a mask;
    /// other counts fall back to a modulo so sets still spread uniformly over all banks —
    /// the seed's unconditional `set & (banks - 1)` skipped banks entirely for counts
    /// like 3 or 6.
    #[inline]
    fn bank_of(&self, set: usize) -> usize {
        let bank = if self.banks_pow2 {
            set & (self.config.banks - 1)
        } else {
            set % self.config.banks
        };
        debug_assert!(bank < self.config.banks);
        bank
    }

    /// Charge bank occupancy for an access from `core_id` arriving at `now`; returns
    /// the queuing delay (port wait plus any admission stall from a full bank queue)
    /// plus the NUCA wire delay between the core's tile and the bank's tile. Queue
    /// and admission cycles are attributed to `core_id`; NUCA cycles are pure wire
    /// latency and never enter the bank's queue accounting (the flat default table is
    /// empty, keeping this function bit-identical to the seed's arithmetic).
    fn bank_delay(&mut self, core_id: usize, set: usize, now: u64) -> u64 {
        let bank = self.bank_of(set);
        let before = self.banks.stats()[bank].admission_stall_cycles;
        let req = self
            .banks
            .request_from(bank, now, self.config.bank_busy_cycles, core_id);
        let admission = self.banks.stats()[bank].admission_stall_cycles - before;
        self.global.bank_queue_cycles += req.delay - admission;
        self.global.bank_admission_stall_cycles += admission;
        let nuca = if self.nuca.is_empty() {
            0
        } else {
            self.nuca[core_id * self.config.banks + bank]
        };
        self.global.nuca_cycles += nuca;
        req.delay + nuca
    }

    /// Way lookup over the set's contiguous tag slice: iterate the valid bitmask in way
    /// order (lowest way wins, like the original per-way scan), comparing only tags
    /// that hold lines. Invalid ways cost nothing and the first match exits.
    #[inline]
    fn scan_ways(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let mut remaining = self.valid[set];
        while remaining != 0 {
            let w = remaining.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return Some(w);
            }
            remaining &= remaining - 1;
        }
        None
    }

    /// [`SharedLlc::scan_ways`] with the way-prediction shortcut: check the set's last
    /// hit/fill way first. Tags are unique among a set's valid ways, so a hint
    /// confirmation returns exactly what the scan would.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let hint = self.hint[set] as usize;
        let base = set * self.ways;
        if (self.valid[set] >> hint) & 1 == 1 && self.tags[base + hint] == tag {
            return Some(hint);
        }
        self.scan_ways(set, tag)
    }

    /// Demand or prefetch lookup.
    pub fn access(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup {
        let (set, tag) = self.decompose(block);
        if !is_demand {
            // Prefetch path: no policy involvement at all, so no context is built.
            self.per_core[core_id].prefetch_accesses += 1;
            let delay = self.bank_delay(core_id, set, now);
            let latency = self.config.latency + delay;
            return match self.find_way(set, tag) {
                Some(way) => {
                    self.per_core[core_id].prefetch_hits += 1;
                    self.hint[set] = way as u8;
                    if is_write {
                        self.dirty[set] |= 1 << way;
                    }
                    LlcLookup { hit: true, latency }
                }
                None => LlcLookup {
                    hit: false,
                    latency,
                },
            };
        }

        self.per_core[core_id].demand_accesses += 1;
        let ctx = self.ctx_at(core_id, pc, block, set, true, is_write);
        self.policy.on_access(&ctx);

        let delay = self.bank_delay(core_id, set, now);
        let latency = self.config.latency + delay;

        match self.find_way(set, tag) {
            Some(way) => {
                self.per_core[core_id].demand_hits += 1;
                self.hint[set] = way as u8;
                self.policy.on_hit(&ctx, way);
                if is_write {
                    self.dirty[set] |= 1 << way;
                }
                LlcLookup { hit: true, latency }
            }
            None => {
                self.per_core[core_id].demand_misses += 1;
                self.global.total_demand_misses += 1;
                self.misses_in_interval += 1;
                // The very first interval fires at a quarter of the configured length so
                // interval-based policies (ADAPT) leave their cold-start default
                // quickly; subsequent intervals use the full length. At the paper's
                // 300M-instruction scale this is indistinguishable from a fixed
                // interval, at reduced scale it keeps warm-up from dominating the run.
                let threshold = if self.global.intervals_completed == 0 {
                    (self.interval_misses / 4).max(1)
                } else {
                    self.interval_misses
                };
                if self.misses_in_interval >= threshold {
                    self.misses_in_interval = 0;
                    self.global.intervals_completed += 1;
                    self.policy.on_interval();
                }
                LlcLookup {
                    hit: false,
                    latency,
                }
            }
        }
    }

    /// Reserve an MSHR entry for a miss from `core_id` issued at `now` whose fill
    /// completes after `fill_latency` cycles. Returns the extra stall if the MSHRs
    /// were full; the stall is attributed to `core_id`.
    pub fn reserve_mshr(&mut self, core_id: usize, now: u64, fill_latency: u64) -> u64 {
        let (extra, _) = self.mshr.reserve(now, fill_latency);
        self.global.mshr_stall_cycles += extra;
        self.mshr_core_stalls[core_id] += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    /// Back-pressure form of MSHR allocation: wait for a free entry at `now` (returning
    /// the stall) **without** occupying it, so the caller can delay the downstream DRAM
    /// issue by the stall and then record the true completion via
    /// [`SharedLlc::complete_mshr`]. Used when
    /// [`crate::config::BankContentionConfig::mshr_backpressure`] is enabled. The
    /// stall is attributed to `core_id`.
    pub fn begin_mshr(&mut self, core_id: usize, now: u64) -> u64 {
        let extra = self.mshr.acquire(now);
        self.global.mshr_stall_cycles += extra;
        self.mshr_core_stalls[core_id] += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    /// Occupy the MSHR entry acquired by [`SharedLlc::begin_mshr`] until `completion`.
    pub fn complete_mshr(&mut self, completion: u64) {
        self.mshr.insert(completion);
    }

    /// Fill a demand miss. The policy decides between allocation (possibly evicting) and
    /// bypassing. Returns what happened so the caller can issue any required write-back.
    pub fn fill(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill {
        let (set, tag) = self.decompose(block);
        let ctx = self.ctx_at(core_id, pc, block, set, true, is_write);

        // A racing fill may have already inserted the block.
        if self.find_way(set, tag).is_some() {
            return LlcFill {
                bypassed: false,
                evicted: None,
            };
        }

        let decision = self.policy.insertion_decision(&ctx);
        if decision.is_bypass() {
            self.per_core[core_id].bypassed_fills += 1;
            self.policy.on_fill(&ctx, usize::MAX, &decision);
            return LlcFill {
                bypassed: true,
                evicted: None,
            };
        }

        let base = set * self.ways;
        let invalid = !self.valid[set] & way_mask(self.ways);
        let (way, evicted) = if invalid != 0 {
            // Lowest invalid way, matching the original first-invalid scan.
            (invalid.trailing_zeros() as usize, None)
        } else {
            // Victim views are assembled into a reusable buffer: choose_victim gets the
            // same `&[LineView]` it always did, without a per-eviction heap allocation.
            let mut views = std::mem::take(&mut self.views_buf);
            views.clear();
            let dirty_mask = self.dirty[set];
            for w in 0..self.ways {
                views.push(LineView {
                    valid: true,
                    owner: self.owners[base + w] as usize,
                    block_addr: (self.tags[base + w] << self.set_shift) | set as u64,
                    dirty: (dirty_mask >> w) & 1 == 1,
                });
            }
            let w = self.policy.choose_victim(&ctx, &views);
            self.views_buf = views;
            assert!(w < self.ways, "policy returned out-of-range victim way {w}");
            let victim_owner = self.owners[base + w] as usize;
            let victim_dirty = (dirty_mask >> w) & 1 == 1;
            let victim_block = BlockAddr((self.tags[base + w] << self.set_shift) | set as u64);
            self.policy.on_evict(&ctx, victim_block.0, victim_owner);
            self.per_core[victim_owner].lines_evicted += 1;
            if victim_dirty {
                self.global.dirty_evictions += 1;
                let (stall, _) = self.wb_buffer.reserve(now, self.config.latency);
                self.global.wb_stall_cycles += stall;
            }
            (
                w,
                Some(LlcEvicted {
                    block: victim_block,
                    dirty: victim_dirty,
                    owner: victim_owner,
                }),
            )
        };

        self.tags[base + way] = tag;
        self.owners[base + way] = core_id as u32;
        self.valid[set] |= 1 << way;
        self.hint[set] = way as u8;
        if is_write {
            self.dirty[set] |= 1 << way;
        } else {
            self.dirty[set] &= !(1 << way);
        }
        self.policy.on_fill(&ctx, way, &decision);
        LlcFill {
            bypassed: false,
            evicted,
        }
    }

    /// A write-back arriving from a private L2: update the line if present, otherwise the
    /// caller forwards it to memory. Returns true if the LLC absorbed it.
    pub fn writeback(&mut self, core_id: usize, block: BlockAddr, now: u64) -> bool {
        let (set, tag) = self.decompose(block);
        self.per_core[core_id].writebacks_in += 1;
        let _ = self.bank_delay(core_id, set, now);
        if let Some(way) = self.find_way(set, tag) {
            self.hint[set] = way as u8;
            self.dirty[set] |= 1 << way;
            true
        } else {
            false
        }
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core_id: usize) -> &LlcCoreStats {
        &self.per_core[core_id]
    }

    /// All per-core statistics.
    pub fn all_core_stats(&self) -> &[LlcCoreStats] {
        &self.per_core
    }

    /// Whole-cache statistics.
    pub fn global_stats(&self) -> &LlcGlobalStats {
        &self.global
    }

    /// Per-bank occupancy/stall statistics, indexed by bank.
    pub fn bank_stats(&self) -> &[BankStats] {
        self.banks.stats()
    }

    /// Name of the installed replacement policy.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Occupancy (valid lines) per core — used to inspect cache sharing behaviour in tests
    /// and experiments.
    pub fn occupancy_by_core(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.per_core.len()];
        for set in 0..self.num_sets {
            let mut mask = self.valid[set];
            while mask != 0 {
                let w = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                occ[self.owners[set * self.ways + w] as usize] += 1;
            }
        }
        occ
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Bank queue/admission stall cycles attributed per requesting core. Summing the
    /// vector reproduces [`LlcGlobalStats::bank_queue_cycles`] and
    /// [`LlcGlobalStats::bank_admission_stall_cycles`] exactly.
    pub fn bank_core_stalls(&self) -> &[crate::bank::CoreBankStalls] {
        self.banks.core_stalls()
    }

    /// MSHR stall cycles attributed per requesting core. Sums to
    /// [`LlcGlobalStats::mshr_stall_cycles`].
    pub fn mshr_core_stalls(&self) -> &[u64] {
        &self.mshr_core_stalls
    }
}

impl<P: LlcReplacementPolicy> LlcModel for SharedLlc<P> {
    fn access(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup {
        SharedLlc::access(self, core_id, pc, block, is_demand, is_write, now)
    }

    fn fill(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill {
        SharedLlc::fill(self, core_id, pc, block, is_write, now)
    }

    fn writeback(&mut self, core_id: usize, block: BlockAddr, now: u64) -> bool {
        SharedLlc::writeback(self, core_id, block, now)
    }

    fn reserve_mshr(&mut self, core_id: usize, now: u64, fill_latency: u64) -> u64 {
        SharedLlc::reserve_mshr(self, core_id, now, fill_latency)
    }

    fn begin_mshr(&mut self, core_id: usize, now: u64) -> u64 {
        SharedLlc::begin_mshr(self, core_id, now)
    }

    fn complete_mshr(&mut self, completion: u64) {
        SharedLlc::complete_mshr(self, completion)
    }

    fn core_stats(&self, core_id: usize) -> &LlcCoreStats {
        SharedLlc::core_stats(self, core_id)
    }

    fn global_stats(&self) -> &LlcGlobalStats {
        SharedLlc::global_stats(self)
    }

    fn bank_stats(&self) -> &[BankStats] {
        SharedLlc::bank_stats(self)
    }

    fn policy_name(&self) -> String {
        SharedLlc::policy_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;
    use crate::replacement::{InsertionDecision, RrpvArray};

    /// Minimal SRRIP policy used only by these unit tests (the real baselines live in the
    /// `llc-policies` crate, which depends on this one).
    struct TestSrrip {
        rrpv: RrpvArray,
    }

    impl TestSrrip {
        fn new(sets: usize, ways: usize) -> Self {
            TestSrrip {
                rrpv: RrpvArray::new(sets, ways),
            }
        }
    }

    impl LlcReplacementPolicy for TestSrrip {
        fn name(&self) -> String {
            "test-srrip".into()
        }
        fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
            self.rrpv.promote(ctx.set_index, way);
        }
        fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
            InsertionDecision::insert(2)
        }
        fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
            self.rrpv.find_victim(ctx.set_index)
        }
        fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
            if let InsertionDecision::Insert { rrpv } = decision {
                if way != usize::MAX {
                    self.rrpv.set(ctx.set_index, way, *rrpv);
                }
            }
        }
    }

    struct AlwaysBypass;
    impl LlcReplacementPolicy for AlwaysBypass {
        fn name(&self) -> String {
            "bypass".into()
        }
        fn on_hit(&mut self, _ctx: &AccessContext, _way: usize) {}
        fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
            InsertionDecision::Bypass
        }
        fn choose_victim(&mut self, _ctx: &AccessContext, _lines: &[LineView]) -> usize {
            0
        }
        fn on_fill(&mut self, _ctx: &AccessContext, _way: usize, _d: &InsertionDecision) {}
    }

    fn llc_config() -> LlcConfig {
        LlcConfig {
            geometry: CacheGeometry::new(64 * 1024, 16), // 64 sets x 16 ways
            latency: 24,
            banks: 4,
            bank_busy_cycles: 4,
            mshr_entries: 8,
            wb_entries: 8,
            wb_retire_at: 6,
            contention: crate::config::BankContentionConfig::flat(),
            nuca: crate::config::NucaConfig::disabled(),
        }
    }

    fn make_llc() -> SharedLlc {
        let cfg = llc_config();
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        SharedLlc::new(cfg, 2, 100, Box::new(TestSrrip::new(sets, ways)))
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        let l1 = llc.access(0, 0, b, true, false, 0);
        assert!(!l1.hit);
        llc.fill(0, 0, b, false, 0);
        let l2 = llc.access(0, 0, b, true, false, 1000);
        assert!(l2.hit);
        assert_eq!(llc.core_stats(0).demand_hits, 1);
        assert_eq!(llc.core_stats(0).demand_misses, 1);
    }

    #[test]
    fn hit_latency_includes_bank_conflict_delay() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        // Two back-to-back accesses to the same set/bank at the same cycle: the second one
        // queues behind the first's bank busy window.
        let first = llc.access(0, 0, b, true, false, 2000);
        let second = llc.access(1, 0, b, true, false, 2000);
        assert_eq!(first.latency, 24);
        assert_eq!(second.latency, 24 + 4);
    }

    #[test]
    fn eviction_reports_owner_and_dirty_state() {
        let mut llc = make_llc();
        let sets = llc.num_sets() as u64;
        // Fill one set completely with core 0's dirty lines.
        for i in 0..16u64 {
            let b = BlockAddr(i * sets);
            llc.access(0, 0, b, true, true, 0);
            llc.fill(0, 0, b, true, 0);
        }
        // One more block in the same set from core 1 forces an eviction of core 0's line.
        let extra = BlockAddr(16 * sets);
        llc.access(1, 0, extra, true, false, 0);
        let fill = llc.fill(1, 0, extra, false, 0);
        let evicted = fill.evicted.expect("set was full");
        assert_eq!(evicted.owner, 0);
        assert!(evicted.dirty);
        assert_eq!(llc.core_stats(0).lines_evicted, 1);
        assert_eq!(llc.global_stats().dirty_evictions, 1);
    }

    #[test]
    fn bypass_policy_never_allocates() {
        let cfg = llc_config();
        let mut llc = SharedLlc::new(cfg, 1, 100, Box::new(AlwaysBypass));
        for i in 0..100u64 {
            let b = BlockAddr(i);
            llc.access(0, 0, b, true, false, 0);
            let f = llc.fill(0, 0, b, false, 0);
            assert!(f.bypassed);
        }
        assert_eq!(llc.occupancy(), 0);
        assert_eq!(llc.core_stats(0).bypassed_fills, 100);
    }

    #[test]
    fn interval_hook_fires_early_once_then_every_n_demand_misses() {
        let mut llc = make_llc();
        // interval_misses = 100 in make_llc: the first interval fires after 25 misses
        // (quarter-length warm-up), subsequent ones every 100 misses.
        for i in 0..250u64 {
            let b = BlockAddr(i * 997);
            let l = llc.access(0, 0, b, true, false, 0);
            if !l.hit {
                llc.fill(0, 0, b, false, 0);
            }
        }
        let misses = llc.global_stats().total_demand_misses;
        let expected = if misses >= 25 {
            1 + (misses - 25) / 100
        } else {
            0
        };
        assert_eq!(llc.global_stats().intervals_completed, expected);
    }

    #[test]
    fn prefetch_accesses_do_not_count_as_demand() {
        let mut llc = make_llc();
        let b = BlockAddr(5);
        llc.access(0, 0, b, false, false, 0);
        assert_eq!(llc.core_stats(0).prefetch_accesses, 1);
        assert_eq!(llc.core_stats(0).demand_accesses, 0);
        assert_eq!(llc.global_stats().total_demand_misses, 0);
    }

    #[test]
    fn writeback_updates_present_line_and_reports_absent_line() {
        let mut llc = make_llc();
        let b = BlockAddr(9);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        assert!(llc.writeback(0, b, 10));
        assert!(!llc.writeback(0, BlockAddr(12345), 10));
        assert_eq!(llc.core_stats(0).writebacks_in, 2);
    }

    #[test]
    fn occupancy_by_core_tracks_ownership() {
        let mut llc = make_llc();
        for i in 0..10u64 {
            let b = BlockAddr(i);
            llc.access(0, 0, b, true, false, 0);
            llc.fill(0, 0, b, false, 0);
        }
        for i in 100..105u64 {
            let b = BlockAddr(i);
            llc.access(1, 0, b, true, false, 0);
            llc.fill(1, 0, b, false, 0);
        }
        let occ = llc.occupancy_by_core();
        assert_eq!(occ[0], 10);
        assert_eq!(occ[1], 5);
        assert_eq!(llc.occupancy(), 15);
    }

    #[test]
    fn duplicate_fill_is_a_no_op() {
        let mut llc = make_llc();
        let b = BlockAddr(77);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        let again = llc.fill(0, 0, b, false, 0);
        assert!(!again.bypassed);
        assert!(again.evicted.is_none());
        assert_eq!(llc.occupancy(), 1);
    }

    #[test]
    fn contended_banks_absorb_parallelism_and_bound_queues() {
        // Two ports: two same-cycle accesses to one bank both see the bare hit latency;
        // the flat model would queue the second one.
        let mut cfg = llc_config();
        cfg.contention = crate::config::BankContentionConfig::contended(2, 4);
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        let mut llc = SharedLlc::new(cfg, 2, 100, Box::new(TestSrrip::new(sets, ways)));
        let b = BlockAddr(0x42);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        let first = llc.access(0, 0, b, true, false, 2000);
        let second = llc.access(1, 0, b, true, false, 2000);
        assert_eq!(first.latency, 24);
        assert_eq!(
            second.latency, 24,
            "second port absorbs the concurrent access"
        );
        // A burst deeper than ports + queue depth triggers admission stalls.
        for _ in 0..10 {
            llc.access(0, 0, b, true, false, 3000);
        }
        assert!(llc.global_stats().bank_admission_stall_cycles > 0);
        let bank = b.set_index(llc.num_sets()) & 3;
        assert!(llc.bank_stats()[bank].stall_share() > 0.0);
    }

    #[test]
    fn flat_contention_never_stalls_admission() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        for _ in 0..100 {
            llc.access(0, 0, b, true, false, 0);
        }
        assert_eq!(llc.global_stats().bank_admission_stall_cycles, 0);
        assert!(llc.global_stats().bank_queue_cycles > 0);
        let total_requests: u64 = llc.bank_stats().iter().map(|s| s.requests).sum();
        assert_eq!(total_requests, 100);
    }

    #[test]
    fn backpressure_mshr_accounts_like_reserve() {
        let mut llc = make_llc();
        let mut two_phase = make_llc();
        for now in [0u64, 0, 0, 0, 0, 0, 0, 0, 5, 10] {
            let a = llc.reserve_mshr(0, now, 1000);
            let b = two_phase.begin_mshr(0, now);
            two_phase.complete_mshr(now + b + 1000);
            assert_eq!(a, b);
        }
        assert_eq!(
            llc.global_stats().mshr_stall_cycles,
            two_phase.global_stats().mshr_stall_cycles
        );
        assert_eq!(
            llc.global_stats().mshr_full_events,
            two_phase.global_stats().mshr_full_events
        );
    }

    #[test]
    fn non_pow2_bank_counts_map_all_banks_uniformly() {
        // The seed's `set & (banks - 1)` skipped banks entirely for non-power-of-two
        // counts (banks = 3 would never touch bank 1); the modulo fallback must spread
        // sets across every bank, off by at most one request.
        let mut cfg = llc_config();
        cfg.banks = 3;
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        let mut llc = SharedLlc::new(cfg, 1, 100, Box::new(TestSrrip::new(sets, ways)));
        for s in 0..sets as u64 {
            llc.access(0, 0, BlockAddr(s), true, false, 0);
        }
        let per_bank: Vec<u64> = llc.bank_stats().iter().map(|b| b.requests).collect();
        assert_eq!(per_bank.len(), 3);
        assert_eq!(per_bank.iter().sum::<u64>(), sets as u64);
        assert!(per_bank.iter().all(|&r| r > 0), "a bank saw no requests");
        let max = per_bank.iter().max().unwrap();
        let min = per_bank.iter().min().unwrap();
        assert!(max - min <= 1, "non-uniform bank mapping: {per_bank:?}");
    }

    #[test]
    fn mshr_pressure_adds_stall() {
        let mut llc = make_llc();
        let mut total_extra = 0;
        for _ in 0..10 {
            total_extra += llc.reserve_mshr(0, 0, 1000);
        }
        assert!(
            total_extra > 0,
            "9th/10th reservations should stall on an 8-entry MSHR"
        );
        assert!(llc.global_stats().mshr_full_events > 0);
        // All of it was charged to core 0, none elsewhere.
        assert_eq!(llc.mshr_core_stalls()[0], total_extra);
        assert_eq!(llc.mshr_core_stalls()[1], 0);
        assert_eq!(
            llc.mshr_core_stalls().iter().sum::<u64>(),
            llc.global_stats().mshr_stall_cycles
        );
    }

    #[test]
    fn ninety_six_banks_map_uniformly_and_account_peak_waiting() {
        // Regression for non-power-of-two bank counts >= 96: the modulo fallback must
        // spread sets over all 96 banks, and `peak_waiting` must reflect the true
        // instantaneous queue population on whichever bank the burst lands on.
        let mut cfg = llc_config();
        cfg.banks = 96;
        // 1024 sets so every one of the 96 banks owns 10 or 11 sets (the default
        // 64-set test geometry would leave banks 64..95 without any sets at all).
        cfg.geometry = CacheGeometry::new(1024 * 1024, 16);
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        let mut llc = SharedLlc::new(cfg, 1, 100, Box::new(TestSrrip::new(sets, ways)));
        for pass in 0..3u64 {
            for s in 0..sets as u64 {
                llc.access(0, 0, BlockAddr(s), true, false, pass * 100_000);
            }
        }
        let per_bank: Vec<u64> = llc.bank_stats().iter().map(|b| b.requests).collect();
        assert_eq!(per_bank.len(), 96);
        assert_eq!(per_bank.iter().sum::<u64>(), 3 * sets as u64);
        let max = per_bank.iter().max().unwrap();
        let min = per_bank.iter().min().unwrap();
        assert!(*min > 0, "a bank saw no requests: {per_bank:?}");
        assert!(max - min <= 3, "non-uniform 96-bank mapping: {per_bank:?}");

        // Direct peak accounting at 96 banks: k same-cycle requests to one bank leave
        // k-1 of them simultaneously waiting.
        let mut m = BankModel::new(96, crate::config::BankContentionConfig::flat());
        for _ in 0..7 {
            m.request(95, 0, 10);
        }
        assert_eq!(m.stats()[95].peak_waiting, 6);
        assert!(m.stats()[..95].iter().all(|s| s.peak_waiting == 0));
    }

    #[test]
    fn nuca_adds_distance_dependent_latency_without_touching_queues() {
        let mut cfg = llc_config();
        cfg.nuca = crate::config::NucaConfig::mesh(3);
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        let cores = 16;
        let mut llc = SharedLlc::new(cfg, cores, 100, Box::new(TestSrrip::new(sets, ways)));
        let mut flat = make_llc();
        // Single isolated access per (core, set): latency differs from the flat model
        // by exactly hop_cycles * mesh_hops, and bank queue accounting is untouched.
        let mut any_distance = false;
        for core in 0..2 {
            for set in 0..4u64 {
                let now = 1_000_000 * (core as u64 * 4 + set + 1);
                let block = BlockAddr(set);
                let got = llc.access(core, 0, block, true, false, now);
                let base = flat.access(core.min(1), 0, block, true, false, now);
                let hops = crate::config::mesh_hops(core, cores, set as usize & 3, 4);
                assert_eq!(got.latency, base.latency + 3 * hops);
                any_distance |= hops > 0;
            }
        }
        assert!(any_distance, "test must cover a nonzero-distance pair");
        assert_eq!(llc.global_stats().bank_queue_cycles, 0);
        assert!(llc.global_stats().nuca_cycles > 0);
    }
}
