//! Shared, banked last-level cache with a pluggable replacement policy.
//!
//! The LLC owns tags, valid/dirty bits and per-core statistics; all replacement state lives
//! in the policy (see [`crate::replacement`]). Timing: a fixed hit latency plus the
//! cycle-accounted bank contention model of [`crate::bank`] (paper §4.1: "We model
//! bank-conflicts, but with fixed latency for all banks" — the default flat configuration
//! reproduces exactly that, while contended configurations add finite service ports and
//! bounded per-bank queues); MSHR and write-back buffer occupancy is modeled with
//! [`crate::mshr::OccupancyWindow`].
//!
//! Simplifications relative to BADCO (documented in DESIGN.md):
//! * prefetch misses do not allocate in the LLC (demand misses do); prefetch hits do not
//!   update recency state — this directly implements the paper's rule that only demand
//!   accesses update recency,
//! * write-backs arriving from a private L2 update a present line's dirty bit or are
//!   forwarded to memory if absent; they never allocate.

use crate::addr::BlockAddr;
use crate::bank::{BankModel, BankStats};
use crate::config::LlcConfig;
use crate::mshr::OccupancyWindow;
use crate::replacement::{AccessContext, LineView, LlcReplacementPolicy};

/// Outcome of an LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcLookup {
    pub hit: bool,
    /// LLC-side latency (hit latency + bank queuing), charged on hits and misses alike.
    pub latency: u64,
}

/// A line evicted by an LLC fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcEvicted {
    pub block: BlockAddr,
    pub dirty: bool,
    pub owner: usize,
}

/// Outcome of an LLC fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcFill {
    /// True if the policy chose to bypass the LLC (the line was not allocated).
    pub bypassed: bool,
    pub evicted: Option<LlcEvicted>,
}

/// Per-core LLC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcCoreStats {
    pub demand_accesses: u64,
    pub demand_hits: u64,
    pub demand_misses: u64,
    /// Demand fills the policy chose not to allocate.
    pub bypassed_fills: u64,
    pub prefetch_accesses: u64,
    pub prefetch_hits: u64,
    /// Write-backs received from this core's L2.
    pub writebacks_in: u64,
    /// Lines belonging to this core evicted from the LLC.
    pub lines_evicted: u64,
}

/// Whole-LLC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcGlobalStats {
    pub total_demand_misses: u64,
    pub intervals_completed: u64,
    /// Cycles requests spent waiting for a bank (admitted, port busy), summed.
    pub bank_queue_cycles: u64,
    /// Cycles requests spent stalled because a bank's finite queue was full
    /// (back-pressure; always zero under the flat contention model).
    pub bank_admission_stall_cycles: u64,
    pub dirty_evictions: u64,
    pub mshr_stall_cycles: u64,
    pub mshr_full_events: u64,
    pub wb_stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    owner: usize,
}

/// The shared last-level cache.
pub struct SharedLlc {
    config: LlcConfig,
    num_sets: usize,
    ways: usize,
    lines: Vec<Line>,
    policy: Box<dyn LlcReplacementPolicy>,
    banks: BankModel,
    mshr: OccupancyWindow,
    wb_buffer: OccupancyWindow,
    per_core: Vec<LlcCoreStats>,
    global: LlcGlobalStats,
    interval_misses: u64,
    misses_in_interval: u64,
}

impl SharedLlc {
    pub fn new(
        config: LlcConfig,
        num_cores: usize,
        interval_misses: u64,
        policy: Box<dyn LlcReplacementPolicy>,
    ) -> Self {
        let num_sets = config.geometry.num_sets();
        let ways = config.geometry.ways;
        SharedLlc {
            num_sets,
            ways,
            lines: vec![Line::default(); num_sets * ways],
            policy,
            banks: BankModel::new(config.banks, config.contention),
            mshr: OccupancyWindow::new(config.mshr_entries),
            wb_buffer: OccupancyWindow::new(config.wb_entries),
            per_core: vec![LlcCoreStats::default(); num_cores],
            global: LlcGlobalStats::default(),
            interval_misses,
            misses_in_interval: 0,
            config,
        }
    }

    /// Geometry helpers.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
    pub fn ways(&self) -> usize {
        self.ways
    }
    pub fn hit_latency(&self) -> u64 {
        self.config.latency
    }

    fn ctx(
        &self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
    ) -> AccessContext {
        AccessContext {
            core_id,
            pc,
            block_addr: block.0,
            set_index: block.set_index(self.num_sets),
            is_demand,
            is_write,
        }
    }

    fn bank_of(&self, set: usize) -> usize {
        set & (self.config.banks - 1)
    }

    /// Charge bank occupancy for an access arriving at `now`; returns the queuing delay
    /// (port wait plus any admission stall from a full bank queue).
    fn bank_delay(&mut self, set: usize, now: u64) -> u64 {
        let bank = self.bank_of(set);
        let before = self.banks.stats()[bank].admission_stall_cycles;
        let req = self.banks.request(bank, now, self.config.bank_busy_cycles);
        let admission = self.banks.stats()[bank].admission_stall_cycles - before;
        self.global.bank_queue_cycles += req.delay - admission;
        self.global.bank_admission_stall_cycles += admission;
        req.delay
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Demand or prefetch lookup.
    pub fn access(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_demand: bool,
        is_write: bool,
        now: u64,
    ) -> LlcLookup {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        let ctx = self.ctx(core_id, pc, block, is_demand, is_write);
        let stats = &mut self.per_core[core_id];
        if is_demand {
            stats.demand_accesses += 1;
        } else {
            stats.prefetch_accesses += 1;
        }

        if is_demand {
            self.policy.on_access(&ctx);
        }

        let delay = self.bank_delay(set, now);
        let latency = self.config.latency + delay;

        match self.find_way(set, tag) {
            Some(way) => {
                let stats = &mut self.per_core[core_id];
                if is_demand {
                    stats.demand_hits += 1;
                    self.policy.on_hit(&ctx, way);
                } else {
                    stats.prefetch_hits += 1;
                }
                if is_write {
                    self.lines[set * self.ways + way].dirty = true;
                }
                LlcLookup { hit: true, latency }
            }
            None => {
                if is_demand {
                    let stats = &mut self.per_core[core_id];
                    stats.demand_misses += 1;
                    self.global.total_demand_misses += 1;
                    self.misses_in_interval += 1;
                    // The very first interval fires at a quarter of the configured length so
                    // interval-based policies (ADAPT) leave their cold-start default
                    // quickly; subsequent intervals use the full length. At the paper's
                    // 300M-instruction scale this is indistinguishable from a fixed
                    // interval, at reduced scale it keeps warm-up from dominating the run.
                    let threshold = if self.global.intervals_completed == 0 {
                        (self.interval_misses / 4).max(1)
                    } else {
                        self.interval_misses
                    };
                    if self.misses_in_interval >= threshold {
                        self.misses_in_interval = 0;
                        self.global.intervals_completed += 1;
                        self.policy.on_interval();
                    }
                }
                LlcLookup {
                    hit: false,
                    latency,
                }
            }
        }
    }

    /// Reserve an MSHR entry for a miss issued at `now` whose fill completes after
    /// `fill_latency` cycles. Returns the extra stall if the MSHRs were full.
    pub fn reserve_mshr(&mut self, now: u64, fill_latency: u64) -> u64 {
        let (extra, _) = self.mshr.reserve(now, fill_latency);
        self.global.mshr_stall_cycles += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    /// Back-pressure form of MSHR allocation: wait for a free entry at `now` (returning
    /// the stall) **without** occupying it, so the caller can delay the downstream DRAM
    /// issue by the stall and then record the true completion via
    /// [`SharedLlc::complete_mshr`]. Used when
    /// [`crate::config::BankContentionConfig::mshr_backpressure`] is enabled.
    pub fn begin_mshr(&mut self, now: u64) -> u64 {
        let extra = self.mshr.acquire(now);
        self.global.mshr_stall_cycles += extra;
        if extra > 0 {
            self.global.mshr_full_events += 1;
        }
        extra
    }

    /// Occupy the MSHR entry acquired by [`SharedLlc::begin_mshr`] until `completion`.
    pub fn complete_mshr(&mut self, completion: u64) {
        self.mshr.insert(completion);
    }

    /// Fill a demand miss. The policy decides between allocation (possibly evicting) and
    /// bypassing. Returns what happened so the caller can issue any required write-back.
    pub fn fill(
        &mut self,
        core_id: usize,
        pc: u64,
        block: BlockAddr,
        is_write: bool,
        now: u64,
    ) -> LlcFill {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        let ctx = self.ctx(core_id, pc, block, true, is_write);

        // A racing fill may have already inserted the block.
        if self.find_way(set, tag).is_some() {
            return LlcFill {
                bypassed: false,
                evicted: None,
            };
        }

        let decision = self.policy.insertion_decision(&ctx);
        if decision.is_bypass() {
            self.per_core[core_id].bypassed_fills += 1;
            self.policy.on_fill(&ctx, usize::MAX, &decision);
            return LlcFill {
                bypassed: true,
                evicted: None,
            };
        }

        let base = set * self.ways;
        let invalid_way = (0..self.ways).find(|&w| !self.lines[base + w].valid);
        let (way, evicted) = match invalid_way {
            Some(w) => (w, None),
            None => {
                let views: Vec<LineView> = (0..self.ways)
                    .map(|w| {
                        let l = &self.lines[base + w];
                        LineView {
                            valid: l.valid,
                            owner: l.owner,
                            block_addr: (l.tag << self.num_sets.trailing_zeros()) | set as u64,
                            dirty: l.dirty,
                        }
                    })
                    .collect();
                let w = self.policy.choose_victim(&ctx, &views);
                assert!(w < self.ways, "policy returned out-of-range victim way {w}");
                let victim = self.lines[base + w];
                let victim_block =
                    BlockAddr((victim.tag << self.num_sets.trailing_zeros()) | set as u64);
                self.policy.on_evict(&ctx, victim_block.0, victim.owner);
                self.per_core[victim.owner].lines_evicted += 1;
                if victim.dirty {
                    self.global.dirty_evictions += 1;
                    let (stall, _) = self.wb_buffer.reserve(now, self.config.latency);
                    self.global.wb_stall_cycles += stall;
                }
                (
                    w,
                    Some(LlcEvicted {
                        block: victim_block,
                        dirty: victim.dirty,
                        owner: victim.owner,
                    }),
                )
            }
        };

        self.lines[base + way] = Line {
            valid: true,
            tag,
            dirty: is_write,
            owner: core_id,
        };
        self.policy.on_fill(&ctx, way, &decision);
        LlcFill {
            bypassed: false,
            evicted,
        }
    }

    /// A write-back arriving from a private L2: update the line if present, otherwise the
    /// caller forwards it to memory. Returns true if the LLC absorbed it.
    pub fn writeback(&mut self, core_id: usize, block: BlockAddr, now: u64) -> bool {
        let set = block.set_index(self.num_sets);
        let tag = block.tag(self.num_sets);
        self.per_core[core_id].writebacks_in += 1;
        let _ = self.bank_delay(set, now);
        if let Some(way) = self.find_way(set, tag) {
            self.lines[set * self.ways + way].dirty = true;
            true
        } else {
            false
        }
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core_id: usize) -> &LlcCoreStats {
        &self.per_core[core_id]
    }

    /// All per-core statistics.
    pub fn all_core_stats(&self) -> &[LlcCoreStats] {
        &self.per_core
    }

    /// Whole-cache statistics.
    pub fn global_stats(&self) -> &LlcGlobalStats {
        &self.global
    }

    /// Per-bank occupancy/stall statistics, indexed by bank.
    pub fn bank_stats(&self) -> &[BankStats] {
        self.banks.stats()
    }

    /// Name of the installed replacement policy.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Occupancy (valid lines) per core — used to inspect cache sharing behaviour in tests
    /// and experiments.
    pub fn occupancy_by_core(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.per_core.len()];
        for l in &self.lines {
            if l.valid {
                occ[l.owner] += 1;
            }
        }
        occ
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;
    use crate::replacement::{InsertionDecision, RrpvArray};

    /// Minimal SRRIP policy used only by these unit tests (the real baselines live in the
    /// `llc-policies` crate, which depends on this one).
    struct TestSrrip {
        rrpv: RrpvArray,
    }

    impl TestSrrip {
        fn new(sets: usize, ways: usize) -> Self {
            TestSrrip {
                rrpv: RrpvArray::new(sets, ways),
            }
        }
    }

    impl LlcReplacementPolicy for TestSrrip {
        fn name(&self) -> String {
            "test-srrip".into()
        }
        fn on_hit(&mut self, ctx: &AccessContext, way: usize) {
            self.rrpv.promote(ctx.set_index, way);
        }
        fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
            InsertionDecision::insert(2)
        }
        fn choose_victim(&mut self, ctx: &AccessContext, _lines: &[LineView]) -> usize {
            self.rrpv.find_victim(ctx.set_index)
        }
        fn on_fill(&mut self, ctx: &AccessContext, way: usize, decision: &InsertionDecision) {
            if let InsertionDecision::Insert { rrpv } = decision {
                if way != usize::MAX {
                    self.rrpv.set(ctx.set_index, way, *rrpv);
                }
            }
        }
    }

    struct AlwaysBypass;
    impl LlcReplacementPolicy for AlwaysBypass {
        fn name(&self) -> String {
            "bypass".into()
        }
        fn on_hit(&mut self, _ctx: &AccessContext, _way: usize) {}
        fn insertion_decision(&mut self, _ctx: &AccessContext) -> InsertionDecision {
            InsertionDecision::Bypass
        }
        fn choose_victim(&mut self, _ctx: &AccessContext, _lines: &[LineView]) -> usize {
            0
        }
        fn on_fill(&mut self, _ctx: &AccessContext, _way: usize, _d: &InsertionDecision) {}
    }

    fn llc_config() -> LlcConfig {
        LlcConfig {
            geometry: CacheGeometry::new(64 * 1024, 16), // 64 sets x 16 ways
            latency: 24,
            banks: 4,
            bank_busy_cycles: 4,
            mshr_entries: 8,
            wb_entries: 8,
            wb_retire_at: 6,
            contention: crate::config::BankContentionConfig::flat(),
        }
    }

    fn make_llc() -> SharedLlc {
        let cfg = llc_config();
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        SharedLlc::new(cfg, 2, 100, Box::new(TestSrrip::new(sets, ways)))
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        let l1 = llc.access(0, 0, b, true, false, 0);
        assert!(!l1.hit);
        llc.fill(0, 0, b, false, 0);
        let l2 = llc.access(0, 0, b, true, false, 1000);
        assert!(l2.hit);
        assert_eq!(llc.core_stats(0).demand_hits, 1);
        assert_eq!(llc.core_stats(0).demand_misses, 1);
    }

    #[test]
    fn hit_latency_includes_bank_conflict_delay() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        // Two back-to-back accesses to the same set/bank at the same cycle: the second one
        // queues behind the first's bank busy window.
        let first = llc.access(0, 0, b, true, false, 2000);
        let second = llc.access(1, 0, b, true, false, 2000);
        assert_eq!(first.latency, 24);
        assert_eq!(second.latency, 24 + 4);
    }

    #[test]
    fn eviction_reports_owner_and_dirty_state() {
        let mut llc = make_llc();
        let sets = llc.num_sets() as u64;
        // Fill one set completely with core 0's dirty lines.
        for i in 0..16u64 {
            let b = BlockAddr(i * sets);
            llc.access(0, 0, b, true, true, 0);
            llc.fill(0, 0, b, true, 0);
        }
        // One more block in the same set from core 1 forces an eviction of core 0's line.
        let extra = BlockAddr(16 * sets);
        llc.access(1, 0, extra, true, false, 0);
        let fill = llc.fill(1, 0, extra, false, 0);
        let evicted = fill.evicted.expect("set was full");
        assert_eq!(evicted.owner, 0);
        assert!(evicted.dirty);
        assert_eq!(llc.core_stats(0).lines_evicted, 1);
        assert_eq!(llc.global_stats().dirty_evictions, 1);
    }

    #[test]
    fn bypass_policy_never_allocates() {
        let cfg = llc_config();
        let mut llc = SharedLlc::new(cfg, 1, 100, Box::new(AlwaysBypass));
        for i in 0..100u64 {
            let b = BlockAddr(i);
            llc.access(0, 0, b, true, false, 0);
            let f = llc.fill(0, 0, b, false, 0);
            assert!(f.bypassed);
        }
        assert_eq!(llc.occupancy(), 0);
        assert_eq!(llc.core_stats(0).bypassed_fills, 100);
    }

    #[test]
    fn interval_hook_fires_early_once_then_every_n_demand_misses() {
        let mut llc = make_llc();
        // interval_misses = 100 in make_llc: the first interval fires after 25 misses
        // (quarter-length warm-up), subsequent ones every 100 misses.
        for i in 0..250u64 {
            let b = BlockAddr(i * 997);
            let l = llc.access(0, 0, b, true, false, 0);
            if !l.hit {
                llc.fill(0, 0, b, false, 0);
            }
        }
        let misses = llc.global_stats().total_demand_misses;
        let expected = if misses >= 25 {
            1 + (misses - 25) / 100
        } else {
            0
        };
        assert_eq!(llc.global_stats().intervals_completed, expected);
    }

    #[test]
    fn prefetch_accesses_do_not_count_as_demand() {
        let mut llc = make_llc();
        let b = BlockAddr(5);
        llc.access(0, 0, b, false, false, 0);
        assert_eq!(llc.core_stats(0).prefetch_accesses, 1);
        assert_eq!(llc.core_stats(0).demand_accesses, 0);
        assert_eq!(llc.global_stats().total_demand_misses, 0);
    }

    #[test]
    fn writeback_updates_present_line_and_reports_absent_line() {
        let mut llc = make_llc();
        let b = BlockAddr(9);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        assert!(llc.writeback(0, b, 10));
        assert!(!llc.writeback(0, BlockAddr(12345), 10));
        assert_eq!(llc.core_stats(0).writebacks_in, 2);
    }

    #[test]
    fn occupancy_by_core_tracks_ownership() {
        let mut llc = make_llc();
        for i in 0..10u64 {
            let b = BlockAddr(i);
            llc.access(0, 0, b, true, false, 0);
            llc.fill(0, 0, b, false, 0);
        }
        for i in 100..105u64 {
            let b = BlockAddr(i);
            llc.access(1, 0, b, true, false, 0);
            llc.fill(1, 0, b, false, 0);
        }
        let occ = llc.occupancy_by_core();
        assert_eq!(occ[0], 10);
        assert_eq!(occ[1], 5);
        assert_eq!(llc.occupancy(), 15);
    }

    #[test]
    fn duplicate_fill_is_a_no_op() {
        let mut llc = make_llc();
        let b = BlockAddr(77);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        let again = llc.fill(0, 0, b, false, 0);
        assert!(!again.bypassed);
        assert!(again.evicted.is_none());
        assert_eq!(llc.occupancy(), 1);
    }

    #[test]
    fn contended_banks_absorb_parallelism_and_bound_queues() {
        // Two ports: two same-cycle accesses to one bank both see the bare hit latency;
        // the flat model would queue the second one.
        let mut cfg = llc_config();
        cfg.contention = crate::config::BankContentionConfig::contended(2, 4);
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways;
        let mut llc = SharedLlc::new(cfg, 2, 100, Box::new(TestSrrip::new(sets, ways)));
        let b = BlockAddr(0x42);
        llc.access(0, 0, b, true, false, 0);
        llc.fill(0, 0, b, false, 0);
        let first = llc.access(0, 0, b, true, false, 2000);
        let second = llc.access(1, 0, b, true, false, 2000);
        assert_eq!(first.latency, 24);
        assert_eq!(
            second.latency, 24,
            "second port absorbs the concurrent access"
        );
        // A burst deeper than ports + queue depth triggers admission stalls.
        for _ in 0..10 {
            llc.access(0, 0, b, true, false, 3000);
        }
        assert!(llc.global_stats().bank_admission_stall_cycles > 0);
        let bank = b.set_index(llc.num_sets()) & 3;
        assert!(llc.bank_stats()[bank].stall_share() > 0.0);
    }

    #[test]
    fn flat_contention_never_stalls_admission() {
        let mut llc = make_llc();
        let b = BlockAddr(0x42);
        for _ in 0..100 {
            llc.access(0, 0, b, true, false, 0);
        }
        assert_eq!(llc.global_stats().bank_admission_stall_cycles, 0);
        assert!(llc.global_stats().bank_queue_cycles > 0);
        let total_requests: u64 = llc.bank_stats().iter().map(|s| s.requests).sum();
        assert_eq!(total_requests, 100);
    }

    #[test]
    fn backpressure_mshr_accounts_like_reserve() {
        let mut llc = make_llc();
        let mut two_phase = make_llc();
        for now in [0u64, 0, 0, 0, 0, 0, 0, 0, 5, 10] {
            let a = llc.reserve_mshr(now, 1000);
            let b = two_phase.begin_mshr(now);
            two_phase.complete_mshr(now + b + 1000);
            assert_eq!(a, b);
        }
        assert_eq!(
            llc.global_stats().mshr_stall_cycles,
            two_phase.global_stats().mshr_stall_cycles
        );
        assert_eq!(
            llc.global_stats().mshr_full_events,
            two_phase.global_stats().mshr_full_events
        );
    }

    #[test]
    fn mshr_pressure_adds_stall() {
        let mut llc = make_llc();
        let mut total_extra = 0;
        for _ in 0..10 {
            total_extra += llc.reserve_mshr(0, 1000);
        }
        assert!(
            total_extra > 0,
            "9th/10th reservations should stall on an 8-entry MSHR"
        );
        assert!(llc.global_stats().mshr_full_events > 0);
    }
}
