//! Miss-status-holding-register (MSHR) and write-back buffer occupancy models.
//!
//! The paper's LLC has 256 MSHR entries and a 128-entry retire-at-96 write-back buffer
//! (Table 3). We model these as occupancy windows: each outstanding miss occupies an entry
//! until its fill completes; when all entries are occupied, a new miss stalls until the
//! earliest outstanding fill retires. The write-back buffer absorbs dirty evictions and
//! drains them to DRAM in the background once the retire threshold is crossed, so
//! write-backs cost DRAM bandwidth but do not stall the requesting core unless the buffer
//! is full.

/// Occupancy tracker used for both MSHRs and write-back buffers.
///
/// Entries are completion timestamps; the structure is tiny (<= a few hundred entries) so a
/// linear scan with lazy pruning is faster than a heap in practice.
#[derive(Debug, Clone)]
pub struct OccupancyWindow {
    capacity: usize,
    completions: Vec<u64>,
    /// Total cycles requests were delayed because the window was full.
    pub stall_cycles: u64,
    /// Number of requests that found the window full.
    pub full_events: u64,
    /// Peak simultaneous occupancy observed.
    pub peak_occupancy: usize,
}

impl OccupancyWindow {
    pub fn new(capacity: usize) -> Self {
        OccupancyWindow {
            capacity: capacity.max(1),
            completions: Vec::with_capacity(capacity.max(1)),
            stall_cycles: 0,
            full_events: 0,
            peak_occupancy: 0,
        }
    }

    /// Remove entries that completed at or before `now`.
    fn prune(&mut self, now: u64) {
        self.completions.retain(|&c| c > now);
    }

    /// Current number of outstanding entries at time `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.prune(now);
        self.completions.len()
    }

    /// Wait for a free entry at time `now` **without** occupying one yet. Returns the
    /// stall incurred if the window was full (0 otherwise). Pair with
    /// [`OccupancyWindow::insert`] once the request's completion time is known — this
    /// two-phase form is what lets a full MSHR back-pressure the *issue* of the
    /// downstream access instead of only taxing the requester after the fact.
    pub fn acquire(&mut self, now: u64) -> u64 {
        self.prune(now);
        let mut extra = 0;
        if self.completions.len() >= self.capacity {
            // Stall until the earliest outstanding entry retires.
            let earliest = *self.completions.iter().min().expect("non-empty when full");
            extra = earliest.saturating_sub(now);
            self.full_events += 1;
            self.stall_cycles += extra;
            self.prune(earliest);
        }
        extra
    }

    /// Occupy an entry until `completion`. Must follow an [`OccupancyWindow::acquire`]
    /// (or be issued when occupancy is known to be below capacity).
    pub fn insert(&mut self, completion: u64) {
        self.completions.push(completion);
        self.peak_occupancy = self.peak_occupancy.max(self.completions.len());
    }

    /// Reserve an entry for a request issued at `now` that will complete at
    /// `now + latency`. Returns the extra delay incurred if the window was full, and the
    /// adjusted completion time.
    pub fn reserve(&mut self, now: u64, latency: u64) -> (u64, u64) {
        let extra = self.acquire(now);
        let completion = now + extra + latency;
        self.insert(completion);
        (extra, completion)
    }

    /// Capacity of the window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_without_pressure_adds_no_delay() {
        let mut w = OccupancyWindow::new(4);
        let (extra, done) = w.reserve(100, 50);
        assert_eq!(extra, 0);
        assert_eq!(done, 150);
        assert_eq!(w.occupancy(100), 1);
        assert_eq!(w.occupancy(150), 0);
    }

    #[test]
    fn full_window_stalls_until_earliest_retires() {
        let mut w = OccupancyWindow::new(2);
        w.reserve(0, 100); // completes at 100
        w.reserve(0, 200); // completes at 200
        let (extra, done) = w.reserve(10, 50);
        assert_eq!(extra, 90); // waits until cycle 100
        assert_eq!(done, 150);
        assert_eq!(w.full_events, 1);
        assert_eq!(w.stall_cycles, 90);
    }

    #[test]
    fn completed_entries_are_pruned() {
        let mut w = OccupancyWindow::new(2);
        w.reserve(0, 10);
        w.reserve(0, 10);
        // At time 20 both have retired; a new reservation must not stall.
        let (extra, _) = w.reserve(20, 10);
        assert_eq!(extra, 0);
    }

    #[test]
    fn peak_occupancy_is_tracked() {
        let mut w = OccupancyWindow::new(8);
        for _ in 0..5 {
            w.reserve(0, 1000);
        }
        assert_eq!(w.peak_occupancy, 5);
    }

    #[test]
    fn two_phase_acquire_insert_matches_reserve() {
        // acquire+insert must account stalls exactly like the one-shot reserve path.
        let mut a = OccupancyWindow::new(2);
        let mut b = OccupancyWindow::new(2);
        for (now, latency) in [(0, 100), (0, 200), (10, 50), (120, 30), (125, 5)] {
            let (extra_a, done_a) = a.reserve(now, latency);
            let extra_b = b.acquire(now);
            let done_b = now + extra_b + latency;
            b.insert(done_b);
            assert_eq!(extra_a, extra_b);
            assert_eq!(done_a, done_b);
        }
        assert_eq!(a.stall_cycles, b.stall_cycles);
        assert_eq!(a.full_events, b.full_events);
        assert_eq!(a.peak_occupancy, b.peak_occupancy);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut w = OccupancyWindow::new(0);
        assert_eq!(w.capacity(), 1);
        let (extra0, _) = w.reserve(0, 10);
        let (extra1, _) = w.reserve(0, 10);
        assert_eq!(extra0, 0);
        assert_eq!(extra1, 10);
    }
}
