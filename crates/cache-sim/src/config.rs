//! Simulator configuration.
//!
//! [`SystemConfig::paper_baseline`] reproduces the paper's Table 3 parameters. Because the
//! paper simulates 300M instructions per application on a 16 MB LLC — several CPU-hours per
//! workload mix on a software simulator — [`SystemConfig::scaled`] provides a proportionally
//! scaled configuration (same associativity, same core count, smaller set counts and shorter
//! traces) that preserves the `#cores >= #llc_ways` regime the paper studies, and
//! [`SystemConfig::tiny`] an even smaller one for unit tests and Criterion benches.

use serde::{Deserialize, Serialize};

use crate::addr::BLOCK_BYTES;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Line size in bytes. All levels use 64 B.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Create a geometry; panics if the parameters do not describe a power-of-two set count.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        let g = CacheGeometry {
            size_bytes,
            ways,
            line_bytes: BLOCK_BYTES,
        };
        assert!(
            g.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        g
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }

    /// Number of cache lines (blocks) the cache can hold.
    pub fn num_blocks(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }
}

/// Configuration of a private cache level (L1D or L2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivateCacheConfig {
    pub geometry: CacheGeometry,
    /// Access (hit) latency in cycles.
    pub latency: u64,
    /// Replacement policy used by this private level.
    pub policy: PrivatePolicyKind,
}

/// Built-in replacement policies available to private cache levels.
///
/// The shared LLC uses the pluggable [`crate::replacement::LlcReplacementPolicy`] trait
/// instead; private levels are not the object of study so a compact built-in set suffices
/// (the paper's Table 3 uses LRU at L1 and DRRIP at L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivatePolicyKind {
    Lru,
    Srrip,
    /// Set-dueling DRRIP (single-threaded, as the level is private).
    Drrip,
}

/// Configuration of the shared last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcConfig {
    pub geometry: CacheGeometry,
    /// Access (hit) latency in cycles (paper: 24).
    pub latency: u64,
    /// Number of banks (paper: 4, fixed latency, bank conflicts modeled).
    pub banks: usize,
    /// Cycles a bank stays busy per access (serialization window for conflict modeling).
    pub bank_busy_cycles: u64,
    /// Number of MSHR entries (paper: 256).
    pub mshr_entries: usize,
    /// Number of write-back buffer entries (paper: 128, retire-at-96).
    pub wb_entries: usize,
    /// Write-back buffer retirement threshold.
    pub wb_retire_at: usize,
}

/// DDR2-style memory model configuration (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency of an access that hits the open row (paper: 180 cycles).
    pub row_hit_cycles: u64,
    /// Latency of an access that conflicts with the open row (paper: 340 cycles).
    pub row_conflict_cycles: u64,
    /// Number of DRAM banks (paper: 8).
    pub banks: usize,
    /// Row (page) size in bytes (paper: 4 KB).
    pub row_bytes: u64,
    /// Use permutation-based (XOR-mapped) page interleaving (paper cites Zhang et al.).
    pub xor_mapping: bool,
    /// Cycles a bank is busy per request (bandwidth / serialization model).
    pub bank_busy_cycles: u64,
}

/// Approximate out-of-order core model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue/retire width in instructions per cycle (paper: 4-way OoO).
    pub issue_width: u64,
    /// Reorder-buffer size (paper: 128). Bounds how much latency can be hidden.
    pub rob_size: u64,
    /// Memory-level-parallelism overlap factor applied to off-core miss latency.
    ///
    /// BADCO models a full OoO core where independent misses overlap inside the ROB; we
    /// approximate this by dividing exposed miss latency by this factor. See DESIGN.md §4.
    pub mlp_overlap: f64,
    /// Latency of an L1 hit in cycles (effectively hidden by the pipeline when 1).
    pub l1_hit_cycles: u64,
}

/// Full multi-core system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    pub num_cores: usize,
    pub core: CoreConfig,
    pub l1d: PrivateCacheConfig,
    pub l2: PrivateCacheConfig,
    pub llc: LlcConfig,
    pub dram: DramConfig,
    /// Enable the next-line L1 prefetcher (paper Table 3: "next-line prefetch").
    pub l1_next_line_prefetch: bool,
    /// Footprint/interval boundary, in LLC misses, after which
    /// [`crate::replacement::LlcReplacementPolicy::on_interval`] fires (paper: 1M misses).
    pub interval_misses: u64,
}

impl SystemConfig {
    /// The paper's Table 3 baseline, parameterized by core count.
    ///
    /// 32 KB 8-way L1D (LRU, next-line prefetch), 256 KB 16-way L2 (DRRIP, 14 cycles),
    /// 16 MB 16-way shared LLC (24 cycles, 4 banks, 256 MSHRs, 128-entry WB buffer),
    /// DDR2 with 180/340-cycle row hit/conflict, 8 banks, 4 KB rows, XOR mapping.
    pub fn paper_baseline(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            core: CoreConfig {
                issue_width: 4,
                rob_size: 128,
                mlp_overlap: 2.0,
                l1_hit_cycles: 1,
            },
            l1d: PrivateCacheConfig {
                geometry: CacheGeometry::new(32 * 1024, 8),
                latency: 1,
                policy: PrivatePolicyKind::Lru,
            },
            l2: PrivateCacheConfig {
                geometry: CacheGeometry::new(256 * 1024, 16),
                latency: 14,
                policy: PrivatePolicyKind::Drrip,
            },
            llc: LlcConfig {
                geometry: CacheGeometry::new(16 * 1024 * 1024, 16),
                latency: 24,
                banks: 4,
                bank_busy_cycles: 4,
                mshr_entries: 256,
                wb_entries: 128,
                wb_retire_at: 96,
            },
            dram: DramConfig {
                row_hit_cycles: 180,
                row_conflict_cycles: 340,
                banks: 8,
                row_bytes: 4096,
                xor_mapping: true,
                bank_busy_cycles: 16,
            },
            l1_next_line_prefetch: true,
            interval_misses: 1_000_000,
        }
    }

    /// Paper baseline with a different LLC capacity/associativity (Figure 7 sensitivity:
    /// 24 MB/24-way and 32 MB/32-way keep the set count constant and grow associativity).
    pub fn paper_with_llc(num_cores: usize, llc_bytes: u64, llc_ways: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.llc.geometry = CacheGeometry::new(llc_bytes, llc_ways);
        cfg
    }

    /// Proportionally scaled-down configuration used by the default experiment runs.
    ///
    /// Keeps the paper's associativities (so `#cores >= #llc_ways` still holds at 16+ cores)
    /// and latencies, but shrinks set counts ~16x so a workload mix simulates in seconds.
    /// The footprint interval is scaled to twice the number of LLC blocks, mirroring the
    /// paper's choice of an interval roughly 4x the block count of a 16-way 16 MB cache
    /// shared by 16 cores.
    pub fn scaled(num_cores: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.l1d.geometry = CacheGeometry::new(8 * 1024, 8);
        cfg.l2.geometry = CacheGeometry::new(32 * 1024, 16);
        cfg.llc.geometry = CacheGeometry::new(512 * 1024, 16);
        // Long enough that a thrashing application accumulates >= associativity unique
        // blocks per monitored set within one interval (the property the paper's 1M-miss
        // interval provides at full scale), short enough that several intervals complete in
        // a scaled-down run.
        cfg.interval_misses = (cfg.llc.geometry.num_blocks() as u64) * 24;
        cfg
    }

    /// Scaled configuration with an alternative LLC (scaled analogue of Figure 7).
    pub fn scaled_with_llc(num_cores: usize, llc_bytes: u64, llc_ways: usize) -> Self {
        let mut cfg = Self::scaled(num_cores);
        cfg.llc.geometry = CacheGeometry::new(llc_bytes, llc_ways);
        cfg.interval_misses = (cfg.llc.geometry.num_blocks() as u64) * 24;
        cfg
    }

    /// Very small configuration for unit tests and micro-benchmarks.
    pub fn tiny(num_cores: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.l1d.geometry = CacheGeometry::new(2 * 1024, 4);
        cfg.l2.geometry = CacheGeometry::new(8 * 1024, 8);
        cfg.llc.geometry = CacheGeometry::new(64 * 1024, 16);
        cfg.interval_misses = 2048;
        cfg
    }

    /// Sanity-check internal consistency; returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be > 0".into());
        }
        if self.llc.banks == 0 || !self.llc.banks.is_power_of_two() {
            return Err("LLC bank count must be a power of two".into());
        }
        if self.dram.banks == 0 || !self.dram.banks.is_power_of_two() {
            return Err("DRAM bank count must be a power of two".into());
        }
        if self.interval_misses == 0 {
            return Err("interval_misses must be > 0".into());
        }
        if self.core.issue_width == 0 {
            return Err("issue width must be > 0".into());
        }
        if self.core.mlp_overlap < 1.0 {
            return Err("mlp_overlap must be >= 1.0".into());
        }
        for (name, g) in [
            ("L1D", self.l1d.geometry),
            ("L2", self.l2.geometry),
            ("LLC", self.llc.geometry),
        ] {
            if g.ways == 0 || g.num_sets() == 0 {
                return Err(format!("{name} geometry degenerate"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table3() {
        let cfg = SystemConfig::paper_baseline(16);
        assert_eq!(cfg.l1d.geometry.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.geometry.ways, 8);
        assert_eq!(cfg.l2.geometry.size_bytes, 256 * 1024);
        assert_eq!(cfg.l2.geometry.ways, 16);
        assert_eq!(cfg.l2.latency, 14);
        assert_eq!(cfg.llc.geometry.size_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.llc.geometry.ways, 16);
        assert_eq!(cfg.llc.latency, 24);
        assert_eq!(cfg.llc.banks, 4);
        assert_eq!(cfg.llc.mshr_entries, 256);
        assert_eq!(cfg.dram.row_hit_cycles, 180);
        assert_eq!(cfg.dram.row_conflict_cycles, 340);
        assert_eq!(cfg.dram.banks, 8);
        assert_eq!(cfg.dram.row_bytes, 4096);
        assert_eq!(cfg.interval_misses, 1_000_000);
        assert_eq!(cfg.core.issue_width, 4);
        assert_eq!(cfg.core.rob_size, 128);
        cfg.validate().unwrap();
    }

    #[test]
    fn paper_llc_has_16k_sets() {
        let cfg = SystemConfig::paper_baseline(16);
        assert_eq!(cfg.llc.geometry.num_sets(), 16 * 1024);
        assert_eq!(cfg.llc.geometry.num_blocks(), 256 * 1024);
    }

    #[test]
    fn figure7_llc_variants_grow_associativity() {
        let c24 = SystemConfig::paper_with_llc(20, 24 * 1024 * 1024, 24);
        let c32 = SystemConfig::paper_with_llc(24, 32 * 1024 * 1024, 32);
        assert_eq!(c24.llc.geometry.ways, 24);
        assert_eq!(c32.llc.geometry.ways, 32);
        // Set count stays at the 16 MB/16-way baseline's 16K sets.
        assert_eq!(c24.llc.geometry.num_sets(), 16 * 1024);
        assert_eq!(c32.llc.geometry.num_sets(), 16 * 1024);
    }

    #[test]
    fn scaled_keeps_associativity_and_validates() {
        for n in [4, 8, 16, 20, 24] {
            let cfg = SystemConfig::scaled(n);
            assert_eq!(cfg.llc.geometry.ways, 16);
            assert_eq!(cfg.l2.geometry.ways, 16);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn tiny_validates() {
        SystemConfig::tiny(2).validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SystemConfig::tiny(2);
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.interval_misses = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.core.mlp_overlap = 0.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.llc.banks = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn geometry_counts_are_consistent() {
        let g = CacheGeometry::new(16 * 1024 * 1024, 16);
        assert_eq!(g.num_blocks(), g.num_sets() * g.ways);
    }
}
