//! Simulator configuration.
//!
//! [`SystemConfig::paper_baseline`] reproduces the paper's Table 3 parameters. Because the
//! paper simulates 300M instructions per application on a 16 MB LLC — several CPU-hours per
//! workload mix on a software simulator — [`SystemConfig::scaled`] provides a proportionally
//! scaled configuration (same associativity, same core count, smaller set counts and shorter
//! traces) that preserves the `#cores >= #llc_ways` regime the paper studies, and
//! [`SystemConfig::tiny`] an even smaller one for unit tests and Criterion benches.

use serde::{Deserialize, Serialize};

use crate::addr::BLOCK_BYTES;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Line size in bytes. All levels use 64 B.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Create a geometry; panics if the parameters do not describe a power-of-two set count.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        let g = CacheGeometry {
            size_bytes,
            ways,
            line_bytes: BLOCK_BYTES,
        };
        assert!(
            g.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        g
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }

    /// Number of cache lines (blocks) the cache can hold.
    pub fn num_blocks(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Geometry from an explicit set count; panics unless `sets` is a power of two.
    pub fn with_sets(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            size_bytes: sets as u64 * ways as u64 * BLOCK_BYTES,
            ways,
            line_bytes: BLOCK_BYTES,
        }
    }

    /// Core-count-generic geometry: `per_core_bytes` of capacity per core at the given
    /// associativity, with the set count rounded **up** to the nearest power of two so
    /// any core count (including non-powers-of-two like 48) yields a valid geometry.
    pub fn per_core(num_cores: usize, per_core_bytes: u64, ways: usize) -> Self {
        let target_bytes = per_core_bytes * num_cores as u64;
        let sets = (target_bytes / (BLOCK_BYTES * ways as u64)).max(1) as usize;
        Self::with_sets(sets.next_power_of_two(), ways)
    }
}

/// Cycle-accounting contention model for a group of banks (see [`crate::bank`]).
///
/// The default ([`BankContentionConfig::flat`]) is one service port with an unbounded
/// queue, which is algebraically identical to the seed's latency-only `busy_until`
/// banking — zero-contention configurations therefore reproduce the flat-latency model
/// exactly (regression-tested in `crate::bank` and `crate::llc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankContentionConfig {
    /// Parallel service ports per bank (>= 1). One port serializes every request.
    pub ports: usize,
    /// Waiting-request slots per bank; `0` means unbounded (no admission stalls).
    pub queue_depth: usize,
    /// When true, a full MSHR delays the *issue* of the DRAM access itself
    /// (back-pressure) instead of only charging the stall to the requesting core after
    /// the access has already been timed. Only meaningful on the LLC's configuration.
    pub mshr_backpressure: bool,
}

impl BankContentionConfig {
    /// The seed behaviour: one port, unbounded queue, no MSHR back-pressure.
    pub fn flat() -> Self {
        BankContentionConfig {
            ports: 1,
            queue_depth: 0,
            mshr_backpressure: false,
        }
    }

    /// Contended banks: `ports` parallel ports, a finite `queue_depth`-entry queue and
    /// MSHR back-pressure enabled.
    pub fn contended(ports: usize, queue_depth: usize) -> Self {
        BankContentionConfig {
            ports,
            queue_depth,
            mshr_backpressure: true,
        }
    }

    /// True when this configuration reproduces the seed's flat-latency model.
    pub fn is_flat(&self) -> bool {
        *self == Self::flat()
    }
}

impl Default for BankContentionConfig {
    fn default() -> Self {
        Self::flat()
    }
}

/// Row-buffer scheduling model for DRAM banks (see [`crate::bank`]).
///
/// When enabled, each DRAM bank keeps a row register and the bank model schedules
/// requests FR-FCFS style: requests to the open row are served with the row-hit
/// latency ahead of queued requests to other rows (each such pass increments the
/// queued request's bypass count), a request to a closed row pays the row-miss
/// latency, and a request that must close another row pays the row-conflict
/// latency. Once any queued request has been bypassed [`RowModelConfig::starvation_cap`]
/// times the bank reverts to oldest-first: later arrivals lose their row-hit
/// priority (they are charged the conflict latency, since the aged request will
/// have changed the row by the time they are served) until the aged request starts.
///
/// The default is **disabled**, which leaves the bank model's arithmetic bit-identical
/// to the seed's FCFS banking (regression-tested in `crate::bank` and `crate::dram`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowModelConfig {
    /// Enable row-buffer-aware FR-FCFS scheduling in the DRAM bank model.
    pub enabled: bool,
    /// Latency of a request that hits the bank's open row.
    pub row_hit_cycles: u64,
    /// Latency of a request to a bank whose row buffer is closed (activate only).
    pub row_miss_cycles: u64,
    /// Latency of a request that must precharge another row first.
    pub row_conflict_cycles: u64,
    /// Close the row buffer after every access (closed-page policy): every request
    /// is then a row miss, trading hit locality for conflict immunity.
    pub closed_page: bool,
    /// Maximum times a queued request may be bypassed by row hits before the bank
    /// reverts to oldest-first arbitration (>= 1 when enabled).
    pub starvation_cap: u32,
}

impl RowModelConfig {
    /// The seed behaviour: no row model in the bank scheduler (the legacy open-row
    /// register in [`crate::dram`] still provides hit/conflict latencies).
    pub fn disabled() -> Self {
        RowModelConfig {
            enabled: false,
            row_hit_cycles: 180,
            row_miss_cycles: 260,
            row_conflict_cycles: 340,
            closed_page: false,
            starvation_cap: 4,
        }
    }

    /// FR-FCFS open-page scheduling with explicit latency classes and starvation cap.
    pub fn frfcfs(
        row_hit_cycles: u64,
        row_miss_cycles: u64,
        row_conflict_cycles: u64,
        starvation_cap: u32,
    ) -> Self {
        RowModelConfig {
            enabled: true,
            row_hit_cycles,
            row_miss_cycles,
            row_conflict_cycles,
            closed_page: false,
            starvation_cap,
        }
    }
}

impl Default for RowModelConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// NUCA (non-uniform cache access) wire-latency model for the shared LLC.
///
/// Cores and LLC banks sit on the smallest square mesh holding the core count
/// (see [`mesh_side`]); a request pays [`NucaConfig::hop_cycles`] per Manhattan hop
/// between the requesting core's tile and the bank's tile ([`mesh_hops`]). The
/// default of 0 hop cycles disables the model and adds exactly zero latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NucaConfig {
    /// Cycles added per mesh hop between requester tile and bank tile; 0 disables.
    pub hop_cycles: u64,
}

impl NucaConfig {
    /// The seed behaviour: distance-independent (uniform) bank latency.
    pub fn disabled() -> Self {
        NucaConfig { hop_cycles: 0 }
    }

    /// Mesh NUCA with the given per-hop wire latency.
    pub fn mesh(hop_cycles: u64) -> Self {
        NucaConfig { hop_cycles }
    }

    /// True when this configuration adds no distance-dependent latency.
    pub fn is_disabled(&self) -> bool {
        self.hop_cycles == 0
    }
}

/// Side of the smallest square mesh that holds `tiles` tiles.
pub fn mesh_side(tiles: usize) -> usize {
    let mut side = 1usize;
    while side * side < tiles {
        side += 1;
    }
    side
}

/// Manhattan hop distance between core `core` and LLC bank `bank`.
///
/// Cores occupy tiles `0..num_cores` of a [`mesh_side`]`(num_cores)`-wide mesh in
/// row-major order; the banks are spread evenly across the same tiles
/// (bank `b` sits at tile `b * num_cores / num_banks`), so distances are a pure
/// deterministic function of the topology.
pub fn mesh_hops(core: usize, num_cores: usize, bank: usize, num_banks: usize) -> u64 {
    let cores = num_cores.max(1);
    let side = mesh_side(cores);
    let banks = num_banks.max(1);
    let bank_tile = bank % banks * cores / banks;
    let (cx, cy) = (core % side, core / side);
    let (bx, by) = (bank_tile % side, bank_tile / side);
    (cx.abs_diff(bx) + cy.abs_diff(by)) as u64
}

/// Configuration of a private cache level (L1D or L2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivateCacheConfig {
    pub geometry: CacheGeometry,
    /// Access (hit) latency in cycles.
    pub latency: u64,
    /// Replacement policy used by this private level.
    pub policy: PrivatePolicyKind,
}

/// Built-in replacement policies available to private cache levels.
///
/// The shared LLC uses the pluggable [`crate::replacement::LlcReplacementPolicy`] trait
/// instead; private levels are not the object of study so a compact built-in set suffices
/// (the paper's Table 3 uses LRU at L1 and DRRIP at L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivatePolicyKind {
    Lru,
    Srrip,
    /// Set-dueling DRRIP (single-threaded, as the level is private).
    Drrip,
}

/// Configuration of the shared last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcConfig {
    pub geometry: CacheGeometry,
    /// Access (hit) latency in cycles (paper: 24).
    pub latency: u64,
    /// Number of banks (paper: 4, fixed latency, bank conflicts modeled).
    pub banks: usize,
    /// Cycles a bank stays busy per access (serialization window for conflict modeling).
    pub bank_busy_cycles: u64,
    /// Number of MSHR entries (paper: 256).
    pub mshr_entries: usize,
    /// Number of write-back buffer entries (paper: 128, retire-at-96).
    pub wb_entries: usize,
    /// Write-back buffer retirement threshold.
    pub wb_retire_at: usize,
    /// Cycle-accounted bank contention model (ports, queue depth, MSHR back-pressure).
    /// Defaults to [`BankContentionConfig::flat`], the seed's latency-only banking.
    pub contention: BankContentionConfig,
    /// NUCA mesh wire-latency model; [`NucaConfig::disabled`] (0 hop cycles) keeps the
    /// seed's uniform bank latency.
    pub nuca: NucaConfig,
}

/// DDR2-style memory model configuration (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency of an access that hits the open row (paper: 180 cycles).
    pub row_hit_cycles: u64,
    /// Latency of an access that conflicts with the open row (paper: 340 cycles).
    pub row_conflict_cycles: u64,
    /// Number of DRAM banks (paper: 8).
    pub banks: usize,
    /// Row (page) size in bytes (paper: 4 KB).
    pub row_bytes: u64,
    /// Use permutation-based (XOR-mapped) page interleaving (paper cites Zhang et al.).
    pub xor_mapping: bool,
    /// Cycles a bank is busy per request (bandwidth / serialization model).
    pub bank_busy_cycles: u64,
    /// Cycle-accounted bank contention model. `mshr_backpressure` is ignored here (the
    /// MSHRs belong to the LLC); defaults to the seed's flat banking.
    pub contention: BankContentionConfig,
    /// Row-buffer-aware FR-FCFS bank scheduling; [`RowModelConfig::disabled`] (the
    /// default) keeps the seed's FCFS banking and legacy open-row latency classes.
    pub row_model: RowModelConfig,
}

/// Approximate out-of-order core model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue/retire width in instructions per cycle (paper: 4-way OoO).
    pub issue_width: u64,
    /// Reorder-buffer size (paper: 128). Bounds how much latency can be hidden.
    pub rob_size: u64,
    /// Memory-level-parallelism overlap factor applied to off-core miss latency.
    ///
    /// BADCO models a full OoO core where independent misses overlap inside the ROB; we
    /// approximate this by dividing exposed miss latency by this factor. See DESIGN.md §4.
    pub mlp_overlap: f64,
    /// Latency of an L1 hit in cycles (effectively hidden by the pipeline when 1).
    pub l1_hit_cycles: u64,
}

/// Full multi-core system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    pub num_cores: usize,
    pub core: CoreConfig,
    pub l1d: PrivateCacheConfig,
    pub l2: PrivateCacheConfig,
    pub llc: LlcConfig,
    pub dram: DramConfig,
    /// Enable the next-line L1 prefetcher (paper Table 3: "next-line prefetch").
    pub l1_next_line_prefetch: bool,
    /// Footprint/interval boundary, in LLC misses, after which
    /// [`crate::replacement::LlcReplacementPolicy::on_interval`] fires (paper: 1M misses).
    pub interval_misses: u64,
}

impl SystemConfig {
    /// The paper's Table 3 baseline, parameterized by core count.
    ///
    /// 32 KB 8-way L1D (LRU, next-line prefetch), 256 KB 16-way L2 (DRRIP, 14 cycles),
    /// 16 MB 16-way shared LLC (24 cycles, 4 banks, 256 MSHRs, 128-entry WB buffer),
    /// DDR2 with 180/340-cycle row hit/conflict, 8 banks, 4 KB rows, XOR mapping.
    pub fn paper_baseline(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            core: CoreConfig {
                issue_width: 4,
                rob_size: 128,
                mlp_overlap: 2.0,
                l1_hit_cycles: 1,
            },
            l1d: PrivateCacheConfig {
                geometry: CacheGeometry::new(32 * 1024, 8),
                latency: 1,
                policy: PrivatePolicyKind::Lru,
            },
            l2: PrivateCacheConfig {
                geometry: CacheGeometry::new(256 * 1024, 16),
                latency: 14,
                policy: PrivatePolicyKind::Drrip,
            },
            llc: LlcConfig {
                geometry: CacheGeometry::new(16 * 1024 * 1024, 16),
                latency: 24,
                banks: 4,
                bank_busy_cycles: 4,
                mshr_entries: 256,
                wb_entries: 128,
                wb_retire_at: 96,
                contention: BankContentionConfig::flat(),
                nuca: NucaConfig::disabled(),
            },
            dram: DramConfig {
                row_hit_cycles: 180,
                row_conflict_cycles: 340,
                banks: 8,
                row_bytes: 4096,
                xor_mapping: true,
                bank_busy_cycles: 16,
                contention: BankContentionConfig::flat(),
                row_model: RowModelConfig::disabled(),
            },
            l1_next_line_prefetch: true,
            interval_misses: 1_000_000,
        }
    }

    /// Paper baseline with a different LLC capacity/associativity (Figure 7 sensitivity:
    /// 24 MB/24-way and 32 MB/32-way keep the set count constant and grow associativity).
    pub fn paper_with_llc(num_cores: usize, llc_bytes: u64, llc_ways: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.llc.geometry = CacheGeometry::new(llc_bytes, llc_ways);
        cfg
    }

    /// Proportionally scaled-down configuration used by the default experiment runs.
    ///
    /// Keeps the paper's associativities (so `#cores >= #llc_ways` still holds at 16+ cores)
    /// and latencies, but shrinks set counts ~16x so a workload mix simulates in seconds.
    /// The footprint interval is scaled to twice the number of LLC blocks, mirroring the
    /// paper's choice of an interval roughly 4x the block count of a 16-way 16 MB cache
    /// shared by 16 cores.
    pub fn scaled(num_cores: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.l1d.geometry = CacheGeometry::new(8 * 1024, 8);
        cfg.l2.geometry = CacheGeometry::new(32 * 1024, 16);
        cfg.llc.geometry = CacheGeometry::new(512 * 1024, 16);
        // Long enough that a thrashing application accumulates >= associativity unique
        // blocks per monitored set within one interval (the property the paper's 1M-miss
        // interval provides at full scale), short enough that several intervals complete in
        // a scaled-down run.
        cfg.interval_misses = (cfg.llc.geometry.num_blocks() as u64) * 24;
        cfg
    }

    /// Scaled configuration with an alternative LLC (scaled analogue of Figure 7).
    pub fn scaled_with_llc(num_cores: usize, llc_bytes: u64, llc_ways: usize) -> Self {
        let mut cfg = Self::scaled(num_cores);
        cfg.llc.geometry = CacheGeometry::new(llc_bytes, llc_ways);
        cfg.interval_misses = (cfg.llc.geometry.num_blocks() as u64) * 24;
        cfg
    }

    /// Number of LLC banks for a core-count-generic many-core system: one bank per
    /// eight cores, rounded up to a power of two, clamped to `[4, 32]` (the paper's
    /// 16-core machine uses 4 banks).
    pub fn many_core_llc_banks(num_cores: usize) -> usize {
        (num_cores / 8).next_power_of_two().clamp(4, 32)
    }

    /// Number of DRAM banks for a many-core system: one per two cores, rounded up to a
    /// power of two, clamped to `[8, 64]` (the paper's 16-core machine uses 8 banks).
    pub fn many_core_dram_banks(num_cores: usize) -> usize {
        (num_cores / 2).next_power_of_two().clamp(8, 64)
    }

    /// Apply the core-count-generic many-core shape to `self`: per-core LLC capacity
    /// (set count rounded up to a power of two, so 48-core systems work), bank counts,
    /// MSHR/write-back capacities and DRAM banks scaled with the core count, and the
    /// cycle-accounted contention model enabled (2 ports, 16-entry queues per bank,
    /// MSHR back-pressure).
    fn make_many_core(mut self, per_core_llc_bytes: u64) -> Self {
        let n = self.num_cores;
        self.llc.geometry = CacheGeometry::per_core(n, per_core_llc_bytes, 16);
        self.llc.banks = Self::many_core_llc_banks(n);
        self.llc.mshr_entries = 16 * n;
        self.llc.wb_entries = 8 * n;
        self.llc.wb_retire_at = 6 * n;
        self.llc.contention = BankContentionConfig::contended(2, 16);
        self.dram.banks = Self::many_core_dram_banks(n);
        self.dram.contention = BankContentionConfig::contended(2, 16);
        self
    }

    /// Paper-shaped many-core configuration for the scaling study beyond the paper's
    /// 24 cores: the Table 3 hierarchy with the paper's 1 MB-per-core LLC provisioning
    /// (16 MB / 16 cores), contended banks and scaled MSHR/bank counts.
    pub fn paper_many_core(num_cores: usize) -> Self {
        Self::paper_baseline(num_cores).make_many_core(1024 * 1024)
    }

    /// Scaled-down many-core configuration (the default for `repro scale`): same shape
    /// as [`SystemConfig::paper_many_core`] on the [`SystemConfig::scaled`] hierarchy,
    /// 32 KB of LLC per core (512 KB / 16 cores, matching `scaled()`).
    pub fn scaled_many_core(num_cores: usize) -> Self {
        let mut cfg = Self::scaled(num_cores).make_many_core(32 * 1024);
        cfg.interval_misses = (cfg.llc.geometry.num_blocks() as u64) * 24;
        cfg
    }

    /// Enable the realistic memory system on `self`: FR-FCFS row-buffer scheduling in
    /// the DRAM banks (row-hit latency from the DDR2 table, row-miss halfway between
    /// hit and conflict, conflict from the table, starvation cap of 4) and mesh NUCA
    /// with the given per-hop wire latency on the LLC banks. With `hop_cycles == 0`
    /// only the row model is enabled.
    pub fn with_frfcfs_nuca(mut self, hop_cycles: u64) -> Self {
        let hit = self.dram.row_hit_cycles;
        let conflict = self.dram.row_conflict_cycles;
        self.dram.row_model = RowModelConfig::frfcfs(hit, (hit + conflict) / 2, conflict, 4);
        self.llc.nuca = NucaConfig::mesh(hop_cycles);
        self
    }

    /// NUCA wire delay in cycles for a request from `core` to LLC bank `bank` under
    /// this configuration's mesh topology (0 when NUCA is disabled).
    pub fn nuca_delay(&self, core: usize, bank: usize) -> u64 {
        self.llc.nuca.hop_cycles * mesh_hops(core, self.num_cores, bank, self.llc.banks)
    }

    /// Very small configuration for unit tests and micro-benchmarks.
    pub fn tiny(num_cores: usize) -> Self {
        let mut cfg = Self::paper_baseline(num_cores);
        cfg.l1d.geometry = CacheGeometry::new(2 * 1024, 4);
        cfg.l2.geometry = CacheGeometry::new(8 * 1024, 8);
        cfg.llc.geometry = CacheGeometry::new(64 * 1024, 16);
        cfg.interval_misses = 2048;
        cfg
    }

    /// Sanity-check internal consistency; returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be > 0".into());
        }
        if self.llc.banks == 0 || !self.llc.banks.is_power_of_two() {
            return Err("LLC bank count must be a power of two".into());
        }
        if self.dram.banks == 0 || !self.dram.banks.is_power_of_two() {
            return Err("DRAM bank count must be a power of two".into());
        }
        if self.llc.contention.ports == 0 || self.dram.contention.ports == 0 {
            return Err("bank contention models need at least one service port".into());
        }
        if self.dram.row_model.enabled {
            let rm = self.dram.row_model;
            if rm.row_hit_cycles == 0 {
                return Err("row model row_hit_cycles must be > 0".into());
            }
            if !(rm.row_hit_cycles <= rm.row_miss_cycles
                && rm.row_miss_cycles <= rm.row_conflict_cycles)
            {
                return Err("row model latencies must satisfy hit <= miss <= conflict".into());
            }
            if rm.starvation_cap == 0 {
                return Err("row model starvation_cap must be >= 1".into());
            }
        }
        if self.interval_misses == 0 {
            return Err("interval_misses must be > 0".into());
        }
        if self.core.issue_width == 0 {
            return Err("issue width must be > 0".into());
        }
        if self.core.mlp_overlap < 1.0 {
            return Err("mlp_overlap must be >= 1.0".into());
        }
        for (name, g) in [
            ("L1D", self.l1d.geometry),
            ("L2", self.l2.geometry),
            ("LLC", self.llc.geometry),
        ] {
            if g.ways == 0 || g.num_sets() == 0 {
                return Err(format!("{name} geometry degenerate"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table3() {
        let cfg = SystemConfig::paper_baseline(16);
        assert_eq!(cfg.l1d.geometry.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.geometry.ways, 8);
        assert_eq!(cfg.l2.geometry.size_bytes, 256 * 1024);
        assert_eq!(cfg.l2.geometry.ways, 16);
        assert_eq!(cfg.l2.latency, 14);
        assert_eq!(cfg.llc.geometry.size_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.llc.geometry.ways, 16);
        assert_eq!(cfg.llc.latency, 24);
        assert_eq!(cfg.llc.banks, 4);
        assert_eq!(cfg.llc.mshr_entries, 256);
        assert_eq!(cfg.dram.row_hit_cycles, 180);
        assert_eq!(cfg.dram.row_conflict_cycles, 340);
        assert_eq!(cfg.dram.banks, 8);
        assert_eq!(cfg.dram.row_bytes, 4096);
        assert_eq!(cfg.interval_misses, 1_000_000);
        assert_eq!(cfg.core.issue_width, 4);
        assert_eq!(cfg.core.rob_size, 128);
        cfg.validate().unwrap();
    }

    #[test]
    fn paper_llc_has_16k_sets() {
        let cfg = SystemConfig::paper_baseline(16);
        assert_eq!(cfg.llc.geometry.num_sets(), 16 * 1024);
        assert_eq!(cfg.llc.geometry.num_blocks(), 256 * 1024);
    }

    #[test]
    fn figure7_llc_variants_grow_associativity() {
        let c24 = SystemConfig::paper_with_llc(20, 24 * 1024 * 1024, 24);
        let c32 = SystemConfig::paper_with_llc(24, 32 * 1024 * 1024, 32);
        assert_eq!(c24.llc.geometry.ways, 24);
        assert_eq!(c32.llc.geometry.ways, 32);
        // Set count stays at the 16 MB/16-way baseline's 16K sets.
        assert_eq!(c24.llc.geometry.num_sets(), 16 * 1024);
        assert_eq!(c32.llc.geometry.num_sets(), 16 * 1024);
    }

    #[test]
    fn mesh_hops_are_symmetric_bounded_and_zero_on_self() {
        // Core 0 to bank tiled at 0 is distance zero on every topology.
        assert_eq!(mesh_hops(0, 16, 0, 4), 0);
        for cores in [1usize, 4, 16, 48, 128, 256] {
            let side = mesh_side(cores);
            assert!(side * side >= cores);
            assert!(side == 1 || (side - 1) * (side - 1) < cores);
            for bank in 0..8 {
                for core in 0..cores {
                    let h = mesh_hops(core, cores, bank, 8);
                    assert!(h <= 2 * (side as u64 - 1), "hop distance exceeds mesh span");
                }
            }
        }
        // Distance is a pure function: same inputs, same hops.
        assert_eq!(mesh_hops(7, 16, 3, 4), mesh_hops(7, 16, 3, 4));
    }

    #[test]
    fn validate_rejects_inconsistent_row_models() {
        let mut cfg = SystemConfig::tiny(4);
        cfg.validate().unwrap();
        cfg = cfg.with_frfcfs_nuca(2);
        cfg.validate().unwrap();
        assert!(cfg.dram.row_model.enabled);
        assert_eq!(cfg.dram.row_model.row_hit_cycles, 180);
        assert_eq!(cfg.dram.row_model.row_miss_cycles, 260);
        assert_eq!(cfg.dram.row_model.row_conflict_cycles, 340);
        assert_eq!(cfg.llc.nuca.hop_cycles, 2);

        let mut bad = cfg.clone();
        bad.dram.row_model.row_miss_cycles = 100; // < hit
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.dram.row_model.starvation_cap = 0;
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.dram.row_model.row_hit_cycles = 0;
        assert!(bad.validate().is_err());
        // Disabled row models are never validated for latency ordering.
        let mut flat = SystemConfig::tiny(4);
        flat.dram.row_model.row_miss_cycles = 0;
        flat.validate().unwrap();
    }

    #[test]
    fn scaled_keeps_associativity_and_validates() {
        for n in [4, 8, 16, 20, 24] {
            let cfg = SystemConfig::scaled(n);
            assert_eq!(cfg.llc.geometry.ways, 16);
            assert_eq!(cfg.l2.geometry.ways, 16);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn tiny_validates() {
        SystemConfig::tiny(2).validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SystemConfig::tiny(2);
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.interval_misses = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.core.mlp_overlap = 0.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::tiny(2);
        cfg.llc.banks = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn many_core_configs_validate_and_scale_with_cores() {
        for n in [32, 48, 64] {
            for cfg in [
                SystemConfig::paper_many_core(n),
                SystemConfig::scaled_many_core(n),
            ] {
                cfg.validate().unwrap();
                assert_eq!(cfg.num_cores, n);
                assert_eq!(cfg.llc.geometry.ways, 16);
                assert!(cfg.llc.geometry.num_sets().is_power_of_two());
                assert_eq!(cfg.llc.mshr_entries, 16 * n);
                assert!(!cfg.llc.contention.is_flat());
                assert!(cfg.llc.contention.mshr_backpressure);
            }
        }
        // Non-power-of-two core counts round the set count up, never down.
        let c48 = SystemConfig::scaled_many_core(48);
        assert!(c48.llc.geometry.size_bytes >= 48 * 32 * 1024);
        // Bank counts follow the documented clamps.
        assert_eq!(SystemConfig::many_core_llc_banks(32), 4);
        assert_eq!(SystemConfig::many_core_llc_banks(48), 8);
        assert_eq!(SystemConfig::many_core_llc_banks(64), 8);
        assert_eq!(SystemConfig::many_core_dram_banks(32), 16);
        assert_eq!(SystemConfig::many_core_dram_banks(48), 32);
        assert_eq!(SystemConfig::many_core_dram_banks(64), 32);
    }

    #[test]
    fn default_contention_is_the_flat_seed_model() {
        let cfg = SystemConfig::paper_baseline(16);
        assert!(cfg.llc.contention.is_flat());
        assert!(cfg.dram.contention.is_flat());
        assert_eq!(
            BankContentionConfig::default(),
            BankContentionConfig::flat()
        );
        let contended = BankContentionConfig::contended(2, 16);
        assert!(!contended.is_flat());
        assert_eq!(contended.ports, 2);
        assert_eq!(contended.queue_depth, 16);
    }

    #[test]
    fn validate_rejects_zero_port_contention() {
        let mut cfg = SystemConfig::tiny(2);
        cfg.llc.contention.ports = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn per_core_geometry_rounds_sets_up_to_a_power_of_two() {
        let g = CacheGeometry::per_core(48, 32 * 1024, 16);
        assert_eq!(g.num_sets(), 2048); // 1536 rounded up
        let exact = CacheGeometry::per_core(32, 32 * 1024, 16);
        assert_eq!(exact.num_sets(), 1024);
        assert_eq!(CacheGeometry::with_sets(64, 16).num_blocks(), 1024);
    }

    #[test]
    fn geometry_counts_are_consistent() {
        let g = CacheGeometry::new(16 * 1024 * 1024, 16);
        assert_eq!(g.num_blocks(), g.num_sets() * g.ways);
    }
}
