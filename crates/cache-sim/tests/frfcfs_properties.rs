//! Property wall for the FR-FCFS row-buffer bank scheduler (`cache_sim::bank`).
//!
//! Four guarantees, each over arbitrary request interleavings:
//!
//! 1. scheduling is deterministic — the same request sequence produces the same
//!    grants, stats and per-core attribution, bit for bit;
//! 2. no queued request is ever bypassed past the starvation cap;
//! 3. every grant is charged its configured latency class, and the classes obey
//!    row-hit <= row-miss <= row-conflict;
//! 4. with the row model disabled, `schedule` retires bit-identically to the
//!    seed's FCFS `request` path — the flat-default equivalence the existing
//!    bit-identity walls rely on.
//!
//! Request times are non-decreasing within a generated sequence, matching the
//! global (cycle, core) order the multi-core driver guarantees.

use cache_sim::bank::{BankModel, BankSchedule, RowClass};
use cache_sim::config::{BankContentionConfig, RowModelConfig};
use proptest::prelude::*;

/// One generated request: which bank, how long after the previous request it
/// arrives, its service length, and a packed (core, row) pair — the vendored
/// proptest stand-in generates tuples up to arity 4, so core and row share a slot
/// (core = packed % 8, row = packed / 8, giving 8 cores x 4 rows).
type RawOp = (usize, u64, u64, usize);

/// The generator tuple mirroring [`RawOp`]: one range strategy per element.
type RawOpStrategy = (
    std::ops::Range<usize>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<usize>,
);

fn ops(max_banks: usize, len: usize) -> proptest::collection::VecStrategy<RawOpStrategy> {
    proptest::collection::vec((0..max_banks, 0u64..40, 1u64..30, 0usize..32), 1..len)
}

fn unpack(op: RawOp) -> (usize, u64, u64, usize, u64) {
    let (bank, gap, service, packed) = op;
    (bank, gap, service, packed % 8, (packed / 8) as u64)
}

fn contention(ports: usize, depth: usize) -> BankContentionConfig {
    if ports == 0 {
        BankContentionConfig::flat()
    } else {
        BankContentionConfig::contended(ports, depth)
    }
}

/// Drive `model` through `ops`, collecting every grant.
fn drive(model: &mut BankModel, ops: &[RawOp]) -> Vec<BankSchedule> {
    let mut now = 0;
    ops.iter()
        .map(|&op| {
            let (bank, gap, service, core, row) = unpack(op);
            now += gap;
            model.schedule(bank, now, service, core, row)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Property 1: the scheduler is a pure function of the request sequence.
    #[test]
    fn retirement_order_is_deterministic(
        ops in ops(4, 200),
        ports in 0usize..3,
        depth in 0usize..5,
        cap in 1u32..6,
        closed_page in any::<bool>(),
    ) {
        let mut rm = RowModelConfig::frfcfs(10, 20, 30, cap);
        rm.closed_page = closed_page;
        let make = || BankModel::with_row_model(4, contention(ports, depth), rm);
        let (mut a, mut b) = (make(), make());
        let ga = drive(&mut a, &ops);
        let gb = drive(&mut b, &ops);
        prop_assert_eq!(ga, gb);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.core_stalls(), b.core_stalls());
    }

    // Property 2: ready-first arbitration never bypasses a queued request more
    // than `starvation_cap` times.
    #[test]
    fn no_request_is_bypassed_past_the_starvation_cap(
        ops in ops(2, 300),
        ports in 1usize..3,
        depth in 0usize..4,
        cap in 1u32..5,
    ) {
        let rm = RowModelConfig::frfcfs(10, 20, 30, cap);
        let mut model = BankModel::with_row_model(2, contention(ports, depth), rm);
        drive(&mut model, &ops);
        for st in model.stats() {
            prop_assert!(
                st.max_bypass <= cap,
                "bank bypassed a request {} times past cap {}",
                st.max_bypass,
                cap
            );
        }
    }

    // Property 3: every grant is charged exactly its class's configured latency,
    // the classes obey hit <= miss <= conflict, and the queue arithmetic holds.
    #[test]
    fn latency_classes_are_charged_and_ordered(
        ops in ops(3, 200),
        hit in 1u64..50,
        miss_extra in 0u64..50,
        conflict_extra in 0u64..50,
        cap in 1u32..5,
    ) {
        let rm =
            RowModelConfig::frfcfs(hit, hit + miss_extra, hit + miss_extra + conflict_extra, cap);
        let mut model = BankModel::with_row_model(3, contention(2, 4), rm);
        let mut now = 0;
        for &op in &ops {
            let (bank, gap, service, core, row) = unpack(op);
            now += gap;
            let sched = model.schedule(bank % 3, now, service, core, row);
            let class = sched.class.expect("row model is enabled");
            prop_assert_eq!(sched.class_cycles, class.cycles(&rm));
            prop_assert!(RowClass::Hit.cycles(&rm) <= RowClass::Miss.cycles(&rm));
            prop_assert!(RowClass::Miss.cycles(&rm) <= RowClass::Conflict.cycles(&rm));
            prop_assert!(sched.request.start >= now);
            prop_assert_eq!(sched.request.completion, sched.request.start + service);
            prop_assert_eq!(sched.request.delay, sched.request.start - now);
        }
        let st = model.stats();
        let classified: u64 = st.iter().map(|s| s.row_hits + s.row_misses + s.row_conflicts).sum();
        let total: u64 = st.iter().map(|s| s.requests).sum();
        prop_assert_eq!(classified, total, "every request gets exactly one class");
    }

    // Property 4: a disabled row model is the seed's FCFS bank, bit for bit —
    // grants, per-bank stats and per-core stall attribution.
    #[test]
    fn disabled_row_model_is_bit_identical_to_fcfs(
        ops in ops(4, 300),
        ports in 0usize..3,
        depth in 0usize..5,
    ) {
        let cfg = contention(ports, depth);
        let mut frfcfs = BankModel::with_row_model(4, cfg, RowModelConfig::disabled());
        let mut fcfs = BankModel::new(4, cfg);
        let mut now = 0;
        for &op in &ops {
            let (bank, gap, service, core, row) = unpack(op);
            now += gap;
            let sched = frfcfs.schedule(bank, now, service, core, row);
            let req = fcfs.request_from(bank, now, service, core);
            prop_assert_eq!(sched.request, req);
            prop_assert_eq!(sched.class, None);
            prop_assert_eq!(sched.class_cycles, 0);
        }
        prop_assert_eq!(frfcfs.stats(), fcfs.stats());
        prop_assert_eq!(frfcfs.core_stalls(), fcfs.core_stalls());
    }
}
