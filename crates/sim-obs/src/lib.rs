//! # sim-obs — zero-overhead instrumentation for the ADAPT reproduction
//!
//! A dependency-free, vendored-style observability layer (same pattern as the
//! `rayon`/`proptest` stand-ins) providing a `tracing`-flavoured API of **spans**,
//! **counters**, **instant events** and **interval samples**, recorded into lock-free
//! per-thread flight-recorder ring buffers and drained into three exporters: Chrome
//! trace-event JSON (loads directly in Perfetto / `chrome://tracing`), a CSV interval
//! time-series, and a human-readable end-of-run summary.
//!
//! ## Zero overhead when disabled
//!
//! The whole crate is gated on one process-global flag. Every recording entry point
//! begins with [`enabled()`] — a single `Relaxed` load of an [`AtomicBool`] followed by
//! a branch. In the disabled state **nothing else happens**: no allocation, no
//! formatting, no clock read, no thread-local initialization. Ring buffers are only
//! allocated lazily, on the first event a thread records *while enabled*. The
//! `sim_perf` bench asserts the disabled-mode cost stays within 2% of an uninstrumented
//! loop at per-access density (far denser than any real call site in this workspace).
//!
//! ## Bit-identity
//!
//! Instrumentation only *reads* simulator state (timestamps, statistics counters); it
//! never feeds anything back. Simulation results with instrumentation enabled are
//! bit-identical to results with it disabled — enforced by `tests/observability.rs`
//! and the `sim_perf` bench.
//!
//! ## Flight-recorder rings
//!
//! Each thread records into its own single-producer ring buffer: a plain store into a
//! pre-allocated slot plus a `Release` publish of the head index — no locks and no
//! CAS on the hot path. When a ring fills, the oldest events are overwritten
//! (flight-recorder semantics) and a drop counter increments. [`drain()`] snapshots
//! every ring in the process; it is intended to run at a quiescent point (after
//! worker threads have joined), which the exporters and the `repro --profile` flow
//! guarantee. Events recorded concurrently with a drain may be missed and picked up
//! by the next drain.
//!
//! Event names and categories are `&'static str` so events stay `Copy`; dynamic
//! strings (the per-cell `mix3/DIP` style labels) go through a small interning table
//! via [`push_context`] and ride along as a `u32` id.
//!
//! See `docs/observability.md` for the user-facing guide.

#![warn(missing_docs)]

use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod export;
mod json;
pub mod log;

pub use export::{
    chrome_trace, export_profile, intervals_csv, summary_text, ProfileReport, SpanStat,
};
pub use json::{validate_chrome_trace, JsonValue};
pub use log::{set_log_level, Level};

/// Maximum number of numeric fields one [`sample`] row can carry.
pub const SAMPLE_WIDTH: usize = 12;

/// Sentinel context id meaning "no context set".
pub const NO_CONTEXT: u32 = u32::MAX;

/// What a recorded [`Event`] represents.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts_ns` is the start, `dur_ns` the duration.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A named scalar (`value`) at a point in time.
    Counter,
    /// One row of a named time-series: `cols` names the fields, `vals[..n_vals]` holds them.
    Sample,
    /// A log line routed through [`log`]; `value` holds the level, `ctx` interns the message.
    Log,
}

/// One fixed-size, `Copy` flight-recorder record.
#[derive(Copy, Clone, Debug)]
pub struct Event {
    /// Discriminates how the payload fields are interpreted.
    pub kind: EventKind,
    /// Static event name (span/counter/series name, or log target).
    pub name: &'static str,
    /// Static category, e.g. `"sweep"`, `"rayon"`, `"sim"`, `"trace-io"`.
    pub cat: &'static str,
    /// Interned dynamic context id ([`NO_CONTEXT`] when unset); see [`push_context`].
    pub ctx: u32,
    /// Nanoseconds since the recording epoch (span start time for spans).
    pub ts_ns: u64,
    /// Span duration in nanoseconds (zero for non-spans).
    pub dur_ns: u64,
    /// Counter value or log level (zero otherwise).
    pub value: f64,
    /// Column names for samples (empty otherwise).
    pub cols: &'static [&'static str],
    /// Sample payload; only `vals[..n_vals]` is meaningful.
    pub vals: [f64; SAMPLE_WIDTH],
    /// Number of valid entries in `vals`.
    pub n_vals: u8,
}

impl Event {
    fn blank() -> Self {
        Event {
            kind: EventKind::Instant,
            name: "",
            cat: "",
            ctx: NO_CONTEXT,
            ts_ns: 0,
            dur_ns: 0,
            value: 0.0,
            cols: &[],
            vals: [0.0; SAMPLE_WIDTH],
            n_vals: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Default per-thread ring capacity (events). ~64K events ≈ a full profiled
/// acceptance-grid sweep with generous headroom.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide recording epoch (first use wins).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Is recording globally enabled? One `Relaxed` atomic load — this is the only cost
/// instrumentation call sites pay in the disabled state.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Also pins the timestamp epoch if this is its first use.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Already-recorded events stay in their rings until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Set the per-thread ring capacity (rounded up to a power of two). Affects rings
/// allocated after the call; intended to be set once before enabling.
pub fn set_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.next_power_of_two().max(16), Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Context interning
// ---------------------------------------------------------------------------

struct ContextTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

fn contexts() -> &'static Mutex<ContextTable> {
    static CONTEXTS: OnceLock<Mutex<ContextTable>> = OnceLock::new();
    CONTEXTS.get_or_init(|| {
        Mutex::new(ContextTable {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern a dynamic string, returning a stable id events can carry by value.
pub fn intern(name: &str) -> u32 {
    let mut table = contexts().lock().expect("context table poisoned");
    if let Some(&id) = table.by_name.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name.to_string());
    table.by_name.insert(name.to_string(), id);
    id
}

thread_local! {
    static CURRENT_CTX: Cell<u32> = const { Cell::new(NO_CONTEXT) };
}

/// The current thread's active context id ([`NO_CONTEXT`] when none).
pub fn current_context() -> u32 {
    CURRENT_CTX.with(Cell::get)
}

/// RAII guard restoring the previous thread context on drop; see [`push_context`].
pub struct ContextGuard {
    prev: u32,
    active: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT_CTX.with(|c| c.set(self.prev));
        }
    }
}

/// Set the current thread's context label (e.g. `"mix3/DIP"`) for the guard's
/// lifetime. Spans, counters, samples and logs recorded meanwhile carry it. Free
/// (no interning, no TLS write) when recording is disabled.
#[must_use = "the context is cleared when the guard drops"]
pub fn push_context(label: &str) -> ContextGuard {
    if !enabled() {
        return ContextGuard {
            prev: NO_CONTEXT,
            active: false,
        };
    }
    let id = intern(label);
    let prev = CURRENT_CTX.with(|c| c.replace(id));
    ContextGuard { prev, active: true }
}

// ---------------------------------------------------------------------------
// Per-thread flight-recorder rings
// ---------------------------------------------------------------------------

struct Ring {
    tid: u32,
    name: Mutex<String>,
    slots: Box<[UnsafeCell<Event>]>,
    mask: u64,
    /// Next write position (monotonically increasing, masked on access).
    head: AtomicU64,
    /// Next unread position.
    tail: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slots are written only by the owning thread; `drain` reads positions below
// the `Release`-published head at quiescent points (see module docs). Events are
// `Copy`, so slot reuse never runs destructors.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(tid: u32, capacity: usize, name: String) -> Self {
        let slots: Vec<UnsafeCell<Event>> = (0..capacity)
            .map(|_| UnsafeCell::new(Event::blank()))
            .collect();
        Ring {
            tid,
            name: Mutex::new(name),
            slots: slots.into_boxed_slice(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Owner-thread-only push: overwrite-oldest when full.
    fn push(&self, ev: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        if head.wrapping_sub(tail) >= self.slots.len() as u64 {
            self.tail.store(tail + 1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(head & self.mask) as usize];
        // SAFETY: only the owning thread writes; see the `Sync` impl note.
        unsafe { *slot.get() = ev };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(head.wrapping_sub(tail) as usize);
        while tail != head {
            let slot = &self.slots[(tail & self.mask) as usize];
            // SAFETY: positions below the Acquire-loaded head are fully written.
            out.push(unsafe { *slot.get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Relaxed);
        (out, self.dropped.swap(0, Ordering::Relaxed))
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: OnceLock<Arc<Ring>> = const { OnceLock::new() };
}

fn with_ring(f: impl FnOnce(&Ring)) {
    THREAD_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let capacity = RING_CAPACITY.load(Ordering::Relaxed);
            let name = std::thread::current().name().unwrap_or("").to_string();
            let ring = Arc::new(Ring::new(tid, capacity, name));
            registry()
                .lock()
                .expect("ring registry poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Name the current thread's timeline in exported traces (e.g. `"rayon-worker-2"`).
/// No-op when recording is disabled.
pub fn set_thread_name(name: &str) {
    if !enabled() {
        return;
    }
    with_ring(|ring| {
        *ring.name.lock().expect("ring name poisoned") = name.to_string();
    });
}

fn record(ev: Event) {
    with_ring(|ring| ring.push(ev));
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII span: records one [`EventKind::Span`] event on drop. Inert (no clock read,
/// no ring touch) when recording was disabled at creation.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// An inert guard that records nothing; useful for conditional instrumentation.
    pub fn inert() -> Self {
        SpanGuard {
            cat: "",
            name: "",
            start_ns: 0,
            active: false,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active && enabled() {
            let start = self.start_ns;
            record(Event {
                kind: EventKind::Span,
                name: self.name,
                cat: self.cat,
                ctx: current_context(),
                ts_ns: start,
                dur_ns: now_ns().saturating_sub(start),
                ..Event::blank()
            });
        }
    }
}

/// Open a span covering the guard's lifetime.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    SpanGuard {
        cat,
        name,
        start_ns: now_ns(),
        active: true,
    }
}

/// Record a named scalar at the current time (a Chrome-trace counter track).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Counter,
        name,
        cat,
        ctx: current_context(),
        ts_ns: now_ns(),
        value,
        ..Event::blank()
    });
}

/// Record a point-in-time marker.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Instant,
        name,
        cat,
        ctx: current_context(),
        ts_ns: now_ns(),
        ..Event::blank()
    });
}

/// Record one row of the time-series `name`, with `cols` naming the fields of
/// `vals`. At most [`SAMPLE_WIDTH`] fields are kept. Rows land in `intervals.csv`.
#[inline]
pub fn sample(cat: &'static str, name: &'static str, cols: &'static [&'static str], vals: &[f64]) {
    if !enabled() {
        return;
    }
    let n = vals.len().min(SAMPLE_WIDTH).min(cols.len());
    let mut buf = [0.0; SAMPLE_WIDTH];
    buf[..n].copy_from_slice(&vals[..n]);
    record(Event {
        kind: EventKind::Sample,
        name,
        cat,
        ctx: current_context(),
        ts_ns: now_ns(),
        cols,
        vals: buf,
        n_vals: n as u8,
        ..Event::blank()
    });
}

pub(crate) fn record_log(level: Level, target: &'static str, message: &str) {
    record(Event {
        kind: EventKind::Log,
        name: target,
        cat: "log",
        ctx: intern(message),
        ts_ns: now_ns(),
        value: level as u8 as f64,
        ..Event::blank()
    });
}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// One thread's drained timeline.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Stable per-process thread id (assigned at first record).
    pub tid: u32,
    /// Thread display name (empty when never named).
    pub name: String,
    /// Events lost to ring overwrite since the previous drain.
    pub dropped: u64,
    /// Events in record order.
    pub events: Vec<Event>,
}

/// Snapshot of every thread ring plus the context intern table.
#[derive(Clone, Debug, Default)]
pub struct Drained {
    /// Per-thread timelines, sorted by `tid`.
    pub threads: Vec<ThreadEvents>,
    /// Interned context strings, indexed by the `ctx` field of events.
    pub contexts: Vec<String>,
}

impl Drained {
    /// Resolve an event's context id to its string (empty for [`NO_CONTEXT`]).
    pub fn context(&self, id: u32) -> &str {
        if id == NO_CONTEXT {
            ""
        } else {
            self.contexts
                .get(id as usize)
                .map(String::as_str)
                .unwrap_or("")
        }
    }

    /// Total number of events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events lost to ring overwrite.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

/// Drain every ring in the process. Call at a quiescent point (worker threads
/// joined); see the module docs for the concurrency contract.
pub fn drain() -> Drained {
    let rings: Vec<Arc<Ring>> = registry().lock().expect("ring registry poisoned").clone();
    let mut threads: Vec<ThreadEvents> = rings
        .iter()
        .map(|ring| {
            let (events, dropped) = ring.drain();
            ThreadEvents {
                tid: ring.tid,
                name: ring.name.lock().expect("ring name poisoned").clone(),
                dropped,
                events,
            }
        })
        .collect();
    threads.sort_by_key(|t| t.tid);
    let contexts = contexts()
        .lock()
        .expect("context table poisoned")
        .names
        .clone();
    Drained { threads, contexts }
}

/// Disable recording and discard all pending events (used by tests to isolate runs).
pub fn reset() {
    disable();
    for ring in registry().lock().expect("ring registry poisoned").iter() {
        ring.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording tests share process-global state; serialize them.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = test_lock();
        reset();
        let _s = span("t", "should-not-appear");
        counter("t", "nope", 1.0);
        instant("t", "nope");
        sample("t", "nope", &["a"], &[1.0]);
        drop(_s);
        let d = drain();
        assert_eq!(d.total_events(), 0, "disabled mode must not record");
    }

    #[test]
    fn span_counter_sample_roundtrip() {
        let _g = test_lock();
        reset();
        enable();
        {
            let _ctx = push_context("mix0/LRU");
            let _s = span("sweep", "simulate");
            counter("sweep", "evals", 3.0);
            sample("sim", "interval.core", &["interval", "ipc"], &[1.0, 0.5]);
        }
        disable();
        let d = drain();
        assert_eq!(d.total_events(), 3);
        let events: Vec<&Event> = d.threads.iter().flat_map(|t| &t.events).collect();
        let span_ev = events.iter().find(|e| e.kind == EventKind::Span).unwrap();
        assert_eq!(span_ev.name, "simulate");
        assert_eq!(d.context(span_ev.ctx), "mix0/LRU");
        let samp = events.iter().find(|e| e.kind == EventKind::Sample).unwrap();
        assert_eq!(samp.n_vals, 2);
        assert_eq!(samp.cols, &["interval", "ipc"]);
        assert_eq!(samp.vals[1], 0.5);
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = Ring::new(99, 8, String::new());
        for i in 0..20u64 {
            let mut ev = Event::blank();
            ev.ts_ns = i;
            ring.push(ev);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len(), 8);
        assert_eq!(dropped, 12);
        assert_eq!(events.first().unwrap().ts_ns, 12, "oldest survivors first");
        assert_eq!(events.last().unwrap().ts_ns, 19);
    }

    #[test]
    fn context_guard_restores_previous() {
        let _g = test_lock();
        reset();
        enable();
        let outer = push_context("outer");
        let outer_id = current_context();
        {
            let _inner = push_context("inner");
            assert_ne!(current_context(), outer_id);
        }
        assert_eq!(current_context(), outer_id);
        drop(outer);
        assert_eq!(current_context(), NO_CONTEXT);
        reset();
    }

    #[test]
    fn drain_is_incremental() {
        let _g = test_lock();
        reset();
        enable();
        instant("t", "one");
        let first = drain();
        assert_eq!(first.total_events(), 1);
        instant("t", "two");
        disable();
        let second = drain();
        assert_eq!(
            second.total_events(),
            1,
            "already-drained events do not repeat"
        );
        assert_eq!(
            second
                .threads
                .iter()
                .flat_map(|t| &t.events)
                .next()
                .unwrap()
                .name,
            "two"
        );
        reset();
    }
}
