//! Exporters draining the flight recorder into files: Chrome trace-event JSON
//! (Perfetto-loadable), a CSV interval time-series, and a human-readable summary.
//! All serialization is hand-rolled (same style as `BENCH_sim.json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::{drain, Drained, Event, EventKind, Level};

fn json_escape(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Render a drained snapshot as Chrome trace-event JSON (an array of events).
///
/// Spans become `"X"` complete events, instants `"i"`, counters `"C"`, samples one
/// multi-series `"C"` counter event per row, and log lines `"i"` markers carrying the
/// message. Each recording thread gets a `thread_name` metadata event. Open the
/// result in <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn chrome_trace(drained: &Drained) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(drained.total_events() + drained.threads.len());
    for thread in &drained.threads {
        if !thread.name.is_empty() {
            let mut name = String::new();
            json_escape(&mut name, &thread.name);
            lines.push(format!(
                r#"{{"ph":"M","pid":0,"tid":{},"name":"thread_name","args":{{"name":"{name}"}}}}"#,
                thread.tid
            ));
        }
        for event in &thread.events {
            let tid = thread.tid;
            let mut ctx = String::new();
            json_escape(&mut ctx, drained.context(event.ctx));
            let line = match event.kind {
                EventKind::Span => format!(
                    r#"{{"ph":"X","pid":0,"tid":{tid},"name":"{}","cat":"{}","ts":{:.3},"dur":{:.3},"args":{{"ctx":"{ctx}"}}}}"#,
                    event.name,
                    event.cat,
                    us(event.ts_ns),
                    us(event.dur_ns),
                ),
                EventKind::Instant => format!(
                    r#"{{"ph":"i","pid":0,"tid":{tid},"name":"{}","cat":"{}","ts":{:.3},"s":"t","args":{{"ctx":"{ctx}"}}}}"#,
                    event.name,
                    event.cat,
                    us(event.ts_ns),
                ),
                EventKind::Counter => format!(
                    r#"{{"ph":"C","pid":0,"tid":{tid},"name":"{}","cat":"{}","ts":{:.3},"args":{{"value":{}}}}}"#,
                    event.name,
                    event.cat,
                    us(event.ts_ns),
                    fmt_num(event.value),
                ),
                EventKind::Sample => {
                    let mut args = String::new();
                    for (i, col) in event.cols.iter().take(event.n_vals as usize).enumerate() {
                        if i > 0 {
                            args.push(',');
                        }
                        let _ = write!(args, r#""{col}":{}"#, fmt_num(event.vals[i]));
                    }
                    format!(
                        r#"{{"ph":"C","pid":0,"tid":{tid},"name":"{}","cat":"{}","ts":{:.3},"args":{{{args}}}}}"#,
                        event.name,
                        event.cat,
                        us(event.ts_ns),
                    )
                }
                EventKind::Log => format!(
                    r#"{{"ph":"i","pid":0,"tid":{tid},"name":"{}","cat":"log","ts":{:.3},"s":"t","args":{{"level":"{}","message":"{ctx}"}}}}"#,
                    event.name,
                    us(event.ts_ns),
                    Level::from_index(event.value as u8).label(),
                ),
            };
            lines.push(line);
        }
    }
    let mut out = String::with_capacity(4096 + lines.iter().map(|l| l.len() + 4).sum::<usize>());
    out.push_str("[\n  ");
    out.push_str(&lines.join(",\n  "));
    out.push_str("\n]\n");
    out
}

fn fmt_num(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        // Shortest round-trip representation; keeps CSV/JSON output compact.
        format!("{value}")
    }
}

/// Render every [`EventKind::Sample`] row as one CSV table.
///
/// Different series carry different fields, so the header is the union of all column
/// names (sorted), prefixed by `context,series,tid,ts_us`; cells a series does not
/// define are left empty. Rows are ordered by timestamp.
pub fn intervals_csv(drained: &Drained) -> String {
    let mut columns: Vec<&'static str> = Vec::new();
    let mut rows: Vec<(u64, u32, &Event)> = Vec::new();
    for thread in &drained.threads {
        for event in &thread.events {
            if event.kind == EventKind::Sample {
                for col in event.cols.iter().take(event.n_vals as usize) {
                    if !columns.contains(col) {
                        columns.push(col);
                    }
                }
                rows.push((event.ts_ns, thread.tid, event));
            }
        }
    }
    columns.sort_unstable();
    rows.sort_by_key(|(ts, tid, _)| (*ts, *tid));
    let mut out = String::new();
    out.push_str("context,series,tid,ts_us");
    for col in &columns {
        let _ = write!(out, ",{col}");
    }
    out.push('\n');
    for (ts, tid, event) in rows {
        let ctx = drained.context(event.ctx);
        let _ = write!(out, "{ctx},{},{tid},{:.3}", event.name, us(ts));
        for col in &columns {
            out.push(',');
            if let Some(i) = event
                .cols
                .iter()
                .take(event.n_vals as usize)
                .position(|c| c == col)
            {
                let _ = write!(out, "{}", fmt_num(event.vals[i]));
            }
        }
        out.push('\n');
    }
    out
}

/// Aggregate statistics for one span name, used by the summary exporter.
#[derive(Clone, Debug, Default)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

fn span_stats(drained: &Drained) -> BTreeMap<(&'static str, &'static str), SpanStat> {
    let mut stats: BTreeMap<(&'static str, &'static str), SpanStat> = BTreeMap::new();
    for thread in &drained.threads {
        for event in &thread.events {
            if event.kind == EventKind::Span {
                let entry = stats.entry((event.cat, event.name)).or_default();
                entry.count += 1;
                entry.total_ns += event.dur_ns;
                entry.max_ns = entry.max_ns.max(event.dur_ns);
            }
        }
    }
    stats
}

/// Render the human-readable end-of-run summary: span aggregates, counter totals,
/// sample-series row counts, log volume and per-thread ring health.
pub fn summary_text(drained: &Drained) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sim-obs profile summary");
    let _ = writeln!(out, "=======================");
    let _ = writeln!(
        out,
        "threads: {}   events: {}   dropped: {}",
        drained.threads.len(),
        drained.total_events(),
        drained.total_dropped()
    );

    let spans = span_stats(drained);
    if !spans.is_empty() {
        let _ = writeln!(out, "\nspans (cat/name: count, total ms, mean ms, max ms)");
        for ((cat, name), stat) in &spans {
            let total_ms = stat.total_ns as f64 / 1e6;
            let mean_ms = total_ms / stat.count as f64;
            let label = format!("{cat}/{name}");
            let _ = writeln!(
                out,
                "  {label:<30} {:>6}  {:>10.3}  {:>9.3}  {:>9.3}",
                stat.count,
                total_ms,
                mean_ms,
                stat.max_ns as f64 / 1e6
            );
        }
    }

    let mut counters: BTreeMap<(&'static str, &'static str), (u64, f64)> = BTreeMap::new();
    let mut series: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut logs: BTreeMap<&'static str, u64> = BTreeMap::new();
    for thread in &drained.threads {
        for event in &thread.events {
            match event.kind {
                EventKind::Counter => {
                    let entry = counters.entry((event.cat, event.name)).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += event.value;
                }
                EventKind::Sample => *series.entry(event.name).or_insert(0) += 1,
                EventKind::Log => *logs.entry(event.name).or_insert(0) += 1,
                _ => {}
            }
        }
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "\ncounters (cat/name: records, sum)");
        for ((cat, name), (count, sum)) in &counters {
            let label = format!("{cat}/{name}");
            let _ = writeln!(out, "  {label:<30} {count:>6}  {}", fmt_num(*sum));
        }
    }
    if !series.is_empty() {
        let _ = writeln!(out, "\nsample series (name: rows)");
        for (name, rows) in &series {
            let _ = writeln!(out, "  {name:<28} {rows:>6}");
        }
    }
    if !logs.is_empty() {
        let _ = writeln!(out, "\nlog events (target: lines)");
        for (target, lines) in &logs {
            let _ = writeln!(out, "  {target:<28} {lines:>6}");
        }
    }

    let _ = writeln!(out, "\nthreads (tid, name, events, dropped)");
    for thread in &drained.threads {
        let name = if thread.name.is_empty() {
            "(unnamed)"
        } else {
            &thread.name
        };
        let _ = writeln!(
            out,
            "  {:>3}  {name:<24} {:>7}  {:>6}",
            thread.tid,
            thread.events.len(),
            thread.dropped
        );
    }
    out
}

/// What [`export_profile`] wrote.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Events exported (across all threads).
    pub events: usize,
    /// Events lost to ring overwrite.
    pub dropped: u64,
    /// Events in the validated `trace.json` (includes thread metadata records).
    pub trace_events: usize,
    /// Rows written to `intervals.csv` (excluding the header).
    pub csv_rows: usize,
}

/// Drain the flight recorder and write `trace.json`, `intervals.csv` and
/// `summary.txt` into `dir` (created if missing). The Chrome trace is re-parsed
/// through [`crate::validate_chrome_trace`] before being reported as written, so a
/// profile directory never contains a trace Perfetto would reject.
pub fn export_profile(dir: &Path) -> io::Result<ProfileReport> {
    let drained = drain();
    std::fs::create_dir_all(dir)?;
    let trace = chrome_trace(&drained);
    let trace_events = crate::validate_chrome_trace(&trace)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("chrome trace: {e}")))?;
    std::fs::write(dir.join("trace.json"), &trace)?;
    let csv = intervals_csv(&drained);
    let csv_rows = csv.lines().count().saturating_sub(1);
    std::fs::write(dir.join("intervals.csv"), &csv)?;
    std::fs::write(dir.join("summary.txt"), summary_text(&drained))?;
    Ok(ProfileReport {
        events: drained.total_events(),
        dropped: drained.total_dropped(),
        trace_events,
        csv_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NO_CONTEXT, SAMPLE_WIDTH};

    fn event(kind: EventKind, name: &'static str) -> Event {
        Event {
            kind,
            name,
            cat: "test",
            ctx: NO_CONTEXT,
            ts_ns: 1_500,
            dur_ns: 2_000,
            value: 3.0,
            cols: &[],
            vals: [0.0; SAMPLE_WIDTH],
            n_vals: 0,
        }
    }

    fn drained_with(events: Vec<Event>) -> Drained {
        Drained {
            threads: vec![crate::ThreadEvents {
                tid: 1,
                name: "main".to_string(),
                dropped: 0,
                events,
            }],
            contexts: vec!["mix0/LRU".to_string()],
        }
    }

    #[test]
    fn chrome_trace_validates_and_round_trips_fields() {
        let mut span = event(EventKind::Span, "simulate");
        span.ctx = 0;
        let mut samp = event(EventKind::Sample, "interval.core");
        samp.cols = &["interval", "ipc"];
        samp.vals[0] = 2.0;
        samp.vals[1] = 0.75;
        samp.n_vals = 2;
        let drained = drained_with(vec![
            span,
            event(EventKind::Instant, "marker"),
            event(EventKind::Counter, "evals"),
            samp,
        ]);
        let json = chrome_trace(&drained);
        let count = crate::validate_chrome_trace(&json).expect("schema-valid");
        assert_eq!(count, 5, "4 events + 1 thread_name metadata record");
        let doc = crate::JsonValue::parse(&json).unwrap();
        let events = doc.as_array().unwrap();
        let span_ev = events
            .iter()
            .find(|e| e.get("ph").and_then(crate::JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span_ev.get("dur").unwrap().as_number().unwrap(), 2.0);
        assert_eq!(
            span_ev
                .get("args")
                .unwrap()
                .get("ctx")
                .unwrap()
                .as_str()
                .unwrap(),
            "mix0/LRU"
        );
    }

    #[test]
    fn csv_unions_columns_across_series() {
        let mut a = event(EventKind::Sample, "interval.core");
        a.cols = &["interval", "ipc"];
        a.vals[0] = 1.0;
        a.vals[1] = 0.5;
        a.n_vals = 2;
        let mut b = event(EventKind::Sample, "interval.bank");
        b.cols = &["bank", "interval"];
        b.vals[0] = 3.0;
        b.vals[1] = 1.0;
        b.n_vals = 2;
        b.ts_ns = 900;
        let csv = intervals_csv(&drained_with(vec![a, b]));
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "context,series,tid,ts_us,bank,interval,ipc"
        );
        // Rows sort by timestamp: the bank row (900ns) precedes the core row (1500ns).
        assert_eq!(lines.next().unwrap(), ",interval.bank,1,0.900,3,1,");
        assert_eq!(lines.next().unwrap(), ",interval.core,1,1.500,,1,0.5");
    }

    #[test]
    fn summary_lists_spans_and_threads() {
        let text = summary_text(&drained_with(vec![
            event(EventKind::Span, "simulate"),
            event(EventKind::Span, "simulate"),
            event(EventKind::Counter, "evals"),
        ]));
        assert!(text.contains("test/simulate"), "{text}");
        assert!(text.contains("threads: 1"), "{text}");
        assert!(text.contains("test/evals"), "{text}");
    }
}
