//! A minimal recursive-descent JSON parser, used to validate exported Chrome traces
//! against the trace-event schema without any external dependency. Not a general
//! serde replacement: it parses strict JSON into a small value tree and is only as
//! fast as validation needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalized).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our exporter output;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(byte) = self.peek() {
                        if byte == b'"' || byte == b'\\' || byte < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Validate `text` as Chrome trace-event JSON: a top-level array of event objects,
/// each with the phase-appropriate required fields. Returns the event count.
///
/// The check is intentionally minimal — the subset Perfetto's JSON importer
/// requires — and is shared by the test suite and the `repro --profile` export path.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let events = doc.as_array().ok_or("top level must be a JSON array")?;
    for (i, event) in events.iter().enumerate() {
        let fail = |msg: &str| format!("event #{i}: {msg}");
        if !matches!(event, JsonValue::Object(_)) {
            return Err(fail("must be an object"));
        }
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing string field 'ph'"))?;
        for field in ["pid", "tid"] {
            event
                .get(field)
                .and_then(JsonValue::as_number)
                .ok_or_else(|| fail(&format!("missing numeric field '{field}'")))?;
        }
        event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing string field 'name'"))?;
        match ph {
            "X" => {
                for field in ["ts", "dur"] {
                    let value = event
                        .get(field)
                        .and_then(JsonValue::as_number)
                        .ok_or_else(|| fail(&format!("'X' event missing numeric '{field}'")))?;
                    if value < 0.0 {
                        return Err(fail(&format!("negative '{field}'")));
                    }
                }
            }
            "i" | "C" | "I" => {
                event
                    .get("ts")
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| fail("event missing numeric 'ts'"))?;
            }
            "M" => {}
            other => return Err(fail(&format!("unsupported phase '{other}'"))),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = JsonValue::parse(
            r#"[{"name":"a\u0041\n","ph":"X","ts":1.5,"dur":2,"pid":0,"tid":1,
                 "args":{"ok":true,"n":null,"xs":[1,-2.5e1]}}]"#,
        )
        .expect("parses");
        let event = &doc.as_array().unwrap()[0];
        assert_eq!(event.get("name").unwrap().as_str().unwrap(), "aA\n");
        assert_eq!(event.get("dur").unwrap().as_number().unwrap(), 2.0);
        let args = event.get("args").unwrap();
        assert_eq!(
            args.get("xs").unwrap().as_array().unwrap()[1],
            JsonValue::Number(-25.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "[", "{\"a\":}", "[1,]", "[1] x", "\"\\q\""] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn validates_trace_schema() {
        let good = r#"[{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"w0"}},
                       {"ph":"X","pid":0,"tid":1,"name":"s","cat":"c","ts":0.0,"dur":1.0}]"#;
        assert_eq!(validate_chrome_trace(good), Ok(2));
        let missing_dur = r#"[{"ph":"X","pid":0,"tid":1,"name":"s","ts":0.0}]"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let bad_phase = r#"[{"ph":"Z","pid":0,"tid":1,"name":"s","ts":0.0}]"#;
        assert!(validate_chrome_trace(bad_phase).is_err());
        assert!(
            validate_chrome_trace("{}").is_err(),
            "top level must be an array"
        );
    }
}
