//! Structured stderr logging with a global level filter.
//!
//! Replaces the workspace's ad-hoc `eprintln!` diagnostics: every line goes through
//! one filter ([`Level`] ordering, configured via `REPRO_LOG` or a CLI `--log-level`
//! flag calling [`set_log_level`]) and is prefixed with a monotonic timestamp and the
//! level/target, so interleaved parallel output stays attributable. When flight
//! recording is [enabled](crate::enabled), each emitted line is additionally recorded
//! as an [`EventKind::Log`](crate::EventKind::Log) event and lands in `trace.json`.
//!
//! The macros check the level *before* evaluating their format arguments, so a
//! filtered-out log line costs one relaxed atomic load.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or result-affecting problems.
    Error = 1,
    /// Suspicious conditions that do not stop the run (e.g. trace replay wrapped).
    Warn = 2,
    /// Progress and configuration notes.
    Info = 3,
    /// Detail useful when debugging the tools themselves.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Fixed-width uppercase label for line prefixes.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Recover a level from its `repr` value, clamping out-of-range input.
    pub fn from_index(index: u8) -> Level {
        match index {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parse a level name (`error|warn|info|debug|trace|off`, case-insensitive).
    pub fn parse(text: &str) -> Option<Option<Level>> {
        match text.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" | "1" => Some(Some(Level::Error)),
            "warn" | "warning" | "2" => Some(Some(Level::Warn)),
            "info" | "3" => Some(Some(Level::Info)),
            "debug" | "4" => Some(Some(Level::Debug)),
            "trace" | "5" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// 0 = not yet initialized (read `REPRO_LOG` on first use), 255 = off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
const LEVEL_OFF: u8 = 255;
const DEFAULT_LEVEL: Level = Level::Warn;

fn max_level() -> u8 {
    let current = MAX_LEVEL.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let initial = match std::env::var("REPRO_LOG").ok().as_deref().map(Level::parse) {
        Some(Some(None)) => LEVEL_OFF,
        Some(Some(Some(level))) => level as u8,
        _ => DEFAULT_LEVEL as u8,
    };
    // Racing first calls agree on the value unless `set_log_level` intervened; a
    // compare_exchange keeps an explicit setting from being clobbered.
    let _ = MAX_LEVEL.compare_exchange(0, initial, Ordering::Relaxed, Ordering::Relaxed);
    MAX_LEVEL.load(Ordering::Relaxed)
}

/// Set the global level filter (`None` silences everything). Overrides `REPRO_LOG`.
pub fn set_log_level(level: Option<Level>) {
    MAX_LEVEL.store(
        level.map(|l| l as u8).unwrap_or(LEVEL_OFF),
        Ordering::Relaxed,
    );
}

/// Would a line at `level` currently be emitted?
#[inline]
pub fn log_enabled(level: Level) -> bool {
    let max = max_level();
    max != LEVEL_OFF && level as u8 <= max
}

/// Emit one log line (used via the [`obs_error!`](crate::obs_error) family, which
/// handles level filtering before formatting).
pub fn log(level: Level, target: &'static str, args: fmt::Arguments<'_>) {
    let message = args.to_string();
    let secs = crate::now_ns() as f64 / 1e9;
    eprintln!("[{secs:>9.3}s {} {target}] {message}", level.label());
    if crate::enabled() {
        crate::record_log(level, target, &message);
    }
}

/// Log at [`Level::Error`]: `obs_error!("target", "...", args)`.
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Error) {
            $crate::log::log($crate::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`]: `obs_warn!("target", "...", args)`.
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`]: `obs_info!("target", "...", args)`.
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`]: `obs_debug!("target", "...", args)`.
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_names_and_off() {
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn filter_orders_levels() {
        set_log_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        set_log_level(Some(DEFAULT_LEVEL));
    }

    #[test]
    fn from_index_round_trips() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::from_index(level as u8), level);
        }
    }
}
