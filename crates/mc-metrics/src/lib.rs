//! # mc-metrics
//!
//! Multi-programmed throughput and fairness metrics used by the paper's evaluation
//! (Section 5.6, Table 7):
//!
//! * **Weighted speedup** (Snavely & Tullsen): `Σ_i IPC_shared_i / IPC_alone_i` — the
//!   paper's headline metric (Figures 3, 6, 7, 8).
//! * **Harmonic mean of normalized IPCs** (Luo et al., ISPASS 2001): balances fairness and
//!   throughput.
//! * **Arithmetic / geometric / harmonic means of raw IPCs** (Michaud, CAL 2013): the
//!   "consistent" throughput metrics of Table 7.
//!
//! All functions are pure and panic on length mismatches, which always indicate a harness
//! bug rather than a recoverable condition.

use serde::{Deserialize, Serialize};

/// Weighted speedup: `Σ_i shared_i / alone_i`.
///
/// A workload of N applications that are all unaffected by sharing scores N.
pub fn weighted_speedup(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(
        ipc_shared.len(),
        ipc_alone.len(),
        "per-app IPC vectors must align"
    );
    ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| if a > 0.0 { s / a } else { 0.0 })
        .sum()
}

/// Harmonic mean of normalized IPCs: `N / Σ_i (alone_i / shared_i)`.
pub fn harmonic_mean_normalized(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(
        ipc_shared.len(),
        ipc_alone.len(),
        "per-app IPC vectors must align"
    );
    if ipc_shared.is_empty() {
        return 0.0;
    }
    let denom: f64 = ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| if s > 0.0 { a / s } else { f64::INFINITY })
        .sum();
    if denom.is_finite() {
        ipc_shared.len() as f64 / denom
    } else {
        0.0
    }
}

/// Arithmetic mean of raw IPCs.
pub fn arithmetic_mean_ipc(ipcs: &[f64]) -> f64 {
    if ipcs.is_empty() {
        0.0
    } else {
        ipcs.iter().sum::<f64>() / ipcs.len() as f64
    }
}

/// Geometric mean of raw IPCs.
pub fn geometric_mean_ipc(ipcs: &[f64]) -> f64 {
    if ipcs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = ipcs.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / ipcs.len() as f64).exp()
}

/// Harmonic mean of raw IPCs.
pub fn harmonic_mean_ipc(ipcs: &[f64]) -> f64 {
    if ipcs.is_empty() {
        return 0.0;
    }
    let denom: f64 = ipcs
        .iter()
        .map(|&v| if v > 0.0 { 1.0 / v } else { f64::INFINITY })
        .sum();
    if denom.is_finite() {
        ipcs.len() as f64 / denom
    } else {
        0.0
    }
}

/// Fairness: the ratio of the smallest to the largest per-application normalized IPC,
/// `min_i(shared_i/alone_i) / max_i(shared_i/alone_i)` (Gabor et al.; the metric
/// fairness-oriented LLC clustering work such as LFOC/LFOC+ optimizes). 1.0 means every
/// application suffers equally from sharing; values near 0 mean some application is
/// starved — e.g. by bank contention — while others run at full speed. Returns 0 for
/// empty inputs or when the best-treated application makes no progress.
pub fn fairness(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(
        ipc_shared.len(),
        ipc_alone.len(),
        "per-app IPC vectors must align"
    );
    let normalized: Vec<f64> = ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| if a > 0.0 { s / a } else { 0.0 })
        .collect();
    let max = normalized.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return 0.0;
    }
    let min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
    min / max
}

/// Relative improvement of `value` over `baseline`, as a fraction (0.05 = +5%).
pub fn relative_improvement(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline - 1.0
    }
}

/// Per-application MPKI reduction relative to a baseline, in percent (positive = fewer
/// misses). This is the quantity plotted in the paper's Figures 1b/1c, 4 and 5.
pub fn mpki_reduction_percent(mpki: f64, baseline_mpki: f64) -> f64 {
    if baseline_mpki == 0.0 {
        0.0
    } else {
        (baseline_mpki - mpki) / baseline_mpki * 100.0
    }
}

/// The full set of Table 7 metrics for one workload under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticoreMetrics {
    pub weighted_speedup: f64,
    pub harmonic_mean_normalized: f64,
    pub geometric_mean_ipc: f64,
    pub harmonic_mean_ipc: f64,
    pub arithmetic_mean_ipc: f64,
    /// Min/max ratio of normalized IPCs (see [`fairness`]).
    pub fairness: f64,
}

impl MulticoreMetrics {
    /// Compute every metric from the shared-run and alone-run IPC vectors.
    pub fn compute(ipc_shared: &[f64], ipc_alone: &[f64]) -> Self {
        MulticoreMetrics {
            weighted_speedup: weighted_speedup(ipc_shared, ipc_alone),
            harmonic_mean_normalized: harmonic_mean_normalized(ipc_shared, ipc_alone),
            geometric_mean_ipc: geometric_mean_ipc(ipc_shared),
            harmonic_mean_ipc: harmonic_mean_ipc(ipc_shared),
            arithmetic_mean_ipc: arithmetic_mean_ipc(ipc_shared),
            fairness: fairness(ipc_shared, ipc_alone),
        }
    }

    /// Relative improvement of each metric over a baseline's metrics, as fractions.
    pub fn improvement_over(&self, baseline: &MulticoreMetrics) -> MulticoreMetrics {
        MulticoreMetrics {
            weighted_speedup: relative_improvement(
                self.weighted_speedup,
                baseline.weighted_speedup,
            ),
            harmonic_mean_normalized: relative_improvement(
                self.harmonic_mean_normalized,
                baseline.harmonic_mean_normalized,
            ),
            geometric_mean_ipc: relative_improvement(
                self.geometric_mean_ipc,
                baseline.geometric_mean_ipc,
            ),
            harmonic_mean_ipc: relative_improvement(
                self.harmonic_mean_ipc,
                baseline.harmonic_mean_ipc,
            ),
            arithmetic_mean_ipc: relative_improvement(
                self.arithmetic_mean_ipc,
                baseline.arithmetic_mean_ipc,
            ),
            fairness: relative_improvement(self.fairness, baseline.fairness),
        }
    }
}

/// Max/mean imbalance of per-core stall cycles: `max_i(stalls_i) / mean(stalls)`.
///
/// The fairness lens on per-core memory-system stall attribution: 1.0 means every core
/// pays the same queue/admission/MSHR price; N means one core absorbs the entire
/// N-core system's stall budget. Returns 0.0 for empty input or when no core stalled
/// at all (a flat, contention-free run), so reports can distinguish "balanced" from
/// "nothing to balance".
pub fn stall_imbalance(stalls: &[u64]) -> f64 {
    if stalls.is_empty() {
        return 0.0;
    }
    let total: u64 = stalls.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *stalls.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / stalls.len() as f64;
    max / mean
}

/// Build an "s-curve": the per-workload speedups sorted ascending, the presentation used by
/// the paper's Figures 3 and 8.
pub fn s_curve(speedups: &[f64]) -> Vec<f64> {
    let mut v = speedups.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("speedups must not be NaN"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_of_unaffected_apps_equals_n() {
        let shared = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&shared, &shared) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_penalizes_slowdowns() {
        let alone = [2.0, 2.0];
        let shared = [1.0, 2.0];
        assert!((weighted_speedup(&shared, &alone) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_normalized_matches_hand_computation() {
        let alone = [2.0, 2.0];
        let shared = [1.0, 2.0];
        // normalized IPCs: 0.5 and 1.0; HM = 2 / (2 + 1) = 0.666...
        assert!((harmonic_mean_normalized(&shared, &alone) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_shared_ipc_gives_zero_harmonic_mean() {
        assert_eq!(harmonic_mean_normalized(&[0.0, 1.0], &[1.0, 1.0]), 0.0);
        assert_eq!(harmonic_mean_ipc(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_family_orderings_hold() {
        let ipcs = [0.5, 1.0, 2.0, 4.0];
        let am = arithmetic_mean_ipc(&ipcs);
        let gm = geometric_mean_ipc(&ipcs);
        let hm = harmonic_mean_ipc(&ipcs);
        assert!(hm <= gm && gm <= am, "HM <= GM <= AM must hold");
        assert!((am - 1.875).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(arithmetic_mean_ipc(&[]), 0.0);
        assert_eq!(geometric_mean_ipc(&[]), 0.0);
        assert_eq!(harmonic_mean_ipc(&[]), 0.0);
        assert_eq!(weighted_speedup(&[], &[]), 0.0);
        assert_eq!(harmonic_mean_normalized(&[], &[]), 0.0);
    }

    #[test]
    fn relative_improvement_and_mpki_reduction() {
        assert!((relative_improvement(1.047, 1.0) - 0.047).abs() < 1e-12);
        assert_eq!(relative_improvement(1.0, 0.0), 0.0);
        assert!((mpki_reduction_percent(5.0, 10.0) - 50.0).abs() < 1e-12);
        assert!((mpki_reduction_percent(12.0, 10.0) + 20.0).abs() < 1e-12);
        assert_eq!(mpki_reduction_percent(1.0, 0.0), 0.0);
    }

    #[test]
    fn metrics_bundle_improvement_is_componentwise() {
        let alone = [1.0, 1.0];
        let base = MulticoreMetrics::compute(&[0.5, 0.5], &alone);
        let better = MulticoreMetrics::compute(&[0.55, 0.55], &alone);
        let imp = better.improvement_over(&base);
        assert!((imp.weighted_speedup - 0.1).abs() < 1e-9);
        assert!((imp.arithmetic_mean_ipc - 0.1).abs() < 1e-9);
    }

    #[test]
    fn fairness_matches_hand_computation() {
        // normalized IPCs: 0.5 and 1.0 => fairness 0.5.
        assert!((fairness(&[1.0, 2.0], &[2.0, 2.0]) - 0.5).abs() < 1e-12);
        // Equal suffering is perfectly fair.
        assert!((fairness(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
        // A fully starved application drives fairness to 0.
        assert_eq!(fairness(&[0.0, 2.0], &[2.0, 2.0]), 0.0);
        assert_eq!(fairness(&[], &[]), 0.0);
        let m = MulticoreMetrics::compute(&[1.0, 2.0], &[2.0, 2.0]);
        assert!((m.fairness - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stall_imbalance_is_max_over_mean() {
        // mean 2, max 4 => 2.0.
        assert!((stall_imbalance(&[0, 2, 2, 4]) - 2.0).abs() < 1e-12);
        // Perfectly balanced.
        assert!((stall_imbalance(&[3, 3, 3]) - 1.0).abs() < 1e-12);
        // One core absorbing everything in an N-core system scores N.
        assert!((stall_imbalance(&[8, 0, 0, 0]) - 4.0).abs() < 1e-12);
        // Empty and all-zero inputs are 0, not NaN.
        assert_eq!(stall_imbalance(&[]), 0.0);
        assert_eq!(stall_imbalance(&[0, 0]), 0.0);
    }

    #[test]
    fn s_curve_sorts_ascending() {
        assert_eq!(s_curve(&[1.2, 0.9, 1.0]), vec![0.9, 1.0, 1.2]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        weighted_speedup(&[1.0], &[1.0, 2.0]);
    }
}
