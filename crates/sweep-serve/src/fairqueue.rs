//! Bounded job queue with per-client round-robin fairness.
//!
//! The serving layer dogfoods the paper's fairness thinking one level up: concurrent
//! clients contending for a bounded worker pool are the shared-resource problem the
//! LLC insertion policies solve for co-running applications. A plain FIFO queue gives
//! a burst-happy client head-of-line ownership of every worker; this queue instead
//! keeps one sub-queue per client id and serves clients round-robin, so a client
//! submitting 1000 jobs cannot starve one submitting 2 — the serving analogue of the
//! `mc-metrics` min/max fairness metric, which `/stats` reports over the same
//! accounting ([`FairnessSnapshot::min_max_ratio`]).
//!
//! Capacity is global (jobs across all clients); producers choose between
//! [`FairQueue::try_push`] (fail fast → 429 backpressure) and
//! [`FairQueue::push_blocking`] (bounded wait, used by `/sweep`'s bulk enqueue).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (try again later — the server answers 429).
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

/// Per-client service counters (see [`FairQueue::fairness`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientService {
    /// Jobs this client enqueued (accepted pushes).
    pub enqueued: u64,
    /// Jobs dequeued by workers on this client's behalf.
    pub dequeued: u64,
    /// Jobs whose execution completed.
    pub completed: u64,
}

/// Snapshot of the fairness accounting across every client seen so far.
#[derive(Debug, Clone)]
pub struct FairnessSnapshot {
    /// `(client id, counters)` pairs, sorted by client id for deterministic output.
    pub clients: Vec<(String, ClientService)>,
    /// Smallest completed-job count among clients that enqueued work.
    pub min_completed: u64,
    /// Largest completed-job count among clients that enqueued work.
    pub max_completed: u64,
}

impl FairnessSnapshot {
    /// Min/max ratio of completed jobs across clients — 1.0 is perfectly fair service,
    /// mirroring the `mc-metrics::fairness` min/max normalized-IPC metric. 1.0 when
    /// fewer than two clients have enqueued work.
    pub fn min_max_ratio(&self) -> f64 {
        if self.clients.len() < 2 || self.max_completed == 0 {
            1.0
        } else {
            self.min_completed as f64 / self.max_completed as f64
        }
    }
}

struct Inner<T> {
    per_client: HashMap<String, VecDeque<T>>,
    /// Client ids with a non-empty sub-queue, in service order; each id appears once.
    rotation: VecDeque<String>,
    len: usize,
    closed: bool,
    service: HashMap<String, ClientService>,
    enqueued_total: u64,
    completed_total: u64,
    rejected_total: u64,
}

/// The bounded fair queue; see the module docs.
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    space: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` queued jobs across all clients.
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            inner: Mutex::new(Inner {
                per_client: HashMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
                service: HashMap::new(),
                enqueued_total: 0,
                completed_total: 0,
                rejected_total: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enqueue_locked(inner: &mut Inner<T>, client: &str, item: T) {
        let queue = inner.per_client.entry(client.to_string()).or_default();
        if queue.is_empty() {
            inner.rotation.push_back(client.to_string());
        }
        queue.push_back(item);
        inner.len += 1;
        inner.enqueued_total += 1;
        inner
            .service
            .entry(client.to_string())
            .or_default()
            .enqueued += 1;
    }

    /// Enqueue without waiting; [`PushError::Full`] at capacity.
    pub fn try_push(&self, client: &str, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len >= self.capacity {
            inner.rejected_total += 1;
            return Err(PushError::Full);
        }
        Self::enqueue_locked(&mut inner, client, item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueue, waiting up to `timeout` for space. Used by bulk producers (`/sweep`)
    /// so a grid larger than the queue drains through it instead of failing.
    pub fn push_blocking(&self, client: &str, item: T, timeout: Duration) -> Result<(), PushError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.len < self.capacity {
                Self::enqueue_locked(&mut inner, client, item);
                drop(inner);
                self.ready.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                inner.rejected_total += 1;
                return Err(PushError::Full);
            }
            let (guard, _) = self
                .space
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Dequeue the next job, blocking while the queue is empty. Serves client
    /// sub-queues round-robin: the client at the front of the rotation gives up one
    /// job and moves to the back (if it still has work). `None` once the queue is
    /// closed — remaining jobs are dropped, which is shutdown semantics: their reply
    /// channels disconnect and waiting connections answer 503.
    pub fn pop(&self) -> Option<(String, T)> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return None;
            }
            if let Some(client) = inner.rotation.pop_front() {
                let queue = inner
                    .per_client
                    .get_mut(&client)
                    .expect("rotation entries always have a sub-queue");
                let item = queue.pop_front().expect("rotation entries are non-empty");
                if !queue.is_empty() {
                    inner.rotation.push_back(client.clone());
                }
                inner.len -= 1;
                inner.service.entry(client.clone()).or_default().dequeued += 1;
                drop(inner);
                self.space.notify_one();
                return Some((client, item));
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Record that a dequeued job finished executing (fairness accounting).
    pub fn note_completed(&self, client: &str) {
        let mut inner = self.lock();
        inner.completed_total += 1;
        inner
            .service
            .entry(client.to_string())
            .or_default()
            .completed += 1;
    }

    /// Close the queue: producers get [`PushError::Closed`], consumers drain to `None`,
    /// queued-but-unstarted jobs are dropped.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.per_client.clear();
        inner.rotation.clear();
        inner.len = 0;
        drop(inner);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.lock().len
    }

    /// The capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(enqueued, completed, rejected)` totals since startup.
    pub fn totals(&self) -> (u64, u64, u64) {
        let inner = self.lock();
        (
            inner.enqueued_total,
            inner.completed_total,
            inner.rejected_total,
        )
    }

    /// Snapshot the per-client service accounting.
    pub fn fairness(&self) -> FairnessSnapshot {
        let inner = self.lock();
        let mut clients: Vec<(String, ClientService)> = inner
            .service
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        clients.sort_by(|a, b| a.0.cmp(&b.0));
        let served: Vec<u64> = clients
            .iter()
            .filter(|(_, s)| s.enqueued > 0)
            .map(|(_, s)| s.completed)
            .collect();
        FairnessSnapshot {
            min_completed: served.iter().copied().min().unwrap_or(0),
            max_completed: served.iter().copied().max().unwrap_or(0),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_clients_regardless_of_burst_order() {
        let q: FairQueue<u32> = FairQueue::new(16);
        // A burst-happy client enqueues 4 jobs before a second client gets 2 in.
        for i in 0..4 {
            q.try_push("hog", i).unwrap();
        }
        q.try_push("mouse", 100).unwrap();
        q.try_push("mouse", 101).unwrap();
        let order: Vec<String> = (0..6).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(order, ["hog", "mouse", "hog", "mouse", "hog", "hog"]);
    }

    #[test]
    fn capacity_is_enforced_and_rejections_counted() {
        let q: FairQueue<u32> = FairQueue::new(2);
        q.try_push("a", 1).unwrap();
        q.try_push("b", 2).unwrap();
        assert_eq!(q.try_push("c", 3), Err(PushError::Full));
        assert_eq!(
            q.push_blocking("c", 3, Duration::from_millis(10)),
            Err(PushError::Full)
        );
        assert_eq!(q.totals().2, 2, "both rejections counted");
        // Space frees after a pop; a blocking push succeeds.
        assert!(q.pop().is_some());
        q.push_blocking("c", 3, Duration::from_millis(10)).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn blocking_push_wakes_when_a_consumer_frees_space() {
        use std::sync::Arc;
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(1));
        q.try_push("a", 1).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            q2.push_blocking("b", 2, Duration::from_secs(10)).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap().1, 1);
        producer.join().unwrap();
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn blocking_push_times_out_when_space_never_frees() {
        // No consumer ever pops: push_blocking must give up at its deadline with
        // `Full` (→ 429 upstream), leaving the queued job untouched. This is the
        // /sweep story when the worker pool is wedged by faults.
        let q: FairQueue<u32> = FairQueue::new(1);
        q.try_push("a", 1).unwrap();
        let timeout = Duration::from_millis(120);
        let start = Instant::now();
        assert_eq!(q.push_blocking("b", 2, timeout), Err(PushError::Full));
        assert!(
            start.elapsed() >= timeout,
            "the full wait elapsed before giving up: {:?}",
            start.elapsed()
        );
        assert_eq!(q.totals().2, 1, "the expiry is counted as a rejection");
        assert_eq!(q.depth(), 1, "the resident job is untouched");
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn close_drops_queued_work_and_unblocks_everyone() {
        let q: FairQueue<u32> = FairQueue::new(4);
        q.try_push("a", 1).unwrap();
        q.close();
        assert!(q.pop().is_none());
        assert_eq!(q.try_push("a", 2), Err(PushError::Closed));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn fairness_snapshot_tracks_min_max_service() {
        let q: FairQueue<u32> = FairQueue::new(16);
        for i in 0..3 {
            q.try_push("a", i).unwrap();
        }
        q.try_push("b", 9).unwrap();
        for _ in 0..4 {
            let (client, _) = q.pop().unwrap();
            q.note_completed(&client);
        }
        let snap = q.fairness();
        assert_eq!(snap.min_completed, 1);
        assert_eq!(snap.max_completed, 3);
        assert!((snap.min_max_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // A single client is trivially fair.
        let q1: FairQueue<u32> = FairQueue::new(4);
        q1.try_push("solo", 1).unwrap();
        assert_eq!(q1.fairness().min_max_ratio(), 1.0);
    }
}
