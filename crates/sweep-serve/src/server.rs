//! `sweepd`: the resident policy-evaluation server.
//!
//! # Architecture
//!
//! ```text
//!  accept thread ── thread per connection ──> route()
//!                        │                      │ memo hit: answer immediately
//!                        │                      │ memo miss: enqueue Job ──┐
//!                        ▼                      ▼                          ▼
//!                  HTTP parse (bounded)    FairQueue (bounded, per-client round-robin)
//!                                                                          │
//!                                          worker pool: evaluate on resident streams,
//!                                          memoize, append sweep.progress, reply
//! ```
//!
//! Connection threads only parse, route, and wait on reply channels; all simulation
//! happens in the fixed-size worker pool fed by the [`FairQueue`], so a thousand
//! concurrent connections contend for workers through the fairness rotation rather
//! than through the scheduler. Handler and worker bodies are wrapped in
//! `catch_unwind`: a panicking request answers 500 and never wedges a worker.
//!
//! # Backpressure
//!
//! `/eval` uses [`FairQueue::try_push`]: a full queue answers `429 Too Many Requests`
//! with `Retry-After`, making overload explicit instead of queueing unboundedly.
//! `/sweep` — a bulk producer by design — uses [`FairQueue::push_blocking`] so grids
//! larger than the queue drain through it, still bounded by the push timeout.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use experiments::runner::ReplayConfig;
use experiments::{ExperimentScale, PolicyKind};
use sim_obs::JsonValue;

use crate::fairqueue::{FairQueue, PushError};
use crate::http::{read_request, write_response, Limits, ParseError};
use crate::json::{error_body, evaluation_json, fmt_f64, json_str};
use crate::memo::{MemoKey, MemoStore};
use crate::registry::{LoadedCorpus, Registry};

/// How long a connection thread waits for a worker before giving up (a liveness
/// backstop; workers normally answer in milliseconds).
const REPLY_TIMEOUT: Duration = Duration::from_secs(600);

/// Default per-cell bound on `/sweep`'s blocking enqueue
/// ([`ServerConfig::sweep_push_timeout`]).
const SWEEP_PUSH_TIMEOUT: Duration = Duration::from_secs(60);

/// Idle read timeout on accepted sockets: bounds torn-body stalls (408) and reclaims
/// abandoned keep-alive connections.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Write timeout on accepted sockets: a client that accepts its response slower
/// than this (slowloris on the response path) loses the connection instead of
/// pinning a connection thread forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Stack size for connection and client threads: they parse, route and block on
/// channels — no simulation — so small stacks let thousands coexist.
pub const CONNECTION_STACK_BYTES: usize = 256 * 1024;

/// Everything `sweepd` needs to start serving.
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port, reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing evaluations.
    pub workers: usize,
    /// Bound on queued (accepted but unstarted) jobs across all clients.
    pub queue_capacity: usize,
    /// HTTP parser limits.
    pub limits: Limits,
    /// Experiment scale the corpora were materialized at (geometry + run length).
    pub scale: ExperimentScale,
    /// Replay knobs for corpus materialization (arena budget, prefetch, spill).
    pub replay: ReplayConfig,
    /// `(name, directory)` pairs of corpora to load at startup.
    pub corpora: Vec<(String, PathBuf)>,
    /// Per-cell bound on `/sweep`'s blocking enqueue: how long one grid cell may
    /// wait for queue space before the whole sweep answers 429.
    pub sweep_push_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 256,
            limits: Limits::default(),
            scale: ExperimentScale::Scaled,
            replay: ReplayConfig::default(),
            corpora: Vec::new(),
            sweep_push_timeout: SWEEP_PUSH_TIMEOUT,
        }
    }
}

/// A unit of work for the pool: one `(corpus, policy, mix)` cell.
struct Job {
    corpus: Arc<LoadedCorpus>,
    policy: PolicyKind,
    key: MemoKey,
    reply: mpsc::Sender<WorkerReply>,
}

enum WorkerReply {
    Done(Arc<String>),
    Panicked,
    /// Replay corruption: the job's corpus has been quarantined with this reason.
    Faulted(String),
}

struct Shared {
    registry: Registry,
    memo: MemoStore,
    queue: FairQueue<Job>,
    limits: Limits,
    running: AtomicBool,
    recovered_cells: usize,
    workers: usize,
    addr: SocketAddr,
    sweep_push_timeout: Duration,
}

/// A running daemon; dropping (or [`ServerHandle::stop`]) shuts it down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Daemon entry point: [`Server::spawn`] binds, loads corpora, and starts the pool.
pub struct Server;

impl Server {
    /// Bind `config.addr`, load every corpus (recovering persisted sweep progress into
    /// the memo store), start the worker pool and the accept loop.
    pub fn spawn(config: ServerConfig) -> Result<ServerHandle, String> {
        // Arm the fault-injection layer from `SIM_FAULT_PLAN` if set (no-op and
        // zero-cost otherwise); a malformed spec is a startup error, not a
        // silently fault-free run.
        sim_fault::init_from_env().map_err(|e| format!("SIM_FAULT_PLAN: {e}"))?;
        let memo = MemoStore::new();
        let (registry, recovered_cells) =
            Registry::load(&config.corpora, config.scale, &config.replay, &memo)?;
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving bound address: {e}"))?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            memo,
            queue: FairQueue::new(config.queue_capacity.max(1)),
            limits: config.limits,
            running: AtomicBool::new(true),
            recovered_cells,
            workers,
            addr,
            sweep_push_timeout: config.sweep_push_timeout,
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sweepd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("spawning worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("sweepd-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| format!("spawning accept loop: {e}"))?
        };
        if recovered_cells > 0 {
            sim_obs::obs_info!(
                "sweepd",
                "recovered {recovered_cells} persisted sweep cell(s) into the memo store"
            );
        }
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Block until the daemon shuts down (via `/shutdown` or [`ServerHandle::stop`]).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Initiate shutdown and join the accept loop and worker pool. Queued-but-unstarted
    /// jobs are dropped (their clients get 503); the job a worker is executing finishes
    /// and is persisted, which is what makes kill-and-restart resumable.
    pub fn stop(mut self) {
        initiate_shutdown(&self.shared);
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.wait();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if !shared.running.swap(false, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    // Wake the accept loop so it observes `running == false`.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if !shared.running.load(Ordering::SeqCst) {
            return;
        }
        let shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .stack_size(CONNECTION_STACK_BYTES)
            .spawn(move || connection_loop(&shared, stream));
        if spawned.is_err() {
            // Out of threads: shed load instead of dying.
            continue;
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        if !shared.running.load(Ordering::SeqCst) {
            let _ = write_response(
                &mut writer,
                503,
                &[],
                &error_body("server is shutting down"),
                true,
            );
            return;
        }
        match read_request(&mut reader, &shared.limits) {
            Ok(req) => {
                let resp = catch_unwind(AssertUnwindSafe(|| route(shared, &req)))
                    .unwrap_or_else(|_| Response::error(500, "internal error"));
                if sim_fault::fire("serve.conn.close").is_some() {
                    // Injected connection drop: the client sees EOF — a visible
                    // failure, never silently wrong bytes.
                    return;
                }
                let headers: Vec<(&str, String)> =
                    resp.headers.iter().map(|(n, v)| (*n, v.clone())).collect();
                if write_response(&mut writer, resp.status, &headers, &resp.body, req.close)
                    .is_err()
                {
                    return;
                }
                if resp.shutdown {
                    initiate_shutdown(shared);
                    return;
                }
                if req.close {
                    return;
                }
            }
            // Clean keep-alive EOF.
            Err(ParseError::Closed) => return,
            // Protocol violation: answer, then drop the (possibly desynchronized)
            // connection. The worker pool never saw this request.
            Err(ParseError::Bad { status, message }) => {
                let _ = write_response(&mut writer, status, &[], &error_body(&message), true);
                return;
            }
            Err(ParseError::Io(_)) => return,
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((client, job)) = shared.queue.pop() {
        let reply = execute_job(shared, &job);
        shared.queue.note_completed(&client);
        let _ = job.reply.send(reply);
    }
}

/// Run one job to a reply. The whole execution — including any injected
/// scheduling fault — happens under `catch_unwind`, so no fault or bug can kill a
/// worker thread. A typed `ReplayFault` unwind (mid-replay corruption) quarantines
/// the job's corpus and answers a typed 503; any other panic answers 500.
fn execute_job(shared: &Arc<Shared>, job: &Job) -> WorkerReply {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        match sim_fault::fire("serve.worker") {
            Some(sim_fault::FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(sim_fault::FaultKind::Panic) => panic!("injected fault at serve.worker: panic"),
            _ => {}
        }
        if let Some(reason) = shared.registry.quarantine_reason(&job.corpus.name) {
            // The corpus was quarantined while this job sat queued: refuse fast
            // instead of re-running the replay that just failed.
            return Err(reason);
        }
        // Another worker (or a restart recovery) may have filled this cell while the
        // job sat queued; the re-check is quiet so /stats counters only reflect what
        // requests observed.
        if let Some(hit) = shared.memo.peek(&job.key) {
            return Ok(Some(hit));
        }
        Ok(job.corpus.evaluate(job.policy, job.key.mix_id).map(|eval| {
            let json = Arc::new(evaluation_json(&eval));
            shared.memo.insert(job.key.clone(), json.clone());
            job.corpus.progress.append(
                &job.key.policy,
                job.key.mix_id,
                job.key.instructions,
                &json,
            );
            json
        }))
    }));
    match outcome {
        Ok(Ok(Some(json))) => WorkerReply::Done(json),
        // The mix disappeared between parse and execution — treated like a crash.
        Ok(Ok(None)) => WorkerReply::Panicked,
        Ok(Err(reason)) => WorkerReply::Faulted(reason),
        Err(payload) => match cache_sim::trace::replay_fault_from(payload.as_ref()) {
            Some(fault) => {
                shared.registry.quarantine(&job.corpus.name, &fault.message);
                WorkerReply::Faulted(fault.message.clone())
            }
            None => WorkerReply::Panicked,
        },
    }
}

struct Response {
    status: u16,
    headers: Vec<(&'static str, String)>,
    body: String,
    shutdown: bool,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
            shutdown: false,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: error_body(message),
            shutdown: false,
        }
    }

    fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

fn route(shared: &Arc<Shared>, req: &crate::http::Request) -> Response {
    let client = req.header("x-client").unwrap_or("anon").to_string();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::ok("{\"status\":\"ok\"}".to_string()),
        ("GET", "/stats") => Response::ok(stats_body(shared)),
        ("GET", "/corpora") => Response::ok(corpora_body(shared)),
        ("POST", "/eval") => eval_endpoint(shared, &client, &req.body),
        ("POST", "/sweep") => sweep_endpoint(shared, &client, &req.body),
        ("POST", "/revalidate") => revalidate_endpoint(shared, &req.body),
        ("POST", "/shutdown") => Response {
            status: 200,
            headers: Vec::new(),
            body: "{\"status\":\"shutting-down\"}".to_string(),
            shutdown: true,
        },
        ("GET", "/eval" | "/sweep" | "/revalidate" | "/shutdown")
        | ("POST", "/healthz" | "/stats" | "/corpora") => {
            Response::error(405, "wrong method for this endpoint")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// The typed 503 a quarantined corpus answers with: machine-readable flag plus the
/// quarantine reason, so clients can tell "broken corpus" from "shutting down".
fn quarantined_response(name: &str, reason: &str) -> Response {
    Response {
        status: 503,
        headers: Vec::new(),
        body: format!(
            "{{\"error\":{},\"quarantined\":true,\"corpus\":{}}}",
            json_str(&format!("corpus {name:?} is quarantined: {reason}")),
            json_str(name)
        ),
        shutdown: false,
    }
}

/// Parse and validate the common `(corpus, policy, mix_id)` request triple.
fn parse_cell(
    shared: &Shared,
    body: &JsonValue,
) -> Result<(Arc<LoadedCorpus>, PolicyKind), Response> {
    let corpus_name = body
        .get("corpus")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| Response::error(400, "missing string field \"corpus\""))?;
    let corpus = shared
        .registry
        .get(corpus_name)
        .ok_or_else(|| Response::error(404, &format!("no corpus named {corpus_name:?}")))?;
    if let Some(reason) = shared.registry.quarantine_reason(corpus_name) {
        return Err(quarantined_response(corpus_name, &reason));
    }
    let policy_label = body
        .get("policy")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| Response::error(400, "missing string field \"policy\""))?;
    let policy = PolicyKind::parse(policy_label)
        .ok_or_else(|| Response::error(400, &format!("unknown policy {policy_label:?}")))?;
    Ok((corpus, policy))
}

fn parse_mix_id(body: &JsonValue, corpus: &LoadedCorpus) -> Result<usize, Response> {
    let raw = body
        .get("mix_id")
        .and_then(JsonValue::as_number)
        .ok_or_else(|| Response::error(400, "missing numeric field \"mix_id\""))?;
    if raw < 0.0 || raw.fract() != 0.0 {
        return Err(Response::error(
            400,
            "\"mix_id\" must be a non-negative integer",
        ));
    }
    let mix_id = raw as usize;
    if corpus.prepared(mix_id).is_none() {
        return Err(Response::error(
            404,
            &format!("corpus {:?} has no mix {mix_id}", corpus.name),
        ));
    }
    Ok(mix_id)
}

fn parse_json_body(body: &[u8]) -> Result<JsonValue, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "request body is not valid UTF-8"))?;
    JsonValue::parse(text).map_err(|e| Response::error(400, &format!("malformed JSON body: {e}")))
}

/// `POST /eval` — one `(corpus, policy, mix)` cell. Memo hits answer immediately
/// (`X-Memo: hit`); misses enqueue fail-fast and answer 429 under backpressure.
fn eval_endpoint(shared: &Arc<Shared>, client: &str, raw_body: &[u8]) -> Response {
    let body = match parse_json_body(raw_body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (corpus, policy) = match parse_cell(shared, &body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let mix_id = match parse_mix_id(&body, &corpus) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let key = corpus.memo_key(&policy.label(), mix_id);
    if let Some(hit) = shared.memo.lookup(&key) {
        return Response::ok(hit.as_str().to_string()).with_header("X-Memo", "hit".to_string());
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        corpus: corpus.clone(),
        policy,
        key,
        reply: tx,
    };
    match shared.queue.try_push(client, job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            return Response::error(429, "evaluation queue is full")
                .with_header("Retry-After", "1".to_string())
        }
        Err(PushError::Closed) => return Response::error(503, "server is shutting down"),
    }
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(WorkerReply::Done(json)) => {
            Response::ok(json.as_str().to_string()).with_header("X-Memo", "miss".to_string())
        }
        Ok(WorkerReply::Panicked) => Response::error(500, "evaluation panicked"),
        Ok(WorkerReply::Faulted(reason)) => quarantined_response(&corpus.name, &reason),
        Err(_) => Response::error(503, "server is shutting down"),
    }
}

/// `POST /sweep` — a full `(policies × mixes)` grid over one corpus, in the exact
/// `(mix outer, policy inner)` order `repro sweep` evaluates. Memo hits are served
/// in place; misses drain through the bounded queue (blocking push). The response's
/// `results` array concatenates the canonical per-cell JSON bodies, so each element
/// is byte-identical to the corresponding `/eval` response.
fn sweep_endpoint(shared: &Arc<Shared>, client: &str, raw_body: &[u8]) -> Response {
    let body = match parse_json_body(raw_body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let corpus_name = match body.get("corpus").and_then(JsonValue::as_str) {
        Some(name) => name,
        None => return Response::error(400, "missing string field \"corpus\""),
    };
    let Some(corpus) = shared.registry.get(corpus_name) else {
        return Response::error(404, &format!("no corpus named {corpus_name:?}"));
    };
    if let Some(reason) = shared.registry.quarantine_reason(corpus_name) {
        return quarantined_response(corpus_name, &reason);
    }
    // Default lineup = `repro sweep`'s: TA-DRRIP plus the Figure 3 legend.
    let policies: Vec<PolicyKind> = match body.get("policies") {
        None => {
            let mut p = vec![PolicyKind::TaDrrip];
            p.extend(PolicyKind::figure3_lineup());
            p
        }
        Some(v) => {
            let Some(items) = v.as_array() else {
                return Response::error(400, "\"policies\" must be an array of labels");
            };
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let Some(label) = item.as_str() else {
                    return Response::error(400, "\"policies\" must be an array of labels");
                };
                let Some(kind) = PolicyKind::parse(label) else {
                    return Response::error(400, &format!("unknown policy {label:?}"));
                };
                out.push(kind);
            }
            out
        }
    };
    let mix_ids: Vec<usize> = match body.get("mix_ids") {
        None => corpus.mix_ids(),
        Some(v) => {
            let Some(items) = v.as_array() else {
                return Response::error(400, "\"mix_ids\" must be an array of integers");
            };
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let Some(raw) = item.as_number() else {
                    return Response::error(400, "\"mix_ids\" must be an array of integers");
                };
                if raw < 0.0 || raw.fract() != 0.0 {
                    return Response::error(400, "\"mix_ids\" must be an array of integers");
                }
                let mix_id = raw as usize;
                if corpus.prepared(mix_id).is_none() {
                    return Response::error(
                        404,
                        &format!("corpus {corpus_name:?} has no mix {mix_id}"),
                    );
                }
                out.push(mix_id);
            }
            out
        }
    };
    if policies.is_empty() || mix_ids.is_empty() {
        return Response::error(400, "sweep grid is empty");
    }

    // First pass: probe the memo (counting — each cell is one observed request),
    // enqueue every miss. Cells stay in (mix, policy) order throughout.
    enum Slot {
        Hit(Arc<String>),
        Pending(mpsc::Receiver<WorkerReply>),
    }
    let mut slots = Vec::with_capacity(mix_ids.len() * policies.len());
    let mut hits = 0u64;
    for &mix_id in &mix_ids {
        for &policy in &policies {
            let key = corpus.memo_key(&policy.label(), mix_id);
            if let Some(hit) = shared.memo.lookup(&key) {
                hits += 1;
                slots.push(Slot::Hit(hit));
                continue;
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                corpus: corpus.clone(),
                policy,
                key,
                reply: tx,
            };
            match shared
                .queue
                .push_blocking(client, job, shared.sweep_push_timeout)
            {
                Ok(()) => slots.push(Slot::Pending(rx)),
                Err(PushError::Full) => {
                    return Response::error(429, "evaluation queue is saturated")
                        .with_header("Retry-After", "1".to_string())
                }
                Err(PushError::Closed) => return Response::error(503, "server is shutting down"),
            }
        }
    }

    // Second pass: collect, preserving order.
    let mut results = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Slot::Hit(json) => results.push(json),
            Slot::Pending(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
                Ok(WorkerReply::Done(json)) => results.push(json),
                Ok(WorkerReply::Panicked) => return Response::error(500, "evaluation panicked"),
                Ok(WorkerReply::Faulted(reason)) => {
                    return quarantined_response(corpus_name, &reason)
                }
                Err(_) => return Response::error(503, "server is shutting down"),
            },
        }
    }

    let mut out = String::with_capacity(64 + results.iter().map(|r| r.len() + 1).sum::<usize>());
    out.push_str(&format!(
        "{{\"corpus\":{},\"cells\":{},\"results\":[",
        json_str(corpus_name),
        results.len()
    ));
    for (i, cell) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(cell);
    }
    out.push_str("]}");
    Response::ok(out).with_header("X-Memo-Hits", hits.to_string())
}

/// `POST /revalidate` — reload a (typically quarantined) corpus from disk and
/// readmit it without a restart. Answers 200 with the number of progress cells
/// recovered, or the typed quarantine 503 if the reload failed (the corpus stays
/// out of service with the fresh reason).
fn revalidate_endpoint(shared: &Arc<Shared>, raw_body: &[u8]) -> Response {
    let body = match parse_json_body(raw_body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("corpus").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing string field \"corpus\"");
    };
    if shared.registry.get(name).is_none() {
        return Response::error(404, &format!("no corpus named {name:?}"));
    }
    match shared.registry.revalidate(name, &shared.memo) {
        Ok(recovered) => Response::ok(format!(
            "{{\"status\":\"readmitted\",\"corpus\":{},\"recovered\":{recovered}}}",
            json_str(name)
        )),
        Err(reason) => quarantined_response(name, &reason),
    }
}

fn stats_body(shared: &Shared) -> String {
    let (enqueued, completed, rejected) = shared.queue.totals();
    let (hits, misses) = shared.memo.counters();
    let fairness = shared.queue.fairness();
    let mut clients = String::new();
    for (i, (id, s)) in fairness.clients.iter().enumerate() {
        if i > 0 {
            clients.push(',');
        }
        clients.push_str(&format!(
            "{{\"id\":{},\"enqueued\":{},\"dequeued\":{},\"completed\":{}}}",
            json_str(id),
            s.enqueued,
            s.dequeued,
            s.completed
        ));
    }
    // Degraded-mode surface: quarantined corpora (with reasons) and corpora whose
    // progress persistence has latched into memo-only mode.
    let mut quarantined = String::new();
    for (i, (name, reason)) in shared.registry.quarantined().iter().enumerate() {
        if i > 0 {
            quarantined.push(',');
        }
        quarantined.push_str(&format!(
            "{{\"corpus\":{},\"reason\":{}}}",
            json_str(name),
            json_str(reason)
        ));
    }
    let mut degraded = String::new();
    for (i, corpus) in shared
        .registry
        .iter()
        .into_iter()
        .filter(|c| c.progress.degraded())
        .enumerate()
    {
        if i > 0 {
            degraded.push(',');
        }
        degraded.push_str(&json_str(&corpus.name));
    }
    format!(
        "{{\"queue\":{{\"depth\":{},\"capacity\":{}}},\
         \"jobs\":{{\"enqueued\":{enqueued},\"completed\":{completed},\"rejected\":{rejected}}},\
         \"memo\":{{\"entries\":{},\"hits\":{hits},\"misses\":{misses},\"recovered\":{}}},\
         \"workers\":{},\
         \"health\":{{\"quarantined\":[{quarantined}],\"progress_degraded\":[{degraded}]}},\
         \"fairness\":{{\"min_completed\":{},\"max_completed\":{},\"min_max_ratio\":{},\
         \"clients\":[{clients}]}}}}",
        shared.queue.depth(),
        shared.queue.capacity(),
        shared.memo.len(),
        shared.recovered_cells,
        shared.workers,
        fairness.min_completed,
        fairness.max_completed,
        fmt_f64(fairness.min_max_ratio()),
    )
}

fn corpora_body(shared: &Shared) -> String {
    let mut out = String::from("{\"corpora\":[");
    for (i, corpus) in shared.registry.iter().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mix_ids = corpus
            .mix_ids()
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"name\":{},\"hash\":\"{:016x}\",\"label\":{},\"cores\":{},\"llc_sets\":{},\
             \"seed\":{},\"instructions\":{},\"mix_ids\":[{mix_ids}]}}",
            json_str(&corpus.name),
            corpus.hash,
            json_str(&corpus.corpus.meta().label),
            corpus.config.num_cores,
            corpus.config.llc.geometry.num_sets(),
            corpus.seed,
            corpus.instructions,
        ));
    }
    out.push_str("]}");
    out
}
