//! The `serve_load` harness: drive an in-process daemon with concurrent clients and
//! report throughput, latency percentiles, memo effectiveness and fairness.
//!
//! Two phases, mirroring how a resident evaluation service is actually used:
//!
//! 1. **Warm** — a handful of named clients compute every unique `(policy, mix)` cell
//!    once, concurrently, through the fair queue. This is the cold-compute phase whose
//!    per-client completion counts exercise the round-robin scheduler (reported as
//!    `warm_fairness_min_max`).
//! 2. **Hot** — the headline phase: many concurrent connections (thousands in the full
//!    bench) issuing `/eval` requests that are memo hits by construction, measuring the
//!    serving layer itself — parse, route, memo lookup, response — rather than
//!    simulation throughput. 429s are retried and counted separately from errors; any
//!    other non-200 is an error, and the floors assert zero.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use sim_obs::JsonValue;

use crate::client::{BackoffPolicy, Client};
use crate::json::{fmt_f64, json_str};
use crate::server::CONNECTION_STACK_BYTES;

/// What to drive at the daemon.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Registry name of the corpus to evaluate.
    pub corpus: String,
    /// Policy labels forming the grid.
    pub policies: Vec<String>,
    /// Mix ids forming the grid.
    pub mix_ids: Vec<usize>,
    /// Concurrent clients in the warm (cold-compute) phase.
    pub warm_clients: usize,
    /// Concurrent connections in the hot phase.
    pub clients: usize,
    /// Requests each hot connection issues.
    pub requests_per_client: usize,
    /// Distinct `X-Client` identities the hot connections share.
    pub client_groups: usize,
}

/// What happened; the bench serializes this into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Unique cells in the grid (`policies × mix_ids`).
    pub cells: usize,
    /// Wall-clock of the warm phase.
    pub warm_seconds: f64,
    /// Fairness min/max completion ratio across warm clients (from `/stats`).
    pub warm_fairness_min_max: f64,
    /// Successful hot-phase requests.
    pub requests: u64,
    /// Hot-phase responses that were neither 200 nor a retried 429.
    pub errors: u64,
    /// 429 responses absorbed by retry.
    pub retries: u64,
    /// Wall-clock of the hot phase.
    pub wall_seconds: f64,
    /// Successful hot-phase requests per second.
    pub throughput_rps: f64,
    /// Hot-phase latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Memo hits observed by the daemon over the whole run.
    pub memo_hits: u64,
    /// Memo misses observed by the daemon over the whole run.
    pub memo_misses: u64,
    /// `hits / (hits + misses)`.
    pub memo_hit_rate: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn eval_body(corpus: &str, policy: &str, mix_id: usize) -> String {
    format!(
        "{{\"corpus\":{},\"policy\":{},\"mix_id\":{mix_id}}}",
        json_str(corpus),
        json_str(policy)
    )
}

fn stats_numbers(addr: SocketAddr) -> Result<(u64, u64, f64), String> {
    let resp = crate::client::get(addr, "/stats").map_err(|e| format!("GET /stats: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /stats answered {}", resp.status));
    }
    let v = JsonValue::parse(&resp.body).map_err(|e| format!("parsing /stats: {e}"))?;
    let memo = v.get("memo").ok_or("stats missing \"memo\"")?;
    let hits = memo
        .get("hits")
        .and_then(JsonValue::as_number)
        .ok_or("stats missing memo.hits")? as u64;
    let misses = memo
        .get("misses")
        .and_then(JsonValue::as_number)
        .ok_or("stats missing memo.misses")? as u64;
    let ratio = v
        .get("fairness")
        .and_then(|f| f.get("min_max_ratio"))
        .and_then(JsonValue::as_number)
        .ok_or("stats missing fairness.min_max_ratio")?;
    Ok((hits, misses, ratio))
}

/// Run the two-phase load against a daemon at `addr`.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> Result<LoadReport, String> {
    let cells: Vec<(String, usize)> = spec
        .mix_ids
        .iter()
        .flat_map(|&mix| spec.policies.iter().map(move |p| (p.clone(), mix)))
        .collect();
    if cells.is_empty() {
        return Err("load grid is empty".to_string());
    }

    // Warm phase: partition the cells round-robin across the warm clients so each
    // enqueues a comparable share — the fair queue should then complete them at a
    // min/max ratio near 1.
    let warm_clients = spec.warm_clients.max(1);
    let warm_start = Instant::now();
    let warm_errors = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for w in 0..warm_clients {
            let cells = &cells;
            let errors = warm_errors.clone();
            let corpus = &spec.corpus;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr, Some(&format!("warm-{w}"))) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let backoff = BackoffPolicy::aggressive(200);
                for (policy, mix) in cells.iter().skip(w).step_by(warm_clients) {
                    let body = eval_body(corpus, policy, *mix);
                    match client.eval_with_retry(&body, &backoff) {
                        Ok((resp, _)) if resp.status == 200 => {}
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let warm_seconds = warm_start.elapsed().as_secs_f64();
    if warm_errors.load(Ordering::Relaxed) > 0 {
        return Err(format!(
            "{} warm-phase request(s) failed",
            warm_errors.load(Ordering::Relaxed)
        ));
    }
    let (_, _, warm_fairness_min_max) = stats_numbers(addr)?;

    // Hot phase: every cell is now memoized, so these requests measure the serving
    // layer. All connections start together behind a barrier.
    let hot_clients = spec.clients.max(1);
    let groups = spec.client_groups.max(1);
    let barrier = Arc::new(Barrier::new(hot_clients + 1));
    let errors = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(
        hot_clients * spec.requests_per_client,
    )));
    let mut wall_seconds = 0.0;
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(hot_clients);
        for t in 0..hot_clients {
            let cells = &cells;
            let corpus = &spec.corpus;
            let barrier = barrier.clone();
            let errors = errors.clone();
            let retries = retries.clone();
            let requests = requests.clone();
            let latencies = latencies.clone();
            let n = spec.requests_per_client;
            let handle = std::thread::Builder::new()
                .stack_size(CONNECTION_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    let id = format!("load-{}", t % groups);
                    // Connect before the barrier so the timed window measures
                    // requests, not the connection storm.
                    let client = Client::connect(addr, Some(&id));
                    barrier.wait();
                    let Ok(mut client) = client else {
                        errors.fetch_add(n as u64, Ordering::Relaxed);
                        return;
                    };
                    let mut local = Vec::with_capacity(n);
                    let backoff = BackoffPolicy::aggressive(50);
                    for i in 0..n {
                        let (policy, mix) = &cells[(t * 31 + i * 7) % cells.len()];
                        let body = eval_body(corpus, policy, *mix);
                        let start = Instant::now();
                        match client.eval_with_retry(&body, &backoff) {
                            Ok((resp, r)) if resp.status == 200 => {
                                local.push(start.elapsed().as_secs_f64() * 1e3);
                                retries.fetch_add(r, Ordering::Relaxed);
                                requests.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok((_, r)) => {
                                retries.fetch_add(r, Ordering::Relaxed);
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    latencies
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                })
                .map_err(|e| format!("spawning load client {t}: {e}"))?;
            handles.push(handle);
        }
        barrier.wait();
        let hot_start = Instant::now();
        for handle in handles {
            let _ = handle.join();
        }
        wall_seconds = hot_start.elapsed().as_secs_f64();
        Ok(())
    })?;

    let mut sorted = {
        let mut guard = latencies.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *guard)
    };
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let requests = requests.load(Ordering::Relaxed);
    let (memo_hits, memo_misses, _) = stats_numbers(addr)?;
    Ok(LoadReport {
        cells: cells.len(),
        warm_seconds,
        warm_fairness_min_max,
        requests,
        errors: errors.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        wall_seconds,
        throughput_rps: requests as f64 / wall_seconds.max(1e-9),
        p50_ms: percentile(&sorted, 50.0),
        p90_ms: percentile(&sorted, 90.0),
        p99_ms: percentile(&sorted, 99.0),
        max_ms: sorted.last().copied().unwrap_or(0.0),
        memo_hits,
        memo_misses,
        memo_hit_rate: memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64,
    })
}

/// Serialize a report (plus the run's shape) as the `BENCH_serve.json` document.
pub fn render_report_json(spec: &LoadSpec, report: &LoadReport, quick: bool) -> String {
    format!(
        "{{\n  \"schema\": \"bench-serve/1\",\n  \"quick\": {quick},\n  \
         \"load\": {{\n    \"clients\": {},\n    \"requests_per_client\": {},\n    \
         \"client_groups\": {},\n    \"warm_clients\": {},\n    \"cells\": {}\n  }},\n  \
         \"throughput\": {{\n    \"requests\": {},\n    \"errors\": {},\n    \
         \"retries_429\": {},\n    \"wall_seconds\": {},\n    \
         \"requests_per_sec\": {}\n  }},\n  \
         \"latency_ms\": {{\n    \"p50\": {},\n    \"p90\": {},\n    \"p99\": {},\n    \
         \"max\": {}\n  }},\n  \
         \"memo\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {}\n  }},\n  \
         \"fairness\": {{\n    \"warm_min_max_ratio\": {}\n  }},\n  \
         \"warm_seconds\": {}\n}}\n",
        spec.clients,
        spec.requests_per_client,
        spec.client_groups,
        spec.warm_clients,
        report.cells,
        report.requests,
        report.errors,
        report.retries,
        fmt_f64(report.wall_seconds),
        fmt_f64(report.throughput_rps),
        fmt_f64(report.p50_ms),
        fmt_f64(report.p90_ms),
        fmt_f64(report.p99_ms),
        fmt_f64(report.max_ms),
        report.memo_hits,
        report.memo_misses,
        fmt_f64(report.memo_hit_rate),
        fmt_f64(report.warm_fairness_min_max),
        fmt_f64(report.warm_seconds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let ms: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&ms, 50.0), 51.0);
        assert_eq!(percentile(&ms, 99.0), 99.0);
        assert_eq!(percentile(&ms, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn eval_body_is_strict_json() {
        let body = eval_body("c1", "TA-DRRIP", 3);
        let v = JsonValue::parse(&body).unwrap();
        assert_eq!(
            v.get("policy").and_then(JsonValue::as_str),
            Some("TA-DRRIP")
        );
        assert_eq!(v.get("mix_id").and_then(JsonValue::as_number), Some(3.0));
    }
}
